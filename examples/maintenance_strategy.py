#!/usr/bin/env python3
"""The Maintenance Strategy tab (Figure 2d).

Shows the view trees F-IVM builds for the Retailer and Favorita queries
and the generated M3-style code for each view — including the
``V_ksn[locn, dateid]`` view the paper's screenshot highlights.

Run:  python examples/maintenance_strategy.py
"""

from repro.apps import MaintenanceStrategyApp
from repro.datasets import (
    favorita_query,
    favorita_variable_order,
    regression_features,
    retailer_query,
    retailer_variable_order,
)
from repro.rings import CountSpec, CovarSpec


def main() -> None:
    print("=" * 72)
    print("Retailer: SUM over Inventory ⋈ Location ⋈ Census ⋈ Item ⋈ Weather")
    print("=" * 72)
    features, _label = regression_features()
    app = MaintenanceStrategyApp(
        retailer_query(CovarSpec(features)), order=retailer_variable_order()
    )
    print("\nView tree (cf. Figure 2d):")
    print(app.render_tree())
    print("\nM3 code for V@ksn (the view shown in the paper):")
    print(app.render_view("V@ksn"))
    print("\nGraphviz rendering available via render_dot(); first lines:")
    print("\n".join(app.render_dot().splitlines()[:6]))

    print()
    print("=" * 72)
    print("Favorita: SUM over Sales ⋈ Items ⋈ Stores ⋈ Transactions ⋈ Oil ⋈ Holiday")
    print("=" * 72)
    app = MaintenanceStrategyApp(
        favorita_query(CountSpec()), order=favorita_variable_order()
    )
    print("\nView tree:")
    print(app.render_tree())
    print("\nFull M3 program:")
    print(app.render_m3())


if __name__ == "__main__":
    main()
