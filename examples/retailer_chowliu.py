#!/usr/bin/env python3
"""The Chow-Liu Tree tab (Figure 2c) on the synthetic Retailer database.

Maintains the pairwise MI matrix and rebuilds the optimal tree-shaped
Bayesian network after every bulk of updates.

Run:  python examples/retailer_chowliu.py
"""

from repro.apps import ChowLiuApp
from repro.datasets import (
    RETAILER_SCHEMAS,
    RetailerConfig,
    UpdateStream,
    generate_retailer,
    retailer_row_factories,
    retailer_variable_order,
)
from repro.ml.discretize import binning_for_attribute
from repro.rings import Feature


def main() -> None:
    config = RetailerConfig(locations=10, dates=25, items=60, inventory_rows=1500)
    database = generate_retailer(config)
    print(f"Retailer database: {database}")

    item = database.relation("Item")
    inventory = database.relation("Inventory")
    weather = database.relation("Weather")
    features = (
        Feature.categorical("subcategory"),
        Feature.categorical("category"),
        Feature.categorical("categoryCluster"),
        Feature("prize", "continuous", binning_for_attribute(item, "prize", 6)),
        Feature(
            "inventoryunits",
            "continuous",
            binning_for_attribute(inventory, "inventoryunits", 6),
        ),
        Feature("maxtemp", "continuous", binning_for_attribute(weather, "maxtemp", 6)),
        Feature("mintemp", "continuous", binning_for_attribute(weather, "mintemp", 6)),
        Feature.categorical("rain"),
    )

    app = ChowLiuApp(
        database,
        RETAILER_SCHEMAS,
        features,
        root="inventoryunits",
        order=retailer_variable_order(),
    )

    print("\nInitial MI matrix and Chow-Liu tree:")
    print(app.render())

    stream = UpdateStream(
        app.session.database,
        retailer_row_factories(config, database),
        targets=("Inventory", "Weather"),
        batch_size=500,
        insert_ratio=0.7,
        seed=13,
    )

    for bulk in range(1, 3):
        report = app.process_bulk(stream.batches(4))
        print(
            f"\nAfter bulk {bulk} "
            f"({report.updates} updates, {report.throughput:.0f} upd/s):"
        )
        print(app.tree().render())


if __name__ == "__main__":
    main()
