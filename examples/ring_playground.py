#!/usr/bin/env python3
"""Ring playground: one query, seven payload algebras.

The paper's central abstraction is that the view tree and the delta
processing never change — only the ring does. This example runs the SAME
Figure-1 query under every ring shipped with the library and shows what
each one computes.

Run:  python examples/ring_playground.py
"""

from repro import FIVMEngine, Query, inserts
from repro.datasets import toy_database, toy_variable_order
from repro.datasets.toy import R_SCHEMA, S_SCHEMA
from repro.rings import (
    BoolRing,
    CountSpec,
    CovarSpec,
    Feature,
    MinPlusRing,
    MISpec,
    SumProductSpec,
    SumSpec,
)
from repro.rings.specs import PayloadPlan, PayloadSpec


class MinCostSpec(PayloadSpec):
    """Tropical semiring: the cheapest join derivation, costs from D."""

    def build(self) -> PayloadPlan:
        return PayloadPlan(ring=MinPlusRing(), lifts={"D": float})

    @property
    def lifted_attributes(self):
        return ("D",)


def run(spec, label):
    query = Query("Q", (R_SCHEMA, S_SCHEMA), spec=spec)
    engine = FIVMEngine(query, order=toy_variable_order())
    engine.initialize(toy_database())
    payload = engine.result().payload(())
    print(f"{label:<34} ring={engine.plan.ring.name:<22} -> {describe(payload)}")
    return engine


def describe(payload):
    if hasattr(payload, "q"):
        if hasattr(payload.q, "shape"):
            return f"(c={payload.c}, s={payload.s.tolist()}, Q {payload.q.shape})"
        return f"(c={payload.c!r}, |s|={len(payload.s)}, |Q|={len(payload.q)})"
    return repr(payload)


def main() -> None:
    print("Same query, same view tree, same deltas — different rings:\n")
    run(CountSpec(), "COUNT(*)")
    run(CountSpec(ring=BoolRing()), "EXISTS (set semantics)")
    run(MinCostSpec(), "MIN total cost over D")
    run(SumSpec("D"), "SUM(D)")
    run(SumProductSpec((("B", 1), ("D", 2))), "SUM(B * D^2)")
    run(
        CovarSpec(
            (Feature.continuous("B"), Feature.continuous("C"), Feature.continuous("D"))
        ),
        "COVAR (continuous)",
    )
    run(
        CovarSpec(
            (Feature.continuous("B"), Feature.categorical("C"), Feature.continuous("D"))
        ),
        "COVAR (categorical C)",
    )
    run(
        MISpec(
            (
                Feature.categorical("B"),
                Feature.categorical("C"),
                Feature.categorical("D"),
            )
        ),
        "MI counts (all categorical)",
    )

    print("\nAnd the same maintenance code path for all of them:")
    engine = run(CountSpec(), "COUNT(*) again")
    engine.apply("R", inserts(("A", "B"), [("a1", 1)]))
    print(f"  after insert R(a1, b1): count = {engine.result().payload(())}")

    engine = run(SumSpec("D"), "SUM(D) again")
    engine.apply("S", inserts(("A", "C", "D"), [("a1", 7, 100)]))
    print(f"  after insert S(a1, c7, d100): SUM(D) = {engine.result().payload(())}")


if __name__ == "__main__":
    main()
