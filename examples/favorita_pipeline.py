#!/usr/bin/env python3
"""End-to-end pipeline on the Favorita database (the demo's second dataset).

Model selection (MI ranking) picks the features, then ridge regression
learns unit sales from them — both maintained incrementally under a stream
of Sales updates.

Run:  python examples/favorita_pipeline.py
"""

from repro.apps import ModelSelectionApp, RegressionApp
from repro.datasets import (
    FAVORITA_SCHEMAS,
    FavoritaConfig,
    UpdateStream,
    favorita_regression_features,
    favorita_row_factories,
    favorita_variable_order,
    generate_favorita,
)
from repro.ml.discretize import binning_for_attribute
from repro.rings import Feature


def main() -> None:
    config = FavoritaConfig(stores=10, dates=40, items=60, sales_rows=2000)
    database = generate_favorita(config)
    print(f"Favorita database: {database}")

    # ------------------------------------------------------------------
    # Step 1: model selection — which attributes predict unitsales?
    # ------------------------------------------------------------------
    sales = database.relation("Sales")
    oil = database.relation("Oil")
    mi_features = (
        Feature.categorical("onpromotion"),
        Feature.categorical("family"),
        Feature.categorical("perishable"),
        Feature.categorical("holidaytype"),
        Feature.categorical("storetype"),
        Feature("oilprize", "continuous", binning_for_attribute(oil, "oilprize", 6)),
        Feature(
            "unitsales",
            "continuous",
            binning_for_attribute(sales, "unitsales", 8),
        ),
    )
    selection = ModelSelectionApp(
        database,
        FAVORITA_SCHEMAS,
        mi_features,
        label="unitsales",
        threshold=0.02,
        order=favorita_variable_order(),
    )
    print("\nMI ranking against unitsales:")
    print(selection.render())
    print(f"selected: {selection.selected_features()}")

    # ------------------------------------------------------------------
    # Step 2: ridge regression over the demo's feature set
    # ------------------------------------------------------------------
    features, label = favorita_regression_features()
    regression = RegressionApp(
        database,
        FAVORITA_SCHEMAS,
        features,
        label,
        regularization=1e-2,
        order=favorita_variable_order(),
    )
    model = regression.refresh_model()
    print("\nInitial regression model:")
    print(regression.render())

    # ------------------------------------------------------------------
    # Step 3: maintain both under a stream of Sales updates
    # ------------------------------------------------------------------
    stream = UpdateStream(
        regression.session.database,
        favorita_row_factories(config, database),
        batch_size=400,
        insert_ratio=0.8,
        seed=21,
    )
    print(f"\n{'bulk':>5} {'updates':>8} {'upd/s':>10} {'RMSE':>8}")
    for bulk in range(1, 5):
        report = regression.process_bulk(stream.batches(3))
        model = regression.refresh_model()
        print(
            f"{bulk:>5} {report.updates:>8} {report.throughput:>10.0f} "
            f"{model.training_rmse:>8.3f}"
        )

    print("\npromotion effect (one-hot weights):")
    for name, weight in model.coefficients().items():
        if name.startswith("onpromotion"):
            print(f"  {name:<20} {weight:+.4f}")


if __name__ == "__main__":
    main()
