#!/usr/bin/env python3
"""The Regression tab (Figure 2b) on the synthetic Retailer database.

Maintains the COVAR matrix for the demo's feature set — ksn, price,
subcategory, category, categoryCluster (features) and inventoryunits
(label) — under bulks of updates, re-converging the ridge model after
every bulk with warm-started batch gradient descent.

Run:  python examples/retailer_regression.py
"""

from repro.apps import RegressionApp
from repro.datasets import (
    RETAILER_SCHEMAS,
    RetailerConfig,
    UpdateStream,
    generate_retailer,
    regression_features,
    retailer_row_factories,
    retailer_variable_order,
)


def main() -> None:
    config = RetailerConfig(locations=10, dates=25, items=60, inventory_rows=2000)
    database = generate_retailer(config)
    print(f"Retailer database: {database}")

    features, label = regression_features()
    app = RegressionApp(
        database,
        RETAILER_SCHEMAS,
        features,
        label,
        regularization=1e-2,
        order=retailer_variable_order(),
    )
    model = app.refresh_model()
    covar = app.covar()
    print(
        f"\nInitial model over {covar.dimension} one-hot columns "
        f"({len(model.feature_columns)} feature columns):"
    )
    print(app.render())

    stream = UpdateStream(
        app.session.database,
        retailer_row_factories(config, database),
        targets=("Inventory",),
        batch_size=500,
        insert_ratio=0.75,
        seed=42,
    )

    print("\nProcessing bulks of updates (insert/delete mix on Inventory):")
    print(f"{'bulk':>5} {'updates':>8} {'upd/s':>10} {'RMSE':>8} {'iters':>6}")
    for bulk in range(1, 6):
        report = app.process_bulk(stream.batches(4))
        model = app.refresh_model()
        print(
            f"{bulk:>5} {report.updates:>8} {report.throughput:>10.0f} "
            f"{model.training_rmse:>8.3f} {model.iterations:>6}"
        )

    print("\nFinal parameters (top weights by magnitude):")
    coefficients = sorted(
        model.coefficients().items(), key=lambda kv: -abs(kv[1])
    )
    print(f"  intercept                    {model.intercept:+9.4f}")
    for name, weight in coefficients[:10]:
        print(f"  {name:<28} {weight:+9.4f}")

    example_row = {
        "ksn": 3,
        "prize": 20.0,
        "subcategory": 5,
        "category": 5,
        "categoryCluster": 2,
    }
    print(f"\npredict({example_row}) = {model.predict(example_row):.2f} units")


if __name__ == "__main__":
    main()
