#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1, end to end.

Maintains SUM(g_B(B) * g_C(C) * g_D(D)) over R(A,B) ⋈ S(A,C,D) under four
payload rings — counts, COVAR (continuous), COVAR (categorical C), MI —
and shows delta propagation under inserts and deletes. Every number printed
here appears in Figure 1 of the paper.

Run:  python examples/quickstart.py
"""

from repro import FIVMEngine, deletes, inserts
from repro.datasets import (
    toy_count_query,
    toy_covar_categorical_query,
    toy_covar_continuous_query,
    toy_database,
    toy_mi_query,
    toy_variable_order,
)


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def engine_for(query):
    engine = FIVMEngine(query, order=toy_variable_order())
    engine.initialize(toy_database())
    return engine


def main() -> None:
    db = toy_database()
    print("Toy database (Figure 1):")
    for relation in db:
        print(f"  {relation.name}{relation.schema}: {sorted(relation.data)}")

    # ------------------------------------------------------------------
    banner("Scenario 1 — count aggregate (Z ring)")
    engine = engine_for(toy_count_query())
    print("view tree:")
    print(engine.tree.render())
    print(f"\nQ = COUNT(R ⋈ S) = {engine.result().payload(())}")
    print(f"V_R partial counts: {dict(engine.view('V_R').data)}")
    print(f"V_S partial counts: {dict(engine.view('V_S').data)}")

    # ------------------------------------------------------------------
    banner("Scenario 2 — COVAR matrix, continuous B, C, D (degree-3 ring)")
    engine = engine_for(toy_covar_continuous_query())
    payload = engine.result().payload(())
    print(f"count c = {payload.c}")
    print(f"sums  s = {payload.s.tolist()}            (SUM(B), SUM(C), SUM(D))")
    print("quadratic Q (SUM(X*Y)):")
    for row in payload.q.tolist():
        print(f"   {row}")

    # ------------------------------------------------------------------
    banner("Scenario 3 — COVAR with categorical C (relational values)")
    engine = engine_for(toy_covar_categorical_query())
    ring = engine.plan.ring
    payload = engine.result().payload(())
    print(f"count        : {payload.c.annotation(())}")
    print(f"SUM(B)       : {ring.linear(payload, 0).annotation(())}")
    print(f"SUM(1) by C  : {ring.linear(payload, 1).as_dict()}")
    print(f"SUM(B) by C  : {ring.entry(payload, 0, 1).as_dict()}   (Q_BC)")
    print(f"SUM(D) by C  : {ring.entry(payload, 1, 2).as_dict()}   (Q_CD)")
    print(f"SUM(B*D)     : {ring.entry(payload, 0, 2).annotation(())}")

    # ------------------------------------------------------------------
    banner("Scenario 4 — MI counts, categorical B, C, D")
    engine = engine_for(toy_mi_query())
    ring = engine.plan.ring
    payload = engine.result().payload(())
    print(f"C_0  = {payload.c.annotation(())}")
    print(f"C_B  = {ring.linear(payload, 0).as_dict()}")
    print(f"C_C  = {ring.linear(payload, 1).as_dict()}")
    print(f"C_D  = {ring.linear(payload, 2).as_dict()}")
    print(f"C_BC = {ring.entry(payload, 0, 1).as_dict()}")

    from repro import mutual_information_matrix

    mi = mutual_information_matrix(payload, engine.plan)
    print("\npairwise MI (nats):")
    print(mi.render())

    # ------------------------------------------------------------------
    banner("Incremental maintenance — δR and δS (inserts AND deletes)")
    engine = engine_for(toy_count_query())
    print(f"initial count: {engine.result().payload(())}")
    engine.apply("R", inserts(("A", "B"), [("a1", 1)]))
    print(f"after insert R(a1, b1): {engine.result().payload(())}")
    engine.apply("S", deletes(("A", "C", "D"), [("a2", 2, 2)]))
    print(f"after delete S(a2, c2, d2): {engine.result().payload(())}")
    engine.apply("R", deletes(("A", "B"), [("a1", 1), ("a1", 1)]))
    print(f"after deleting both R(a1, b1): {engine.result().payload(())}")


if __name__ == "__main__":
    main()
