#!/usr/bin/env python3
"""The Model Selection tab (Figure 2a) on the synthetic Retailer database.

Ranks attributes by pairwise mutual information with the label
``inventoryunits`` and selects those above a threshold, re-ranking after
every bulk of 10K updates exactly like the demo.

Run:  python examples/retailer_model_selection.py
"""

from repro.apps import ModelSelectionApp
from repro.datasets import (
    RETAILER_SCHEMAS,
    RetailerConfig,
    UpdateStream,
    generate_retailer,
    retailer_row_factories,
    retailer_variable_order,
)
from repro.ml.discretize import binning_for_attribute
from repro.rings import Feature


def main() -> None:
    config = RetailerConfig(locations=10, dates=25, items=60, inventory_rows=2000)
    database = generate_retailer(config)
    print(f"Retailer database: {database}")

    # The demo computes MI over all attributes; a representative subset
    # keeps this example snappy in pure Python. Continuous attributes are
    # discretized into bins derived from the data (Section 2).
    item = database.relation("Item")
    inventory = database.relation("Inventory")
    census = database.relation("Census")
    features = (
        Feature.categorical("ksn"),
        Feature.categorical("subcategory"),
        Feature.categorical("category"),
        Feature.categorical("categoryCluster"),
        Feature("prize", "continuous", binning_for_attribute(item, "prize", 8)),
        Feature(
            "inventoryunits",
            "continuous",
            binning_for_attribute(inventory, "inventoryunits", 8),
        ),
        Feature(
            "population", "continuous", binning_for_attribute(census, "population", 8)
        ),
        Feature.categorical("rain"),
        Feature.categorical("snow"),
    )

    app = ModelSelectionApp(
        database,
        RETAILER_SCHEMAS,
        features,
        label="inventoryunits",
        threshold=0.10,
        order=retailer_variable_order(),
    )

    print("\nInitial ranking:")
    print(app.render())

    stream = UpdateStream(
        app.session.database,
        retailer_row_factories(config, database),
        targets=("Inventory",),
        batch_size=1000,
        insert_ratio=0.7,
        seed=7,
    )

    for bulk in range(1, 4):
        report = app.process_bulk(stream.bulk(10_000))
        print(
            f"\nAfter bulk {bulk} "
            f"({report.updates} updates, {report.throughput:.0f} upd/s):"
        )
        print(app.render())
        print(f"selected features: {app.selected_features()}")


if __name__ == "__main__":
    main()
