"""Scalar rings: Z, floats, and the bool/min-plus semirings."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RingError
from repro.rings import BoolRing, FloatRing, IntegerRing, MinPlusRing, Z
from repro.rings.base import check_ring_axioms

ints = st.integers(min_value=-50, max_value=50)


class TestIntegerRing:
    def test_identities(self):
        assert Z.zero() == 0
        assert Z.one() == 1

    def test_add_mul_neg(self):
        assert Z.add(2, 3) == 5
        assert Z.mul(2, 3) == 6
        assert Z.neg(4) == -4
        assert Z.sub(2, 5) == -3

    def test_from_int_is_identity(self):
        assert Z.from_int(7) == 7
        assert Z.from_int(-3) == -3

    def test_scale(self):
        assert Z.scale(3, 4) == 12
        assert Z.scale(3, 0) == 0
        assert Z.scale(3, -2) == -6

    def test_sum_prod(self):
        assert Z.sum([1, 2, 3]) == 6
        assert Z.sum([]) == 0
        assert Z.prod([2, 3, 4]) == 24
        assert Z.prod([]) == 1

    def test_is_zero(self):
        assert Z.is_zero(0)
        assert not Z.is_zero(2)

    @given(ints, ints, ints)
    def test_axioms(self, a, b, c):
        check_ring_axioms(Z, a, b, c)


class TestFloatRing:
    def setup_method(self):
        self.ring = FloatRing()

    def test_basics(self):
        assert self.ring.add(1.5, 2.5) == 4.0
        assert self.ring.mul(2.0, 3.0) == 6.0
        assert self.ring.neg(1.25) == -1.25
        assert self.ring.from_int(2) == 2.0

    def test_zero_tolerance(self):
        tolerant = FloatRing(zero_tolerance=1e-9)
        assert tolerant.is_zero(5e-10)
        assert not tolerant.is_zero(1e-3)
        strict = FloatRing()
        assert not strict.is_zero(5e-10)

    def test_close(self):
        assert self.ring.close(1.0, 1.0 + 1e-12)
        assert not self.ring.close(1.0, 1.1)

    @given(
        st.integers(-20, 20).map(float),
        st.integers(-20, 20).map(float),
        st.integers(-20, 20).map(float),
    )
    def test_axioms_on_integer_floats(self, a, b, c):
        check_ring_axioms(self.ring, a, b, c)


class TestBoolRing:
    def setup_method(self):
        self.ring = BoolRing()

    def test_or_and_semantics(self):
        assert self.ring.add(True, False) is True
        assert self.ring.add(False, False) is False
        assert self.ring.mul(True, True) is True
        assert self.ring.mul(True, False) is False

    def test_no_negation(self):
        assert not self.ring.has_negation
        with pytest.raises(RingError):
            self.ring.neg(True)

    def test_from_int(self):
        assert self.ring.from_int(0) is False
        assert self.ring.from_int(3) is True
        with pytest.raises(RingError):
            self.ring.from_int(-1)

    def test_scale_rejects_deletes(self):
        with pytest.raises(RingError):
            self.ring.scale(True, -1)

    @given(st.booleans(), st.booleans(), st.booleans())
    def test_semiring_axioms(self, a, b, c):
        check_ring_axioms(self.ring, a, b, c)


class TestMinPlusRing:
    def setup_method(self):
        self.ring = MinPlusRing()

    def test_identities(self):
        assert self.ring.zero() == math.inf
        assert self.ring.one() == 0.0

    def test_min_plus_semantics(self):
        assert self.ring.add(3.0, 5.0) == 3.0
        assert self.ring.mul(3.0, 5.0) == 8.0

    def test_zero_annihilates(self):
        assert self.ring.mul(3.0, self.ring.zero()) == math.inf
        assert self.ring.is_zero(math.inf)

    def test_no_negation(self):
        with pytest.raises(RingError):
            self.ring.neg(1.0)
        with pytest.raises(RingError):
            self.ring.from_int(-1)

    @given(
        st.integers(0, 30).map(float),
        st.integers(0, 30).map(float),
        st.integers(0, 30).map(float),
    )
    def test_semiring_axioms(self, a, b, c):
        check_ring_axioms(self.ring, a, b, c)

    def test_from_int(self):
        assert self.ring.from_int(0) == math.inf
        assert self.ring.from_int(5) == 0.0


class TestGenericDefaults:
    def test_default_scale_binary_doubling(self):
        # IntegerRing overrides scale; exercise the generic path through a
        # minimal ring that does not.
        class MinimalRing(IntegerRing):
            def scale(self, a, n):  # force the generic implementation
                return super(IntegerRing, self).scale(a, n)

            def from_int(self, n):
                return super(IntegerRing, self).from_int(n)

        ring = MinimalRing()
        assert ring.scale(3, 7) == 21
        assert ring.scale(3, -7) == -21
        assert ring.scale(3, 0) == 0
        assert ring.from_int(9) == 9

    def test_check_ring_axioms_raises_on_broken_ring(self):
        class BrokenRing(IntegerRing):
            def mul(self, a, b):
                return a * b + 1  # not distributive, wrong identity

        with pytest.raises(RingError):
            check_ring_axioms(BrokenRing(), 1, 2, 3)
