"""The generalized cofactor ring (over float and relational scalars)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rings import (
    CofactorLayout,
    FloatRing,
    GeneralCofactorRing,
    NumericCofactorRing,
    RelationRing,
    RelationValue,
)
from repro.rings.base import check_ring_axioms

LAYOUT = CofactorLayout(("B", "C", "D"))


@pytest.fixture
def float_ring():
    return GeneralCofactorRing(FloatRing(), LAYOUT)


@pytest.fixture
def rel_ring():
    return GeneralCofactorRing(RelationRing(), LAYOUT)


def lift_cont(ring, index, x):
    """Continuous lift for either scalar ring."""
    if isinstance(ring.scalar, RelationRing):
        return ring.lift(index, RelationValue.scalar(x), RelationValue.scalar(x * x))
    return ring.lift(index, float(x), float(x * x))


def lift_cat(ring, index, attr, value):
    indicator = RelationValue.indicator(attr, value)
    return ring.lift(index, indicator, indicator)


class TestFloatBackend:
    def test_identities(self, float_ring):
        assert float_ring.is_zero(float_ring.zero())
        one = float_ring.one()
        assert one.c == 1.0 and not one.s and not one.q

    def test_lift(self, float_ring):
        g = lift_cont(float_ring, 1, 3.0)
        assert g.c == 1.0
        assert g.s == {1: 3.0}
        assert g.q == {(1, 1): 9.0}

    def test_mul_cross_terms_upper_triangle(self, float_ring):
        a = lift_cont(float_ring, 0, 2.0)
        b = lift_cont(float_ring, 1, 5.0)
        p = float_ring.mul(a, b)
        assert p.q[(0, 1)] == 10.0
        assert (1, 0) not in p.q

    def test_mul_diagonal_doubles(self, float_ring):
        a = lift_cont(float_ring, 0, 2.0)
        b = lift_cont(float_ring, 0, 3.0)
        p = float_ring.mul(a, b)
        # q = cb*qa + ca*qb + 2*sa_0*sb_0 = 4 + 9 + 2*6 = 25 = (2+3)^2
        assert p.q[(0, 0)] == 25.0
        assert p.s[0] == 5.0

    def test_entry_symmetric_read(self, float_ring):
        a = float_ring.mul(lift_cont(float_ring, 0, 2.0), lift_cont(float_ring, 2, 3.0))
        assert float_ring.entry(a, 0, 2) == float_ring.entry(a, 2, 0) == 6.0
        assert float_ring.entry(a, 1, 2) == 0.0
        assert float_ring.linear(a, 0) == 2.0
        assert float_ring.linear(a, 1) == 0.0


class TestEquivalenceWithNumericRing:
    """The generalized ring over floats must agree with the numpy ring."""

    @given(
        st.lists(
            st.tuples(st.integers(0, 2), st.integers(-3, 3)),
            min_size=1,
            max_size=5,
        )
    )
    def test_same_results_on_random_expressions(self, ops):
        numeric = NumericCofactorRing(LAYOUT)
        general = GeneralCofactorRing(FloatRing(), LAYOUT)
        num_total = numeric.zero()
        gen_total = general.zero()
        num_prod = numeric.one()
        gen_prod = general.one()
        for index, value in ops:
            num_prod = numeric.mul(num_prod, numeric.lift(index, float(value)))
            gen_prod = general.mul(gen_prod, lift_cont(general, index, float(value)))
            num_total = numeric.add(num_total, num_prod)
            gen_total = general.add(gen_total, gen_prod)
        assert num_total.c == gen_total.c
        for i in range(3):
            assert num_total.s[i] == gen_total.s.get(i, 0.0)
            for j in range(3):
                key = (min(i, j), max(i, j))
                assert num_total.q[i, j] == gen_total.q.get(key, 0.0)


class TestRelationalBackend:
    def test_categorical_lift(self, rel_ring):
        g = lift_cat(rel_ring, 1, "C", "c1")
        assert g.s[1].as_dict() == {("c1",): 1}
        assert g.q[(1, 1)].as_dict() == {("c1",): 1}

    def test_mixed_product_gives_group_by(self, rel_ring):
        """g_B(b) * g_C(c): Q_BC must be SUM(B) GROUP BY C."""
        g_b = lift_cont(rel_ring, 0, 4.0)
        g_c = lift_cat(rel_ring, 1, "C", "c2")
        p = rel_ring.mul(g_b, g_c)
        q_bc = p.q[(0, 1)]
        assert q_bc.schema == ("C",)
        assert q_bc.as_dict() == {("c2",): 4.0}

    def test_cat_cat_product_gives_joint_counts(self, rel_ring):
        g_c = lift_cat(rel_ring, 1, "C", "c1")
        g_d = lift_cat(rel_ring, 2, "D", "d2")
        p = rel_ring.mul(g_c, g_d)
        q_cd = p.q[(1, 2)]
        assert q_cd.schema == ("C", "D")
        assert q_cd.as_dict() == {("c1", "d2"): 1}

    def test_delete_cancels_insert(self, rel_ring):
        g = lift_cat(rel_ring, 0, "B", "b1")
        assert rel_ring.is_zero(rel_ring.add(g, rel_ring.neg(g)))

    def test_scale(self, rel_ring):
        g = lift_cat(rel_ring, 0, "B", "b1")
        doubled = rel_ring.scale(g, 2)
        assert doubled.c.annotation(()) == 2
        assert doubled.s[0].annotation(("b1",)) == 2
        assert rel_ring.is_zero(rel_ring.scale(g, 0))

    def test_eq_ignores_explicit_zeros(self, rel_ring):
        a = lift_cat(rel_ring, 0, "B", "b1")
        b = rel_ring.copy(a)
        b.s[1] = RelationValue()  # explicit zero entry
        assert rel_ring.eq(a, b)

    def test_close(self, rel_ring):
        a = lift_cont(rel_ring, 0, 1.0)
        b = rel_ring.copy(a)
        assert rel_ring.close(a, b)

    def test_add_inplace_accumulates(self, rel_ring):
        acc = rel_ring.copy(rel_ring.zero())
        rel_ring.add_inplace(acc, lift_cat(rel_ring, 0, "B", "b1"))
        rel_ring.add_inplace(acc, lift_cat(rel_ring, 0, "B", "b1"))
        assert acc.s[0].annotation(("b1",)) == 2


class TestIntegerScalarBackend:
    """Composition with Z: exact COVAR over integer-valued data."""

    def test_exact_integer_arithmetic(self):
        from repro.rings import Z
        from repro.rings.lifting import Feature, general_cofactor_lift

        ring = GeneralCofactorRing(Z, LAYOUT)
        lift_b = general_cofactor_lift(ring, Feature.continuous("B"))
        lift_c = general_cofactor_lift(ring, Feature.continuous("C"))
        total = ring.add(
            ring.mul(lift_b(2), lift_c(3)), ring.mul(lift_b(10**12), lift_c(1))
        )
        # values stay Python ints: no float rounding even at 10^24
        assert total.q[(0, 0)] == 4 + 10**24
        assert isinstance(total.q[(0, 0)], int)
        assert total.q[(0, 1)] == 6 + 10**12

    def test_categorical_rejected(self):
        from repro.errors import RingError
        from repro.rings import Z
        from repro.rings.lifting import Feature, general_cofactor_lift

        ring = GeneralCofactorRing(Z, LAYOUT)
        with pytest.raises(RingError):
            general_cofactor_lift(ring, Feature.categorical("B"))


# ----------------------------------------------------------------------
# Axioms for the composed ring (the paper's key algebraic claim)
# ----------------------------------------------------------------------

REL_RING = GeneralCofactorRing(RelationRing(), LAYOUT)


def relational_cofactors():
    """Random sums of scaled products of categorical/continuous lifts.

    Slot kinds are fixed (0 continuous; 1 and 2 categorical), as they are
    in any real payload plan — mixing kinds per slot would make sums
    between terms undefined, which the engine never produces.
    """
    spec = st.tuples(st.integers(0, 2), st.integers(0, 3))

    def to_lift(pair):
        index, value = pair
        if index == 0:
            return lift_cont(REL_RING, index, float(value) - 1.0)
        attr = LAYOUT.attributes[index]
        return lift_cat(REL_RING, index, attr, f"v{value}")

    lift = spec.map(to_lift)
    product = st.lists(lift, min_size=1, max_size=2).map(REL_RING.prod)
    term = st.tuples(product, st.integers(-2, 2)).map(
        lambda pair: REL_RING.scale(pair[0], pair[1])
    )
    return st.lists(term, max_size=2).map(REL_RING.sum)


@given(relational_cofactors(), relational_cofactors(), relational_cofactors())
def test_composed_ring_axioms(a, b, c):
    check_ring_axioms(REL_RING, a, b, c)
