"""Bulk ring kernels cross-validated against the per-element operations.

Property-style: random payload blocks for every ring implementing the
kernels on arrays (scalar rings, the numeric cofactor ring) and for the
generic loop fallback (``GeneralCofactorRing(FloatRing())``), checked
element-wise against loops of ``add``/``mul``/``neg``/``scale``/``lift``,
including ±-cancellation to the exact ring zero.
"""

import random

import numpy as np
import pytest

from repro.rings import (
    CofactorLayout,
    FloatRing,
    GeneralCofactorRing,
    NumericCofactorRing,
    Z,
)

LAYOUT = CofactorLayout(("x", "y", "z"))


def payload_samples(ring, rng, n):
    """Random payloads with plenty of structure (and some exact zeros)."""
    if isinstance(ring, NumericCofactorRing):
        out = []
        for _ in range(n):
            payload = ring.lift(rng.randrange(ring.degree), rng.uniform(-3, 3))
            if rng.random() < 0.5:
                payload = ring.mul(
                    payload,
                    ring.lift(rng.randrange(ring.degree), rng.uniform(-3, 3)),
                )
            if rng.random() < 0.1:
                payload = ring.zero()
            out.append(payload)
        return out
    if isinstance(ring, GeneralCofactorRing):
        return [
            ring.lift(rng.randrange(ring.degree), rng.uniform(-3, 3), rng.uniform(0, 9))
            if rng.random() > 0.1
            else ring.zero()
            for _ in range(n)
        ]
    if ring is Z:
        return [rng.randrange(-5, 6) for _ in range(n)]
    return [rng.uniform(-5, 5) if rng.random() > 0.1 else 0.0 for _ in range(n)]


def assert_payload_equal(ring, left, right):
    close = getattr(ring, "close", None)
    if close is not None and not isinstance(left, (int, bool)):
        assert close(left, right, 1e-9)
    else:
        assert ring.eq(left, right)


RINGS = [
    pytest.param(Z, id="Z"),
    pytest.param(FloatRing(), id="float"),
    pytest.param(NumericCofactorRing(LAYOUT), id="numeric-cofactor"),
    pytest.param(GeneralCofactorRing(FloatRing(), LAYOUT), id="general-fallback"),
]


@pytest.mark.parametrize("ring", RINGS)
class TestBulkKernels:
    def rng(self):
        return random.Random(17)

    def test_roundtrip_through_block(self, ring):
        payloads = payload_samples(ring, self.rng(), 23)
        unpacked = list(ring.block_payloads(ring.make_block(payloads)))
        assert len(unpacked) == 23
        for a, b in zip(payloads, unpacked):
            assert_payload_equal(ring, a, b)

    def test_add_mul_neg_many_match_elementwise(self, ring):
        rng = self.rng()
        a = payload_samples(ring, rng, 31)
        b = payload_samples(ring, rng, 31)
        block_a, block_b = ring.make_block(a), ring.make_block(b)
        for kernel, op in (
            (ring.add_many, ring.add),
            (ring.mul_many, ring.mul),
        ):
            got = list(ring.block_payloads(kernel(block_a, block_b)))
            for x, y, result in zip(a, b, got):
                assert_payload_equal(ring, op(x, y), result)
        got = list(ring.block_payloads(ring.neg_many(block_a)))
        for x, result in zip(a, got):
            assert_payload_equal(ring, ring.neg(x), result)

    def test_scale_and_from_int_many(self, ring):
        rng = self.rng()
        payloads = payload_samples(ring, rng, 19)
        counts = [rng.randrange(-4, 5) for _ in range(19)]
        scaled = list(
            ring.block_payloads(ring.scale_many(ring.make_block(payloads), counts))
        )
        for payload, n, result in zip(payloads, counts, scaled):
            assert_payload_equal(ring, ring.scale(payload, n), result)
        images = list(ring.block_payloads(ring.from_int_many(counts)))
        for n, result in zip(counts, images):
            assert_payload_equal(ring, ring.from_int(n), result)

    def test_take_and_zero_block(self, ring):
        payloads = payload_samples(ring, self.rng(), 11)
        block = ring.make_block(payloads)
        picks = [8, 0, 3, 3, 10]
        taken = list(ring.block_payloads(ring.take(block, np.array(picks))))
        for i, result in zip(picks, taken):
            assert_payload_equal(ring, payloads[i], result)
        zeros = ring.zero_block(4)
        assert ring.block_size(zeros) == 4
        assert ring.is_zero_many(zeros).all()
        assert ring.block_size(ring.zero_block(0)) == 0

    def test_is_zero_many_matches_is_zero(self, ring):
        payloads = payload_samples(ring, self.rng(), 29)
        mask = ring.is_zero_many(ring.make_block(payloads))
        assert list(mask) == [ring.is_zero(p) for p in payloads]

    def test_sum_segments_matches_sequential_sums(self, ring):
        rng = self.rng()
        payloads = payload_samples(ring, rng, 40)
        ids = [rng.randrange(7) for _ in range(40)]
        summed = list(
            ring.block_payloads(
                ring.sum_segments(ring.make_block(payloads), np.array(ids), 8)
            )
        )
        assert len(summed) == 8
        for gid in range(8):
            expected = ring.sum(
                ring.copy(p) for p, g in zip(payloads, ids) if g == gid
            )
            assert_payload_equal(ring, expected, summed[gid])

    def test_cancellation_sums_to_exact_ring_zero(self, ring):
        """x + (-x) per segment must hit the *exact* zero (prunable)."""
        payloads = payload_samples(ring, self.rng(), 15)
        block = ring.make_block(payloads)
        negated = ring.neg_many(block)
        both = ring.make_block(
            list(ring.block_payloads(block)) + list(ring.block_payloads(negated))
        )
        ids = np.r_[np.arange(15), np.arange(15)]
        totals = ring.sum_segments(both, ids, 15)
        assert ring.is_zero_many(totals).all()
        for payload in ring.block_payloads(totals):
            assert ring.is_zero(payload)


@pytest.mark.parametrize(
    "ring",
    [
        pytest.param(NumericCofactorRing(LAYOUT), id="numeric-cofactor"),
        pytest.param(GeneralCofactorRing(FloatRing(), LAYOUT), id="general-fallback"),
    ],
)
def test_lift_many_matches_elementwise_lift(ring):
    rng = random.Random(23)
    values = [rng.uniform(-3, 3) for _ in range(17)]
    for index in range(ring.degree):
        if isinstance(ring, GeneralCofactorRing):
            squares = [v * v for v in values]
            block = ring.lift_many(index, values, squares)
            expected = [ring.lift(index, v, v * v) for v in values]
        else:
            block = ring.lift_many(index, values)
            expected = [ring.lift(index, v) for v in values]
        for want, got in zip(expected, ring.block_payloads(block)):
            assert_payload_equal(ring, want, got)


def test_lift_many_without_lift_raises():
    from repro.errors import RingError

    with pytest.raises(RingError, match="lift_many"):
        Z.lift_many(0, [1, 2])


def test_scalar_blocks_scatter_native_python_payloads():
    """Block payloads must be indistinguishable from per-tuple ones."""
    for ring, values in ((Z, [1, -2, 3]), (FloatRing(), [0.5, -1.5, 2.0])):
        out = list(ring.block_payloads(ring.make_block(values)))
        assert out == values
        assert all(type(v) is type(values[0]) for v in out)
