"""DecaySpec / DecayRing semantics: boosted entry, lazy settle, rescale."""

import math

import pytest

from repro.data import Relation
from repro.errors import RingError
from repro.rings import (
    CofactorLayout,
    DecayRing,
    DecaySpec,
    FloatRing,
    GeneralCofactorRing,
    IntegerRing,
    NumericCofactorRing,
    RelationRing,
    payload_drift,
    result_drift,
)


class TestDecaySpec:
    def test_parse_rate_and_every(self):
        spec = DecaySpec.parse("0.99/1000")
        assert spec.rate == 0.99 and spec.every == 1000
        assert spec.describe() == "0.99/1000"

    def test_parse_rate_alone_means_every_event(self):
        assert DecaySpec.parse("0.5") == DecaySpec(0.5, 1)

    @pytest.mark.parametrize("text", ["", "fast", "0.9/x", "/10"])
    def test_parse_rejects_garbage(self, text):
        with pytest.raises(RingError, match="decay spec"):
            DecaySpec.parse(text)

    @pytest.mark.parametrize("rate", [0.0, 1.0, -0.5, 2.0])
    def test_rate_must_be_in_open_unit_interval(self, rate):
        with pytest.raises(RingError, match="rate"):
            DecaySpec(rate, 10)

    def test_every_must_be_positive(self):
        with pytest.raises(RingError, match="interval"):
            DecaySpec(0.9, 0)


class TestDecayRingConstruction:
    def test_refuses_integer_ring(self):
        with pytest.raises(RingError, match="cannot scale payloads by a float"):
            DecayRing(IntegerRing(), 0.9)

    def test_refuses_general_cofactor_over_relation_scalar(self):
        ring = GeneralCofactorRing(RelationRing(), CofactorLayout(("b",)))
        with pytest.raises(RingError, match="cannot scale payloads by a float"):
            DecayRing(ring, 0.9)

    def test_accepts_float_and_numeric_cofactor_rings(self):
        DecayRing(FloatRing(), 0.9)
        DecayRing(NumericCofactorRing(CofactorLayout(("b",))), 0.9)

    def test_rate_validated(self):
        with pytest.raises(RingError, match="rate"):
            DecayRing(FloatRing(), 1.5)

    def test_never_scalar_despite_scalar_base(self):
        ring = DecayRing(FloatRing(), 0.9)
        assert ring.is_scalar is False
        assert ring.has_float_scaling is True


class TestDecayClock:
    def test_boost_is_inverse_rate_power(self):
        ring = DecayRing(FloatRing(), 0.5)
        assert ring.from_int(1) == 1.0
        ring.advance(2)
        assert ring.ticks == 2
        assert ring.from_int(1) == pytest.approx(0.5 ** -2)
        assert ring.scale(3.0, 2) == pytest.approx(6.0 * 0.5 ** -2)

    def test_advance_rejects_negative(self):
        ring = DecayRing(FloatRing(), 0.5)
        with pytest.raises(RingError, match="backwards"):
            ring.advance(-1)

    def test_settle_factor_scales_with_leaf_count(self):
        ring = DecayRing(FloatRing(), 0.9)
        ring.advance(3)
        assert ring.settle_factor(1) == pytest.approx(0.9 ** 3)
        assert ring.settle_factor(4) == pytest.approx(0.9 ** 12)

    def test_settle_then_read_matches_direct_decay(self):
        # An event entered at tick t and read at tick T must weigh λ^(T-t).
        ring = DecayRing(FloatRing(), 0.8)
        ring.advance(2)
        stored = ring.from_int(1)  # boosted by 0.8^-2
        ring.advance(3)  # now at tick 5
        decayed = stored * ring.settle_factor(1)
        assert decayed == pytest.approx(0.8 ** (5 - 2))

    def test_reset_rebases_clock(self):
        ring = DecayRing(FloatRing(), 0.9)
        ring.advance(5)
        ring.reset()
        assert ring.ticks == 0 and ring.boost == 1.0
        assert ring.from_int(1) == 1.0

    def test_needs_rescale_when_boost_overflows_limit(self):
        ring = DecayRing(FloatRing(), 0.5, boost_limit=10.0)
        assert not ring.needs_rescale
        ring.advance(3)  # boost 8 < 10
        assert not ring.needs_rescale
        ring.advance(1)  # boost 16 > 10
        assert ring.needs_rescale
        ring.reset()
        assert not ring.needs_rescale

    def test_bulk_entry_points_are_boosted(self):
        ring = DecayRing(FloatRing(), 0.5)
        ring.advance(1)
        assert list(ring.from_int_many([1, 2])) == [2.0, 4.0]
        assert list(ring.scale_many(ring.make_block([1.0, 1.0]), [3, -1])) == [
            6.0,
            -2.0,
        ]

    def test_name_and_delegation(self):
        base = FloatRing()
        ring = DecayRing(base, 0.9)
        assert "Decay<" in ring.name and base.name in ring.name
        assert ring.add(1.0, 2.0) == 3.0
        assert ring.has_bulk_kernels == base.has_bulk_kernels


class TestDrift:
    def test_payload_drift_scalars(self):
        assert payload_drift(1.0, 1.25) == pytest.approx(0.25)
        assert payload_drift(3, 3) == 0.0

    def test_payload_drift_numeric_cofactor(self):
        ring = NumericCofactorRing(CofactorLayout(("b",)))
        a = ring.from_int(1)
        b = ring.scale_float(ring.from_int(1), 0.5)
        assert payload_drift(a, b) == pytest.approx(0.5)
        assert payload_drift(a, a) == 0.0

    def test_payload_drift_fallback_indicator(self):
        assert payload_drift("x", "x") == 0.0
        assert payload_drift("x", "y") == 1.0

    def test_result_drift_over_relations(self):
        ring = FloatRing()
        a = Relation(("a",), ring, {("k",): 1.0, ("m",): 2.0}, name="V")
        b = Relation(("a",), ring, {("k",): 1.5, ("m",): 2.0}, name="V")
        assert result_drift(a, b) == pytest.approx(0.5)
        missing = Relation(("a",), ring, {("k",): 1.0}, name="V")
        assert result_drift(a, missing) == 1.0

    def test_drift_shrinks_with_milder_decay(self):
        # Sanity: λ closer to 1 ⇒ decayed weight closer to undecayed.
        mild = abs(1.0 - 0.999 ** 10)
        harsh = abs(1.0 - 0.9 ** 10)
        assert mild < harsh
        assert math.isclose(mild, payload_drift(1.0, 0.999 ** 10))
