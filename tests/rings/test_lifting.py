"""Lifting functions, features and binnings."""

import pytest

from repro.errors import RingError
from repro.rings import (
    Binning,
    CofactorLayout,
    Feature,
    FloatRing,
    GeneralCofactorRing,
    NumericCofactorRing,
    RelationRing,
    Z,
)
from repro.rings.lifting import (
    constant_lift,
    general_cofactor_lift,
    numeric_cofactor_lift,
)

LAYOUT = CofactorLayout(("B", "C"))


class TestBinning:
    def test_bins_evenly(self):
        binning = Binning(0.0, 10.0, 5)
        assert binning.bin(0.0) == 0
        assert binning.bin(1.9) == 0
        assert binning.bin(2.0) == 1
        assert binning.bin(9.9) == 4

    def test_clamps_out_of_range(self):
        binning = Binning(0.0, 10.0, 5)
        assert binning.bin(-3.0) == 0
        assert binning.bin(10.0) == 4
        assert binning.bin(999.0) == 4

    def test_invalid_configs(self):
        with pytest.raises(RingError):
            Binning(0.0, 10.0, 0)
        with pytest.raises(RingError):
            Binning(5.0, 5.0, 3)

    def test_nan_rejected(self):
        with pytest.raises(RingError):
            Binning(0.0, 1.0, 2).bin(float("nan"))


class TestFeature:
    def test_kinds(self):
        assert not Feature.continuous("B").is_categorical
        assert Feature.categorical("B").is_categorical
        assert Feature.binned("B", 0, 10, 4).is_categorical

    def test_unknown_kind(self):
        with pytest.raises(RingError):
            Feature("B", "nominal")

    def test_binned_carries_binning(self):
        feature = Feature.binned("B", 0, 10, 4)
        assert feature.binning.count == 4


class TestConstantLift:
    def test_maps_everything_to_one(self):
        lift = constant_lift(Z)
        assert lift(42) == 1
        assert lift("anything") == 1


class TestNumericCofactorLift:
    def test_continuous(self):
        ring = NumericCofactorRing(LAYOUT)
        lift = numeric_cofactor_lift(ring, Feature.continuous("C"))
        value = lift(3)
        assert value.s.tolist() == [0.0, 3.0]
        assert value.q[1, 1] == 9.0

    def test_categorical_rejected(self):
        ring = NumericCofactorRing(LAYOUT)
        with pytest.raises(RingError):
            numeric_cofactor_lift(ring, Feature.categorical("C"))


class TestGeneralCofactorLift:
    def test_relational_continuous(self):
        ring = GeneralCofactorRing(RelationRing(), LAYOUT)
        lift = general_cofactor_lift(ring, Feature.continuous("B"))
        value = lift(4)
        assert value.s[0].annotation(()) == 4.0
        assert value.q[(0, 0)].annotation(()) == 16.0

    def test_relational_categorical(self):
        ring = GeneralCofactorRing(RelationRing(), LAYOUT)
        lift = general_cofactor_lift(ring, Feature.categorical("C"))
        value = lift("red")
        assert value.s[1].as_dict() == {("red",): 1}
        assert value.q[(1, 1)].as_dict() == {("red",): 1}

    def test_relational_binned(self):
        ring = GeneralCofactorRing(RelationRing(), LAYOUT)
        lift = general_cofactor_lift(ring, Feature.binned("B", 0, 10, 5))
        value = lift(7.5)
        assert value.s[0].as_dict() == {(3,): 1}

    def test_float_continuous(self):
        ring = GeneralCofactorRing(FloatRing(), LAYOUT)
        lift = general_cofactor_lift(ring, Feature.continuous("B"))
        value = lift(4)
        assert value.s[0] == 4.0
        assert value.q[(0, 0)] == 16.0

    def test_float_categorical_rejected(self):
        ring = GeneralCofactorRing(FloatRing(), LAYOUT)
        with pytest.raises(RingError):
            general_cofactor_lift(ring, Feature.categorical("B"))

    def test_integer_scalar_supported(self):
        ring = GeneralCofactorRing(Z, LAYOUT)
        lift = general_cofactor_lift(ring, Feature.continuous("B"))
        value = lift(4)
        assert value.s[0] == 4
        assert value.q[(0, 0)] == 16

    def test_unknown_scalar_ring_rejected(self):
        from repro.rings import BoolRing

        ring = GeneralCofactorRing(BoolRing(), LAYOUT)
        with pytest.raises(RingError):
            general_cofactor_lift(ring, Feature.continuous("B"))

    def test_unknown_attribute_rejected(self):
        ring = GeneralCofactorRing(RelationRing(), LAYOUT)
        with pytest.raises(RingError):
            general_cofactor_lift(ring, Feature.continuous("Z"))
