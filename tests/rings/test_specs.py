"""Payload specs: ring + lift bundles for the applications."""

import pytest

from repro.errors import RingError
from repro.rings import (
    CountSpec,
    CovarSpec,
    Feature,
    FloatRing,
    GeneralCofactorRing,
    IntegerRing,
    MISpec,
    NumericCofactorRing,
    RelationRing,
    SumProductSpec,
    SumSpec,
)

CONT = (Feature.continuous("B"), Feature.continuous("C"))
MIXED = (Feature.continuous("B"), Feature.categorical("C"))


class TestCountSpec:
    def test_default_z_ring(self):
        plan = CountSpec().build()
        assert isinstance(plan.ring, IntegerRing)
        assert plan.lifts == {}
        assert CountSpec().lifted_attributes == ()


class TestSumSpec:
    def test_single_attribute_sum(self):
        plan = SumSpec("price").build()
        assert isinstance(plan.ring, FloatRing)
        assert plan.lifts["price"](3) == 3.0
        assert SumSpec("price").lifted_attributes == ("price",)


class TestSumProductSpec:
    def test_powers(self):
        plan = SumProductSpec((("x", 1), ("y", 2))).build()
        assert plan.lifts["x"](3) == 3.0
        assert plan.lifts["y"](3) == 9.0

    def test_duplicate_attr_rejected(self):
        with pytest.raises(RingError):
            SumProductSpec((("x", 1), ("x", 2)))

    def test_bad_power_rejected(self):
        with pytest.raises(RingError):
            SumProductSpec((("x", 0),))


class TestCovarSpec:
    def test_auto_picks_numeric_for_continuous(self):
        plan = CovarSpec(CONT).build()
        assert isinstance(plan.ring, NumericCofactorRing)
        assert set(plan.lifts) == {"B", "C"}
        assert plan.layout.attributes == ("B", "C")

    def test_auto_picks_general_for_mixed(self):
        plan = CovarSpec(MIXED).build()
        assert isinstance(plan.ring, GeneralCofactorRing)
        assert isinstance(plan.ring.scalar, RelationRing)

    def test_explicit_general_float_backend(self):
        plan = CovarSpec(CONT, backend="general-float").build()
        assert isinstance(plan.ring, GeneralCofactorRing)
        assert isinstance(plan.ring.scalar, FloatRing)

    def test_numeric_backend_rejects_categorical(self):
        with pytest.raises(RingError):
            CovarSpec(MIXED, backend="numeric").build()

    def test_empty_features_rejected(self):
        with pytest.raises(RingError):
            CovarSpec(())

    def test_unknown_backend_rejected(self):
        with pytest.raises(RingError):
            CovarSpec(CONT, backend="magic")

    def test_lifted_attributes(self):
        assert CovarSpec(MIXED).lifted_attributes == ("B", "C")


class TestMISpec:
    def test_all_categorical_ok(self):
        plan = MISpec((Feature.categorical("B"), Feature.categorical("C"))).build()
        assert isinstance(plan.ring, GeneralCofactorRing)
        assert isinstance(plan.ring.scalar, RelationRing)

    def test_binned_continuous_ok(self):
        plan = MISpec((Feature.binned("B", 0, 1, 4), Feature.categorical("C"))).build()
        value = plan.lifts["B"](0.6)
        assert value.s[0].as_dict() == {(2,): 1}

    def test_unbinned_continuous_rejected(self):
        with pytest.raises(RingError):
            MISpec((Feature.continuous("B"),))

    def test_empty_rejected(self):
        with pytest.raises(RingError):
            MISpec(())
