"""The relational ring: union as +, natural join as *."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RingError
from repro.rings import RelationRing, RelationValue
from repro.rings.base import check_ring_axioms


@pytest.fixture
def ring():
    return RelationRing()


class TestRelationValue:
    def test_scalar_constructor(self):
        value = RelationValue.scalar(3)
        assert value.schema == ()
        assert value.annotation(()) == 3

    def test_indicator_constructor(self):
        value = RelationValue.indicator("X", "x1")
        assert value.schema == ("X",)
        assert value.annotation(("x1",)) == 1

    def test_zero_annotations_dropped(self):
        value = RelationValue(("X",), {("a",): 0, ("b",): 2})
        assert len(value) == 1
        assert value.annotation(("b",)) == 2

    def test_empty_is_schemaless(self):
        value = RelationValue(("X",), {("a",): 0})
        assert value.schema is None
        assert value.is_empty

    def test_schema_canonicalized_to_sorted_order(self):
        value = RelationValue(("C", "B"), {("c1", "b1"): 2})
        assert value.schema == ("B", "C")
        assert value.annotation(("b1", "c1")) == 2

    def test_arity_mismatch_rejected(self):
        with pytest.raises(RingError):
            RelationValue(("X",), {("a", "b"): 1})

    def test_duplicate_schema_attr_rejected(self):
        with pytest.raises(RingError):
            RelationValue(("X", "X"), {("a", "a"): 1})

    def test_missing_schema_rejected(self):
        with pytest.raises(RingError):
            RelationValue(None, {("a",): 1})

    def test_total(self):
        value = RelationValue(("X",), {("a",): 2, ("b",): 5})
        assert value.total() == 7

    def test_equality_of_empties(self):
        assert RelationValue() == RelationValue(("X",), {("a",): 0})


class TestRelationRingOps:
    def test_add_unions_and_sums(self, ring):
        a = RelationValue(("X",), {("a",): 1, ("b",): 2})
        b = RelationValue(("X",), {("b",): 3, ("c",): 1})
        total = ring.add(a, b)
        assert total.as_dict() == {("a",): 1, ("b",): 5, ("c",): 1}

    def test_add_cancellation_removes_keys(self, ring):
        a = RelationValue(("X",), {("a",): 1})
        b = RelationValue(("X",), {("a",): -1})
        assert ring.is_zero(ring.add(a, b))

    def test_add_schema_mismatch(self, ring):
        a = RelationValue(("X",), {("a",): 1})
        b = RelationValue(("Y",), {("a",): 1})
        with pytest.raises(RingError):
            ring.add(a, b)

    def test_add_with_zero(self, ring):
        a = RelationValue(("X",), {("a",): 1})
        assert ring.add(a, ring.zero()) == a
        assert ring.add(ring.zero(), a) == a

    def test_mul_scalar_weighting(self, ring):
        a = RelationValue.scalar(3)
        b = RelationValue(("X",), {("x",): 2})
        assert ring.mul(a, b).as_dict() == {("x",): 6}

    def test_mul_disjoint_schemas_is_product(self, ring):
        a = RelationValue.indicator("X", 1)
        b = RelationValue.indicator("Y", 2)
        product = ring.mul(a, b)
        assert product.schema == ("X", "Y")
        assert product.as_dict() == {(1, 2): 1}

    def test_mul_shared_schema_joins(self, ring):
        a = RelationValue(("A", "B"), {(1, 2): 1, (1, 3): 2})
        b = RelationValue(("B", "C"), {(2, 9): 5, (4, 9): 7})
        product = ring.mul(a, b)
        assert product.schema == ("A", "B", "C")
        assert product.as_dict() == {(1, 2, 9): 5}

    def test_mul_commutative_including_schemas(self, ring):
        a = RelationValue(("A", "B"), {(1, 2): 3})
        b = RelationValue(("B", "C"), {(2, 5): 2})
        assert ring.eq(ring.mul(a, b), ring.mul(b, a))

    def test_mul_by_zero(self, ring):
        a = RelationValue.indicator("X", 1)
        assert ring.is_zero(ring.mul(a, ring.zero()))

    def test_one_is_scalar_unit(self, ring):
        a = RelationValue(("X",), {("x",): 4})
        assert ring.eq(ring.mul(a, ring.one()), a)

    def test_neg(self, ring):
        a = RelationValue(("X",), {("x",): 4})
        assert ring.neg(a).as_dict() == {("x",): -4}
        assert ring.is_zero(ring.neg(ring.zero()))

    def test_scale(self, ring):
        a = RelationValue(("X",), {("x",): 4})
        assert ring.scale(a, 3).as_dict() == {("x",): 12}
        assert ring.is_zero(ring.scale(a, 0))

    def test_from_int(self, ring):
        assert ring.from_int(5).annotation(()) == 5
        assert ring.is_zero(ring.from_int(0))

    def test_add_inplace_never_mutates_singletons(self, ring):
        zero = ring.zero()
        a = RelationValue(("X",), {("x",): 1})
        result = ring.add_inplace(zero, a)
        assert result.as_dict() == {("x",): 1}
        assert ring.zero().is_empty

    def test_add_inplace_accumulates(self, ring):
        acc = ring.copy(RelationValue(("X",), {("x",): 1}))
        ring.add_inplace(acc, RelationValue(("X",), {("x",): 2}))
        assert acc.as_dict() == {("x",): 3}

    def test_copy_isolates(self, ring):
        a = RelationValue(("X",), {("x",): 1})
        b = ring.copy(a)
        ring.add_inplace(b, RelationValue(("X",), {("x",): 5}))
        assert a.as_dict() == {("x",): 1}

    def test_close(self, ring):
        a = RelationValue(("X",), {("x",): 1.0})
        b = RelationValue(("X",), {("x",): 1.0 + 1e-12})
        assert ring.close(a, b)
        assert not ring.close(a, RelationValue(("X",), {("x",): 2.0}))

    def test_join_plan_cached(self, ring):
        a = RelationValue(("A",), {(1,): 1})
        b = RelationValue(("B",), {(2,): 1})
        ring.mul(a, b)
        assert (("A",), ("B",)) in ring._join_plans
        ring.mul(a, b)
        assert len(ring._join_plans) == 1


# ----------------------------------------------------------------------
# Property tests: ring axioms over random single-attribute relations
# ----------------------------------------------------------------------

def relation_values(schema_pool=(("X",), ("Y",), ())):
    """Random relation values over a sampled schema.

    Values over one fixed schema keep + defined; 0-ary schemas produce
    scalars.
    """

    def build(item):
        schema, entries = item
        if not schema:
            return (
                RelationValue((), {(): entries[0][1]})
                if entries
                else RelationValue()
            )
        return RelationValue(schema, {(key,): value for key, value in entries})

    entry = st.tuples(st.integers(0, 3), st.integers(-3, 3))
    return st.tuples(
        st.sampled_from(schema_pool), st.lists(entry, max_size=4, unique_by=lambda e: e[0])
    ).map(build)


@given(relation_values((("X",),)), relation_values((("X",),)), relation_values((("X",),)))
def test_ring_axioms_same_schema(a, b, c):
    check_ring_axioms(RelationRing(), a, b, c)


@given(relation_values(((),)), relation_values((("X",),)), relation_values((("Y",),)))
def test_mixed_schema_mul_axioms(a, b, c):
    """Multiplication across schemas: associativity and commutativity."""
    ring = RelationRing()
    assert ring.eq(ring.mul(a, ring.mul(b, c)), ring.mul(ring.mul(a, b), c))
    assert ring.eq(ring.mul(b, c), ring.mul(c, b))
    assert ring.eq(ring.mul(a, b), ring.mul(b, a))
