"""The numeric degree-m cofactor ring (numpy fast path)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RingError
from repro.rings import CofactorLayout, NumericCofactorRing
from repro.rings.base import check_ring_axioms


@pytest.fixture
def ring():
    return NumericCofactorRing(CofactorLayout(("B", "C", "D")))


class TestLayout:
    def test_index(self):
        layout = CofactorLayout(("B", "C"))
        assert layout.index("B") == 0
        assert layout.index("C") == 1
        assert layout.degree == 2
        assert "B" in layout
        assert "Z" not in layout

    def test_unknown_attribute(self):
        with pytest.raises(RingError):
            CofactorLayout(("B",)).index("C")

    def test_duplicate_attribute(self):
        with pytest.raises(RingError):
            CofactorLayout(("B", "B"))


class TestIdentitiesAndLift:
    def test_zero(self, ring):
        zero = ring.zero()
        assert zero.c == 0.0
        assert not zero.s.any()
        assert not zero.q.any()
        assert ring.is_zero(zero)

    def test_one(self, ring):
        one = ring.one()
        assert one.c == 1.0
        assert not one.s.any()
        assert not ring.is_zero(one)

    def test_lift_shape(self, ring):
        g = ring.lift(1, 3.0)
        assert g.c == 1.0
        assert g.s.tolist() == [0.0, 3.0, 0.0]
        assert g.q[1, 1] == 9.0
        assert g.q.sum() == 9.0

    def test_from_int(self, ring):
        v = ring.from_int(-2)
        assert v.c == -2.0
        assert ring.is_zero(ring.from_int(0))


class TestPaperMulFormula:
    def test_mul_matches_paper_formula(self, ring):
        """a * b = (ca·cb, cb·sa + ca·sb, cb·Qa + ca·Qb + sa sbᵀ + sb saᵀ)."""
        a = ring.lift(0, 2.0)  # g_B(2)
        b = ring.lift(1, 5.0)  # g_C(5)
        p = ring.mul(a, b)
        assert p.c == 1.0
        assert p.s.tolist() == [2.0, 5.0, 0.0]
        expected_q = np.zeros((3, 3))
        expected_q[0, 0] = 4.0
        expected_q[1, 1] = 25.0
        expected_q[0, 1] = expected_q[1, 0] = 10.0
        assert np.array_equal(p.q, expected_q)

    def test_mul_scales_by_counts(self, ring):
        a = ring.from_int(3)
        b = ring.lift(0, 2.0)
        p = ring.mul(a, b)
        assert p.c == 3.0
        assert p.s[0] == 6.0
        assert p.q[0, 0] == 12.0

    def test_q_stays_symmetric_under_ops(self, ring):
        a = ring.mul(ring.lift(0, 2.0), ring.lift(1, 3.0))
        b = ring.mul(ring.lift(1, 1.0), ring.lift(2, 4.0))
        p = ring.add(ring.mul(a, b), ring.scale(a, 2))
        assert np.array_equal(p.q, p.q.T)


class TestMutationSafety:
    def test_add_pure(self, ring):
        a = ring.lift(0, 2.0)
        b = ring.lift(1, 3.0)
        snapshot = (a.c, a.s.copy(), a.q.copy())
        ring.add(a, b)
        assert a.c == snapshot[0]
        assert np.array_equal(a.s, snapshot[1])
        assert np.array_equal(a.q, snapshot[2])

    def test_add_inplace_mutates_left_only(self, ring):
        a = ring.copy(ring.lift(0, 2.0))
        b = ring.lift(1, 3.0)
        b_snapshot = b.s.copy()
        ring.add_inplace(a, b)
        assert a.s[1] == 3.0
        assert np.array_equal(b.s, b_snapshot)

    def test_copy_isolates(self, ring):
        a = ring.lift(0, 2.0)
        b = ring.copy(a)
        ring.add_inplace(b, ring.one())
        assert a.c == 1.0
        assert b.c == 2.0

    def test_zero_returns_fresh_arrays(self, ring):
        z1 = ring.zero()
        z1.s[0] = 99.0
        assert ring.zero().s[0] == 0.0


class TestComparisons:
    def test_eq_exact(self, ring):
        assert ring.eq(ring.lift(0, 2.0), ring.lift(0, 2.0))
        assert not ring.eq(ring.lift(0, 2.0), ring.lift(0, 3.0))

    def test_close(self, ring):
        a = ring.lift(0, 1.0)
        b = ring.copy(a)
        b.s[0] += 1e-12
        assert ring.close(a, b)
        b.s[0] += 1.0
        assert not ring.close(a, b)


# ----------------------------------------------------------------------
# Axioms over integer-valued cofactors (exact float arithmetic)
# ----------------------------------------------------------------------


def cofactors(ring: NumericCofactorRing):
    """Sums of scaled lift products — the subalgebra the engine produces."""
    index = st.integers(0, ring.degree - 1)
    value = st.integers(-3, 3).map(float)
    lift = st.tuples(index, value).map(lambda iv: ring.lift(*iv))
    product = st.lists(lift, min_size=1, max_size=2).map(ring.prod)
    term = st.tuples(product, st.integers(-2, 2)).map(
        lambda pair: ring.scale(pair[0], pair[1])
    )
    return st.lists(term, max_size=3).map(ring.sum)


RING = NumericCofactorRing(CofactorLayout(("B", "C", "D")))


@given(cofactors(RING), cofactors(RING), cofactors(RING))
def test_ring_axioms(a, b, c):
    check_ring_axioms(RING, a, b, c)
