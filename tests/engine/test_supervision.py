"""Self-healing supervision: kill sweeps, replay recovery, budgets.

The acceptance contract for supervised maintenance: a worker killed at
*any* point — mid-batch, mid-gather, mid-publish, mid-checkpoint, mid
window advance, at a decay tick — is respawned from the baseline, healed
by replaying the coordinator's post-baseline log, and the engine's root
view ends **bit-identical** to an uninterrupted run. Fail-stop remains
the backstop: when recovery itself keeps dying the budget trips a
:class:`SupervisionError` and the engine closes (no leaked processes or
/dev/shm segments).
"""

import time

import pytest

from repro.config import EngineConfig
from repro.data import WindowSpec, WindowedStream
from repro.datasets import (
    RetailerConfig,
    UpdateStream,
    generate_retailer,
    retailer_query,
    retailer_row_factories,
    retailer_variable_order,
    toy_count_query,
    toy_covar_continuous_query,
    toy_database,
    toy_row_factories,
    toy_variable_order,
)
from repro.engine import FIVMEngine, ShardedEngine
from repro.engine.sharded import available_backends
from repro.engine.transport import active_shm_segments, available_transports
from repro.errors import EngineError, SupervisionError
from repro.rings import CountSpec
from repro.testing import (
    FaultInjector,
    FaultSpec,
    clear_injector,
    install_injector,
)

needs_process = pytest.mark.skipif(
    "process" not in available_backends(), reason="fork unavailable"
)
needs_shm = pytest.mark.skipif(
    "shm" not in available_transports(), reason="shared memory unavailable"
)

# The three shard topologies that must all self-heal identically.
TOPOLOGIES = [
    pytest.param("serial", "pipe", id="serial"),
    pytest.param("process", "pipe", marks=needs_process, id="pipe"),
    pytest.param(
        "process", "shm", marks=[needs_process, needs_shm], id="shm"
    ),
]


@pytest.fixture(autouse=True)
def _fault_free_afterwards():
    yield
    clear_injector()


def supervised_config(backend, transport, shards, **kw):
    return EngineConfig(
        shards=shards, backend=backend, transport=transport,
        supervise=True, **kw
    )


def retailer_setup(insert_ratio=0.7, seed=5, total_updates=600):
    config = RetailerConfig(
        locations=6, dates=8, items=24, inventory_rows=300, seed=seed
    )
    database = generate_retailer(config)
    stream = UpdateStream(
        database,
        retailer_row_factories(config, database),
        targets=("Inventory", "Weather"),
        batch_size=40,
        insert_ratio=insert_ratio,
        seed=seed,
    )
    return database, list(stream.tuples(total_updates))


def toy_events(total=96, insert_ratio=0.7, seed=11, batch_size=8):
    database = toy_database()
    stream = UpdateStream(
        database,
        toy_row_factories(),
        targets=("R", "S"),
        batch_size=batch_size,
        insert_ratio=insert_ratio,
        seed=seed,
    )
    return database, list(stream.tuples(total))


def reference_result(query, order, database, events, batch_size):
    engine = FIVMEngine(query, order=order)
    engine.initialize(database)
    engine.apply_stream(iter(events), batch_size=batch_size)
    return engine.result()


def run_supervised_retailer(backend, transport, specs, shards=2,
                            batch_size=50):
    """Initialize → stream → publish → export → result under faults."""
    database, events = retailer_setup()
    expected = reference_result(
        retailer_query(CountSpec()), retailer_variable_order(),
        database, events, batch_size,
    )
    install_injector(FaultInjector(tuple(specs)))
    engine = ShardedEngine(
        retailer_query(CountSpec()),
        order=retailer_variable_order(),
        config=supervised_config(backend, transport, shards),
    )
    with engine:
        engine.initialize(database)
        engine.apply_stream(iter(events), batch_size=batch_size)
        engine.publish(event_offset=len(events))
        state = engine.export_state()
        result = engine.result()
        health = engine.health()
    return result, expected, state, health


class TestKillSweep:
    """Kills at five distinct pipeline points, every backend/transport.

    Gather-op hit order in the driver above: ``export`` fires once per
    shard at initialize (baseline capture) and again at export_state;
    ``result`` fires at publish and again at the final result().
    """

    KILL_POINTS = {
        "mid-batch": dict(site="worker.apply", shard=1, at=4),
        "mid-route": dict(site="coordinator.send", shard=0, at=3),
        "mid-publish": dict(
            site="coordinator.gather", op="result", shard=0, at=1
        ),
        "mid-checkpoint": dict(
            site="coordinator.gather", op="export", shard=1, at=2
        ),
        "mid-gather": dict(
            site="coordinator.gather", op="result", shard=1, at=2
        ),
    }

    @pytest.mark.parametrize("point", sorted(KILL_POINTS))
    @pytest.mark.parametrize(("backend", "transport"), TOPOLOGIES)
    def test_kill_recovers_bit_identical(self, backend, transport, point):
        before = set(active_shm_segments())
        result, expected, state, health = run_supervised_retailer(
            backend, transport, [FaultSpec("kill", **self.KILL_POINTS[point])]
        )
        assert result == expected
        assert health["supervised"] is True
        assert health["recoveries"] >= 1
        assert health["status"] == "ok"
        # The exported state is post-recovery and restores bit-identically.
        fresh = ShardedEngine(
            retailer_query(CountSpec()),
            order=retailer_variable_order(),
            config=EngineConfig(shards=2, backend="serial"),
        )
        with fresh:
            fresh.import_state(state)
            assert fresh.result() == expected
        assert not (set(active_shm_segments()) - before), "leaked shm"

    @needs_process
    def test_worker_reply_kill_recovers(self):
        # The worker dies between finishing the op and replying — the
        # coordinator sees a closed pipe mid-gather.
        result, expected, _state, health = run_supervised_retailer(
            "process", "pipe",
            [FaultSpec("kill", site="worker.reply", op="result", shard=0)],
        )
        assert result == expected
        assert health["recoveries"] >= 1

    @pytest.mark.parametrize(("backend", "transport"), TOPOLOGIES)
    def test_two_shards_killed_in_one_batch(self, backend, transport):
        result, expected, _state, health = run_supervised_retailer(
            backend, transport,
            [
                FaultSpec("kill", site="worker.apply", shard=0, at=3),
                FaultSpec("kill", site="worker.apply", shard=1, at=5),
            ],
            shards=4,
        )
        assert result == expected
        assert health["failures"] >= 2

    def test_seeded_sweep_is_deterministic_and_recovers(self):
        # The harness the chaos-smoke CI job uses: seeded kill placement.
        a = FaultInjector.seeded_kills(3, "worker.apply", max_at=6, shards=2)
        b = FaultInjector.seeded_kills(3, "worker.apply", max_at=6, shards=2)
        assert [(s.site, s.shard, s.at) for s in a.specs] == [
            (s.site, s.shard, s.at) for s in b.specs
        ]
        result, expected, _state, health = run_supervised_retailer(
            "serial", "pipe", a.specs
        )
        assert result == expected
        assert health["recoveries"] == 1


class TestTimeAwareRecovery:
    """Satellite: delete-heavy windows and decay rings keep the recovery
    equivalence — the replay log carries retraction deltas and ticks."""

    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize(("backend", "transport"), TOPOLOGIES)
    def test_windowed_delete_heavy_kill_mid_window(
        self, backend, transport, shards
    ):
        database, events = toy_events(total=96, insert_ratio=0.3, seed=7)
        # Compile the sliding window once: the same insert/retract event
        # sequence feeds the reference and the supervised engine.
        compiled = list(WindowedStream(WindowSpec(24, 8), iter(events)))
        expected = reference_result(
            toy_count_query(), toy_variable_order(), database, compiled, 8
        )
        install_injector(FaultInjector((
            # Lands inside a window pane, after retractions started.
            FaultSpec("kill", site="worker.apply", shard=shards - 1, at=6),
        )))
        engine = ShardedEngine(
            toy_count_query(),
            order=toy_variable_order(),
            config=supervised_config(backend, transport, shards),
        )
        with engine:
            engine.initialize(database)
            engine.apply_stream(iter(compiled), batch_size=8)
            assert engine.result() == expected
            assert engine.health()["recoveries"] >= 1

    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize(("backend", "transport"), TOPOLOGIES)
    def test_decay_kill_at_tick_matches_fault_free_run(
        self, backend, transport, shards
    ):
        database, events = toy_events(total=60, insert_ratio=0.7, seed=13)
        config = supervised_config(
            backend, transport, shards, decay="0.9/10"
        )

        def run(specs):
            install_injector(FaultInjector(tuple(specs)))
            engine = ShardedEngine(
                toy_covar_continuous_query(),
                order=toy_variable_order(),
                config=config,
            )
            with engine:
                engine.initialize(database)
                engine.apply_stream(iter(events), batch_size=6)
                return engine.result(), engine.health()

        undisturbed, _ = run([])
        # Die exactly at the second decay tick; ("advance", n) log
        # entries replay the missed ticks in order.
        recovered, health = run([
            FaultSpec("kill", site="worker.advance", shard=0, at=2),
        ])
        assert recovered == undisturbed
        assert health["recoveries"] >= 1


class TestHeartbeat:
    @needs_process
    def test_unresponsive_worker_times_out_and_recovers(self):
        database, events = retailer_setup(total_updates=400)
        expected = reference_result(
            retailer_query(CountSpec()), retailer_variable_order(),
            database, events, 50,
        )
        # The worker stalls for far longer than the heartbeat; the
        # coordinator must give up on it and heal, not block.
        install_injector(FaultInjector((
            FaultSpec(
                "delay", site="worker.reply", op="result", shard=0,
                seconds=30.0,
            ),
        )))
        engine = ShardedEngine(
            retailer_query(CountSpec()),
            order=retailer_variable_order(),
            config=supervised_config(
                "process", "pipe", 2, heartbeat_timeout=0.5
            ),
        )
        started = time.monotonic()
        with engine:
            engine.initialize(database)
            engine.apply_stream(iter(events), batch_size=50)
            assert engine.result() == expected
            health = engine.health()
        elapsed = time.monotonic() - started
        assert health["recoveries"] >= 1
        assert "unresponsive" in health["last_error"]
        assert elapsed < 15.0, "coordinator waited out the stall"


class TestTornShmWrites:
    @needs_process
    @needs_shm
    def test_supervised_torn_write_recovers_bit_identical(self):
        result, expected, _state, health = run_supervised_retailer(
            "process", "shm",
            [FaultSpec("torn", site="shm.write", shard=1, at=3)],
        )
        assert result == expected
        assert health["recoveries"] >= 1
        assert "torn shared-memory delta" in health["last_error"]

    @needs_process
    @needs_shm
    def test_unsupervised_torn_write_fail_stops(self):
        database, events = retailer_setup(total_updates=400)
        install_injector(FaultInjector((
            FaultSpec("torn", site="shm.write", shard=1, at=3),
        )))
        engine = ShardedEngine(
            retailer_query(CountSpec()),
            order=retailer_variable_order(),
            config=EngineConfig(shards=2, backend="process", transport="shm"),
        )
        with engine:
            engine.initialize(database)
            with pytest.raises(EngineError, match="torn shared-memory"):
                engine.apply_stream(iter(events), batch_size=50)
                engine.result()


class TestRecoveryBudget:
    def test_crash_loop_exhausts_budget_and_fail_stops(self):
        database, events = retailer_setup(total_updates=200)
        # incarnation="*" + once=False: every incarnation dies on its
        # first apply — including the replayed ones. Recovery cannot
        # converge and must give up instead of looping forever.
        install_injector(FaultInjector((
            FaultSpec(
                "kill", site="worker.apply", shard=0, at=1,
                once=False, incarnation="*",
            ),
        )))
        engine = ShardedEngine(
            retailer_query(CountSpec()),
            order=retailer_variable_order(),
            config=supervised_config("serial", "pipe", 2),
        )
        engine.initialize(database)
        with pytest.raises(SupervisionError, match="giving up"):
            engine.apply_stream(iter(events), batch_size=50)
        # The backstop closed the engine on its way out.
        with pytest.raises(EngineError):
            engine.result()

    def test_respawned_incarnation_does_not_retrigger_default_specs(self):
        # Default incarnation filter (0) only matches original workers:
        # one kill, one recovery, then the respawned worker survives the
        # identical op sequence.
        result, expected, _state, health = run_supervised_retailer(
            "serial", "pipe",
            [FaultSpec("kill", site="worker.apply", shard=1, at=2,
                       once=False)],
        )
        assert result == expected
        assert health["recoveries"] == 1
        assert health["failures"] == 1


class TestReplayLogRebase:
    def test_log_rebases_against_limit_and_still_recovers(self):
        database, events = retailer_setup(total_updates=600)
        expected = reference_result(
            retailer_query(CountSpec()), retailer_variable_order(),
            database, events, 50,
        )
        install_injector(FaultInjector((
            FaultSpec("kill", site="worker.apply", shard=1, at=9),
        )))
        engine = ShardedEngine(
            retailer_query(CountSpec()),
            order=retailer_variable_order(),
            config=supervised_config(
                "serial", "pipe", 2, replay_log_limit=80
            ),
        )
        with engine:
            engine.initialize(database)
            engine.apply_stream(iter(events), batch_size=50)
            assert engine.result() == expected
            health = engine.health()
        assert health["recoveries"] == 1
        # Rebase kept the log bounded: far fewer logged updates remain
        # than the stream carried.
        assert health["replay_log_updates"] <= 80 + 50

    def test_checkpoint_refresh_truncates_log(self):
        database, events = retailer_setup(total_updates=300)
        engine = ShardedEngine(
            retailer_query(CountSpec()),
            order=retailer_variable_order(),
            config=supervised_config("serial", "pipe", 2),
        )
        with engine:
            engine.initialize(database)
            engine.apply_stream(iter(events), batch_size=50)
            grown = engine.health()["replay_log_updates"]
            assert grown > 0
            engine.export_state()  # what checkpoint_sink calls
            assert engine.health()["replay_log_updates"] == 0
