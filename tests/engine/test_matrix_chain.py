"""Matrix chain multiplication on the view tree (Section 1).

"F-IVM uses the same view tree to maintain factorized conjunctive query
evaluation, matrix chain multiplication, and linear regression, with the
only computational change captured by the ring."

A matrix is a relation M(i, j, v); the product A @ B is the query

    SELECT i, k, SUM(A.v * B.v) FROM A NATURAL JOIN B GROUP BY i, k

with the float ring and value lifts — i.e. free variables (i, k), a join
variable j, and per-relation lifted value attributes. Cross-checked
against numpy, including under incremental updates to matrix entries.
"""

import numpy as np

from repro.data import Database, Relation, RelationSchema, delta_of
from repro.engine import FIVMEngine, NaiveEngine
from repro.query import Query, plan_variable_order
from repro.rings import FloatRing
from repro.rings.specs import PayloadPlan, PayloadSpec


class MatrixProductSpec(PayloadSpec):
    """SUM over the product of the named value attributes."""

    def __init__(self, value_attrs):
        self.value_attrs = tuple(value_attrs)

    def build(self) -> PayloadPlan:
        return PayloadPlan(
            ring=FloatRing(),
            lifts={attr: float for attr in self.value_attrs},
        )

    @property
    def lifted_attributes(self):
        return self.value_attrs


def matrix_relation(name, array, row, col, val):
    rows, cols = array.shape
    relation = Relation((row, col, val), name=name)
    for i in range(rows):
        for j in range(cols):
            if array[i, j] != 0:
                relation.data[(i, j, float(array[i, j]))] = 1
    return relation


def dense(result, shape):
    out = np.zeros(shape)
    for (i, k), value in result.data.items():
        out[i, k] = value
    return out


def two_chain_query():
    return Query(
        "AB",
        (
            RelationSchema("A", ("i", "j", "va")),
            RelationSchema("B", ("j", "k", "vb")),
        ),
        spec=MatrixProductSpec(("va", "vb")),
        free=("i", "k"),
    )


class TestTwoMatrixProduct:
    def setup_method(self):
        rng = np.random.default_rng(5)
        self.a = rng.integers(-3, 4, (4, 3)).astype(float)
        self.b = rng.integers(-3, 4, (3, 5)).astype(float)
        self.db = Database(
            [
                matrix_relation("A", self.a, "i", "j", "va"),
                matrix_relation("B", self.b, "j", "k", "vb"),
            ]
        )

    def test_product_matches_numpy(self):
        engine = FIVMEngine(two_chain_query())
        engine.initialize(self.db)
        assert np.allclose(dense(engine.result(), (4, 5)), self.a @ self.b)

    def test_entry_update_propagates(self):
        engine = FIVMEngine(two_chain_query())
        engine.initialize(self.db)
        # change A[1, 2] from its current value to 9: delete + insert
        old = self.a[1, 2]
        delta = delta_of(
            ("i", "j", "va"),
            inserted=[(1, 2, 9.0)],
            deleted=[(1, 2, float(old))] if old != 0 else [],
        )
        engine.apply("A", delta)
        self.a[1, 2] = 9.0
        assert np.allclose(dense(engine.result(), (4, 5)), self.a @ self.b)

    def test_engines_agree(self):
        fivm = FIVMEngine(two_chain_query())
        naive = NaiveEngine(two_chain_query())
        fivm.initialize(self.db)
        naive.initialize(self.db)
        delta = delta_of(("j", "k", "vb"), inserted=[(0, 0, 2.0)])
        fivm.apply("B", delta)
        naive.apply("B", delta)
        assert fivm.result().close_to(naive.result(), 1e-9)


class TestThreeMatrixChain:
    def test_chain_matches_numpy(self):
        rng = np.random.default_rng(6)
        a = rng.integers(-2, 3, (3, 4)).astype(float)
        b = rng.integers(-2, 3, (4, 2)).astype(float)
        c = rng.integers(-2, 3, (2, 5)).astype(float)
        db = Database(
            [
                matrix_relation("A", a, "i", "j", "va"),
                matrix_relation("B", b, "j", "k", "vb"),
                matrix_relation("C", c, "k", "l", "vc"),
            ]
        )
        query = Query(
            "ABC",
            (
                RelationSchema("A", ("i", "j", "va")),
                RelationSchema("B", ("j", "k", "vb")),
                RelationSchema("C", ("k", "l", "vc")),
            ),
            spec=MatrixProductSpec(("va", "vb", "vc")),
            free=("i", "l"),
        )
        order = plan_variable_order(query)
        engine = FIVMEngine(query, order=order)
        engine.initialize(db)
        assert np.allclose(dense(engine.result(), (3, 5)), a @ b @ c)

        # the intermediate views factorize the chain: updating C must not
        # touch A-side views
        sizes_before = dict(engine.stats.view_sizes)
        engine.apply("C", delta_of(("k", "l", "vc"), inserted=[(0, 0, 1.0)]))
        c[0, 0] += 1.0
        assert np.allclose(dense(engine.result(), (3, 5)), a @ b @ c)
        assert engine.stats.view_sizes["V_A"] == sizes_before["V_A"]
