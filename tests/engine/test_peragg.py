"""The per-aggregate baseline: many scalar views == one compound payload."""

import numpy as np
import pytest

from repro.data import RelationSchema, inserts
from repro.datasets import toy_database, toy_variable_order
from repro.engine import FIVMEngine, PerAggregateEngine
from repro.errors import EngineError
from repro.query import Query
from repro.rings import CountSpec, CovarSpec, Feature

R = RelationSchema("R", ("A", "B"))
S = RelationSchema("S", ("A", "C", "D"))
FEATURES = (
    Feature.continuous("B"),
    Feature.continuous("C"),
    Feature.continuous("D"),
)


@pytest.fixture
def peragg():
    engine = PerAggregateEngine(
        Query("Q", (R, S), spec=CountSpec()), FEATURES, order=toy_variable_order()
    )
    engine.initialize(toy_database())
    return engine


class TestAssembly:
    def test_aggregate_inventory(self, peragg):
        assert "count" in peragg.aggregates
        assert "sum(B)" in peragg.aggregates
        assert "sum(B*D)" in peragg.aggregates
        assert "sum(C*C)" in peragg.aggregates
        # 1 + 3 + 6 aggregates for m=3
        assert len(peragg.aggregates) == 10

    def test_matches_figure1_covar(self, peragg):
        c, s, q = peragg.covar_matrix()
        assert c == 3
        assert s.tolist() == [4.0, 5.0, 6.0]
        assert q.tolist() == [
            [6.0, 7.0, 8.0],
            [7.0, 9.0, 11.0],
            [8.0, 11.0, 14.0],
        ]

    def test_matches_compound_engine_after_updates(self, peragg):
        compound = FIVMEngine(
            Query("Q", (R, S), spec=CovarSpec(FEATURES, backend="numeric")),
            order=toy_variable_order(),
        )
        compound.initialize(toy_database())
        delta = inserts(("A", "B"), [("a1", 9), ("a2", 4)])
        peragg.apply("R", delta)
        compound.apply("R", delta)
        c, s, q = peragg.covar_matrix()
        payload = compound.result().payload(())
        assert c == payload.c
        assert np.allclose(s, payload.s)
        assert np.allclose(q, payload.q)

    def test_scalar_accessor(self, peragg):
        assert peragg.scalar("count") == 3.0
        with pytest.raises(EngineError):
            peragg.scalar("sum(nope)")


class TestValidation:
    def test_categorical_rejected(self):
        with pytest.raises(EngineError):
            PerAggregateEngine(
                Query("Q", (R, S), spec=CountSpec()),
                (Feature.categorical("B"),),
            )

    def test_requires_initialize(self):
        engine = PerAggregateEngine(
            Query("Q", (R, S), spec=CountSpec()), FEATURES
        )
        with pytest.raises(EngineError):
            engine.covar_matrix()
