"""Bottom-up tree evaluation (shared by init, naive and first-order)."""

import pytest

from repro.data import Database, Relation
from repro.datasets import toy_count_query, toy_database, toy_variable_order
from repro.engine import evaluate_tree, evaluate_view
from repro.errors import EngineError
from repro.viewtree import build_view_tree


@pytest.fixture
def tree():
    return build_view_tree(toy_count_query(), toy_variable_order())


def relations_of(db):
    return {relation.name: relation for relation in db}


class TestEvaluateTree:
    def test_root_result(self, tree):
        result = evaluate_tree(tree, relations_of(toy_database()))
        assert result.payload(()) == 3

    def test_materialized_records_every_view(self, tree):
        materialized = {}
        evaluate_tree(tree, relations_of(toy_database()), materialized)
        assert set(materialized) == {"V_R", "V_S", "V@A"}
        assert materialized["V_R"].payload(("a1",)) == 1

    def test_missing_relation_raises(self, tree):
        with pytest.raises(EngineError):
            evaluate_tree(tree, {"R": toy_database().relation("R")})

    def test_result_views_named(self, tree):
        materialized = {}
        evaluate_tree(tree, relations_of(toy_database()), materialized)
        assert materialized["V@A"].name == "V@A"

    def test_empty_database(self, tree):
        db = Database(
            [Relation(("A", "B"), name="R"), Relation(("A", "C", "D"), name="S")]
        )
        result = evaluate_tree(tree, relations_of(db))
        assert len(result) == 0

    def test_linearity_in_each_relation(self, tree):
        """Q(R1 + R2, S) == Q(R1, S) + Q(R2, S) — what makes first-order
        delta processing correct."""
        db = toy_database()
        r = db.relation("R")
        extra = Relation.from_tuples(("A", "B"), [("a1", 9), ("a2", 2)], name="R")
        combined = evaluate_tree(
            tree, {"R": r.add(extra), "S": db.relation("S")}
        )
        separate = evaluate_tree(tree, {"R": r, "S": db.relation("S")}).add(
            evaluate_tree(tree, {"R": extra, "S": db.relation("S")})
        )
        assert combined == separate


class TestEvaluateView:
    def test_single_leaf(self, tree):
        leaf = tree.leaf_of["R"]
        result = evaluate_view(tree, leaf, relations_of(toy_database()))
        assert result.schema == ("A",)
        assert result.payload(("a2",)) == 1


class TestIndexAwareEvaluation:
    """evaluate_tree builds probe-plan indexes while materializing."""

    def test_index_specs_wrap_probed_views(self, tree):
        from repro.data import IndexedRelation
        from repro.viewtree import build_probe_plan

        probe_plan = build_probe_plan(tree)
        materialized = {}
        evaluate_tree(
            tree,
            relations_of(toy_database()),
            materialized,
            index_specs=probe_plan.index_specs,
        )
        for name, specs in probe_plan.index_specs.items():
            view = materialized[name]
            assert isinstance(view, IndexedRelation)
            # Specs are registered for lazy materialization, not built.
            assert not view.indexes
            assert view.pending == set(specs)
            for attrs in specs:
                index = view.ensure_index(attrs)
                assert index.entry_count() == len(view)
        # Views outside the probe plan stay plain relations.
        for name, view in materialized.items():
            if name not in probe_plan.index_specs:
                assert not isinstance(view, IndexedRelation)

    def test_indexed_evaluation_matches_plain(self, tree):
        from repro.viewtree import build_probe_plan

        plain, indexed = {}, {}
        evaluate_tree(tree, relations_of(toy_database()), plain)
        evaluate_tree(
            tree,
            relations_of(toy_database()),
            indexed,
            index_specs=build_probe_plan(tree).index_specs,
        )
        assert set(plain) == set(indexed)
        for name in plain:
            assert plain[name] == indexed[name]

    def test_engine_initialize_needs_no_second_pass(self):
        """FIVMEngine's views come out of evaluate_tree already indexed."""
        from repro.data import IndexedRelation
        from repro.engine import FIVMEngine

        engine = FIVMEngine(toy_count_query(), order=toy_variable_order())
        engine.initialize(toy_database())
        for name in engine.probe_plan.index_specs:
            assert isinstance(engine.materialized[name], IndexedRelation)
