"""Shard transports: shm/pipe equivalence, fault paths, segment hygiene."""

import os
import pickle
import signal
import subprocess
import sys
import time
from multiprocessing.connection import Connection

import numpy as np
import pytest

from repro import EngineConfig, create_engine, inserts
from repro.checkpoint import restore_checkpoint, write_checkpoint
from repro.data.columnar import ColumnarDelta, block_views, decode_blocks
from repro.datasets import (
    RetailerConfig,
    UpdateStream,
    generate_retailer,
    regression_features,
    retailer_query,
    retailer_row_factories,
    retailer_variable_order,
    toy_count_query,
    toy_database,
    toy_variable_order,
)
from repro.engine import FIVMEngine
from repro.engine.sharded import available_backends
from repro.engine.transport import (
    SharedMemoryTransport,
    active_shm_segments,
    available_transports,
    resolve_transport,
)
from repro.errors import EngineError
from repro.rings import CovarSpec

needs_process = pytest.mark.skipif(
    "process" not in available_backends(), reason="fork unavailable"
)
needs_shm = pytest.mark.skipif(
    "shm" not in available_transports(), reason="shared memory unavailable"
)


@pytest.fixture(autouse=True)
def no_segment_leaks():
    """Every test must leave /dev/shm exactly as it found it."""
    before = set(active_shm_segments())
    yield
    leaked = set(active_shm_segments()) - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def retailer_covar_setup(total_updates=400, insert_ratio=0.6, seed=7):
    config = RetailerConfig(
        locations=5, dates=6, items=18, inventory_rows=220, seed=seed
    )
    database = generate_retailer(config)
    stream = UpdateStream(
        database,
        retailer_row_factories(config, database),
        targets=("Inventory", "Weather"),
        batch_size=40,
        insert_ratio=insert_ratio,
        seed=seed,
    )
    features, _label = regression_features()
    return database, retailer_query(CovarSpec(features)), list(
        stream.tuples(total_updates)
    )


def toy_engine(transport, shards=2):
    engine = create_engine(
        toy_count_query(),
        config=EngineConfig(shards=shards, backend="process", transport=transport),
        order=toy_variable_order(),
    )
    engine.initialize(toy_database())
    return engine


def spread_delta(rows=16, start=0):
    """A delta whose keys hash onto every shard."""
    return inserts(
        ("A", "B"), [(f"a{start + i}", i % 5 + 1) for i in range(rows)]
    )


class TestResolution:
    def test_non_process_backends_have_no_data_plane(self):
        assert resolve_transport("auto", "serial") == "none"
        assert resolve_transport("shm", "serial") == "none"

    def test_unknown_transport_rejected(self):
        with pytest.raises(EngineError, match="unknown shard transport"):
            resolve_transport("rdma", "process")

    def test_auto_prefers_shm_when_available(self):
        resolved = resolve_transport("auto", "process")
        assert resolved == ("shm" if "shm" in available_transports() else "pipe")


@needs_process
@needs_shm
class TestTransportEquivalence:
    """serial, process/pipe and process/shm are bit-exact on COVAR."""

    def test_retailer_covar_insert_delete_streams_agree(self):
        database, query, events = retailer_covar_setup()
        results = {}
        for backend, transport in (
            ("serial", "auto"), ("process", "pipe"), ("process", "shm"),
        ):
            engine = create_engine(
                query,
                config=EngineConfig(
                    shards=2, backend=backend, transport=transport
                ),
                order=retailer_variable_order(),
            )
            with engine:
                engine.initialize(database)
                engine.apply_stream(iter(events), batch_size=50)
                results[(backend, transport)] = engine.result()
        reference = results[("serial", "auto")]
        assert results[("process", "pipe")] == reference
        assert results[("process", "shm")] == reference

    def test_shm_checkpoint_round_trips_into_unsharded_engine(self, tmp_path):
        database, query, events = retailer_covar_setup(total_updates=200)
        path = str(tmp_path / "covar.fivm")
        engine = create_engine(
            query,
            config=EngineConfig(shards=2, backend="process", transport="shm"),
            order=retailer_variable_order(),
        )
        with engine:
            engine.initialize(database)
            engine.apply_stream(iter(events), batch_size=40)
            expected = engine.result()
            write_checkpoint(engine, path)
        restored = FIVMEngine(query, order=retailer_variable_order())
        restore_checkpoint(restored, path)
        assert restored.result() == expected

    def test_shm_publish_matches_pipe_snapshot(self):
        snapshots = {}
        for transport in ("pipe", "shm"):
            engine = toy_engine(transport)
            with engine:
                engine.apply("R", spread_delta())
                engine.publish(event_offset=16)
                snapshot = engine.latest_snapshot()
                snapshots[transport] = (snapshot.epoch, snapshot.result)
        assert snapshots["pipe"] == snapshots["shm"]


@needs_process
@needs_shm
class TestControlPlane:
    def test_pipes_carry_only_control_messages(self, monkeypatch):
        """With shm the payload never rides the pipe: every coordinator
        pipe message stays tiny even for deltas far larger than that."""
        sent = []
        original = Connection.send

        def spy(self, obj):
            sent.append(len(pickle.dumps(obj)))
            return original(self, obj)

        monkeypatch.setattr(Connection, "send", spy)
        engine = toy_engine("shm")
        with engine:
            big = spread_delta(rows=5000)
            assert len(pickle.dumps(big.data)) > 50_000
            engine.apply("R", big)
            assert engine.result().data == {(): 6}
        assert sent, "no control messages observed"
        assert max(sent) < 4096, f"payload leaked onto the pipe: {max(sent)}B"

    def test_block_views_are_zero_copy(self):
        delta = ColumnarDelta.from_relation(spread_delta(rows=64))
        blocks = delta.to_blocks()
        buf = bytearray(blocks.nbytes + 128)
        layout = blocks.write_into(memoryview(buf), 128)
        raw = np.frombuffer(buf, dtype=np.uint8)
        for view in block_views(memoryview(buf), layout):
            if isinstance(view, np.ndarray):
                assert np.shares_memory(view, raw)
        decoded = decode_blocks(delta.schema, memoryview(buf), layout, "R")
        assert decoded.to_relation().data == spread_delta(rows=64).data


@needs_process
@needs_shm
class TestGrowthPaths:
    def test_down_ring_grows_for_oversized_deltas(self, monkeypatch):
        monkeypatch.setattr(SharedMemoryTransport, "DOWN_SLOT_BYTES", 512)
        engine = toy_engine("shm")
        with engine:
            engine.apply("R", spread_delta(rows=400))
            assert engine.result().data == {(): 6}

    def test_up_blocks_grow_through_overflow_retry(self, monkeypatch):
        monkeypatch.setattr(SharedMemoryTransport, "UP_BYTES", 128)
        engine = toy_engine("shm", shards=4)
        with engine:
            engine.apply("R", spread_delta(rows=200))
            expected = toy_engine("pipe", shards=2)
            with expected:
                expected.apply("R", spread_delta(rows=200))
                assert engine.result() == expected.result()
            state = engine.export_state()
            assert state["views"], "export crossed the grown up-blocks"


@needs_process
@needs_shm
class TestFaultPaths:
    def test_worker_death_closes_backend_and_unlinks(self):
        before = set(active_shm_segments())
        engine = toy_engine("shm")
        mine = set(active_shm_segments()) - before
        assert mine, "shm transport created no segments"
        victim = engine._backend.processes[0]
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=10)
        with pytest.raises(EngineError, match="shard 0 worker died"):
            engine.result()
        # The backend closed itself on the dead worker: segments are gone
        # and further use reports the closed state, not a hang.
        assert not (set(active_shm_segments()) & mine)
        with pytest.raises(EngineError, match="closed"):
            engine.result()
        engine.close()

    def test_worker_killed_mid_batch_raises_descriptively(self):
        engine = toy_engine("shm")
        victim = engine._backend.processes[0]
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=10)
        with pytest.raises(EngineError, match="shard 0"):
            # Enough traffic to fill the dead shard's double-buffered ring:
            # the send path must report the death, not block on the slot.
            for start in range(0, 800, 16):
                engine.apply("R", spread_delta(start=start))
            engine.result()
        engine.close()

    def test_double_close_is_idempotent(self):
        engine = toy_engine("shm")
        engine.apply("R", spread_delta())
        assert engine.result().data == {(): 6}
        engine.close()
        engine.close()
        transport = SharedMemoryTransport()
        transport.setup(2)
        transport.close()
        transport.close()

    def test_coordinator_crash_leaves_no_segments_behind(self, tmp_path):
        """os._exit with live segments: the resource tracker sweeps them."""
        code = """
import os, sys
from repro import EngineConfig, create_engine, inserts
from repro.datasets import toy_count_query, toy_database, toy_variable_order

engine = create_engine(
    toy_count_query(),
    config=EngineConfig(shards=2, backend="process", transport="shm"),
    order=toy_variable_order(),
)
engine.initialize(toy_database())
engine.apply("R", inserts(("A", "B"), [(f"a{i}", i % 5 + 1) for i in range(16)]))
assert engine.result().data == {(): 6}
from repro.engine.transport import active_shm_segments
assert active_shm_segments()
os._exit(1)
"""
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 1, proc.stderr
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if not active_shm_segments():
                break
            time.sleep(0.1)
        assert not active_shm_segments(), (
            "resource tracker did not sweep crashed coordinator's segments"
        )
