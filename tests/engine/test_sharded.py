"""ShardedEngine: cross-shard determinism, backends, stats, adaptivity."""

import pytest

from repro.data import Relation
from repro.datasets import (
    RetailerConfig,
    UpdateStream,
    generate_retailer,
    retailer_query,
    retailer_row_factories,
    retailer_variable_order,
    toy_count_query,
    toy_covar_continuous_query,
    toy_database,
    toy_variable_order,
)
from repro.engine import FIVMEngine, ShardedEngine, available_backends
from repro.errors import EngineError
from repro.rings import CountSpec
from repro.config import EngineConfig


def retailer_setup(insert_ratio=0.7, seed=5, total_updates=1200):
    config = RetailerConfig(
        locations=6, dates=8, items=24, inventory_rows=300, seed=seed
    )
    database = generate_retailer(config)
    stream = UpdateStream(
        database,
        retailer_row_factories(config, database),
        targets=("Inventory", "Weather"),
        batch_size=40,
        insert_ratio=insert_ratio,
        seed=seed,
    )
    return database, list(stream.tuples(total_updates))


def reference_result(database, events, batch_size):
    engine = FIVMEngine(retailer_query(CountSpec()), order=retailer_variable_order())
    engine.initialize(database)
    engine.apply_stream(iter(events), batch_size=batch_size)
    return engine.result(), engine.stats


class TestShardDeterminism:
    """Same stream, any shard count, any batch size: identical results."""

    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("batch_size", [1, 100])
    def test_root_payloads_and_stats_match_unsharded(self, shards, batch_size):
        database, events = retailer_setup()
        expected, expected_stats = reference_result(database, events, batch_size)
        engine = ShardedEngine(
            retailer_query(CountSpec()),
            order=retailer_variable_order(),
            config=EngineConfig(shards=shards, backend="serial"),
        )
        with engine:
            engine.initialize(database)
            engine.apply_stream(iter(events), batch_size=batch_size)
            assert engine.result() == expected
            # Coordinator totals track exactly what the unsharded engine saw.
            assert engine.stats.updates_applied == expected_stats.updates_applied
            assert engine.stats.tuples_applied == expected_stats.tuples_applied
            assert engine.stats.batches_applied == expected_stats.batches_applied

    @pytest.mark.parametrize("batch_size", [1, 100])
    def test_delete_heavy_stream_with_cancellation(self, batch_size):
        # Mostly deletes: +/- pairs cancel inside batches and views shrink.
        database, events = retailer_setup(insert_ratio=0.3, seed=9)
        expected, _ = reference_result(database, events, batch_size)
        results = {}
        for shards in (1, 2, 4):
            engine = ShardedEngine(
                retailer_query(CountSpec()),
                order=retailer_variable_order(),
                config=EngineConfig(shards=shards, backend="serial"),
            )
            with engine:
                engine.initialize(database)
                engine.apply_stream(iter(events), batch_size=batch_size)
                results[shards] = engine.result()
        assert all(result == expected for result in results.values())

    def test_shard_counts_agree_on_aggregated_shard_stats(self):
        database, events = retailer_setup()
        totals = {}
        for shards in (1, 2, 4):
            engine = ShardedEngine(
                retailer_query(CountSpec()),
                order=retailer_variable_order(),
                config=EngineConfig(shards=shards, backend="serial"),
            )
            with engine:
                engine.initialize(database)
                engine.apply_stream(iter(events), batch_size=50)
                totals[shards] = engine.aggregate_stats()
        # Routed relations land exactly once, so summed shard updates are
        # shard-count independent (this stream targets only routed relations).
        assert (
            totals[1]["updates_applied"]
            == totals[2]["updates_applied"]
            == totals[4]["updates_applied"]
        )


@pytest.mark.skipif(
    "process" not in available_backends(), reason="fork unavailable"
)
class TestProcessBackend:
    def test_process_equals_serial_and_unsharded(self):
        database, events = retailer_setup(total_updates=600)
        expected, _ = reference_result(database, events, 100)
        engine = ShardedEngine(
            retailer_query(CountSpec()),
            order=retailer_variable_order(),
            config=EngineConfig(shards=2, backend="process"),
        )
        with engine:
            engine.initialize(database)
            engine.apply_stream(iter(events), batch_size=100)
            assert engine.result() == expected
            aggregated = engine.aggregate_stats()
            assert aggregated["updates_applied"] > 0
            report = engine.memory_report()
            assert all(entry["entries"] >= 0 for entry in report.values())

    def test_covar_payloads_cross_process(self):
        # Non-scalar ring payloads must survive the pipe round-trip.
        query = toy_covar_continuous_query()
        reference = FIVMEngine(query, order=toy_variable_order())
        reference.initialize(toy_database())
        engine = ShardedEngine(
            query,
            order=toy_variable_order(),
            config=EngineConfig(shards=2, backend="process"),
        )
        with engine:
            engine.initialize(toy_database())
            delta = Relation(("A", "B"), name="R")
            delta.data = {("a1", 5): 1, ("a3", 2): 1}
            reference.apply("R", delta)
            engine.apply("R", delta)
            assert engine.result().close_to(reference.result(), 1e-9)


@pytest.mark.skipif(
    "process" not in available_backends(), reason="fork unavailable"
)
class TestProcessBackendFailurePaths:
    def make_engine(self, shards=3):
        engine = ShardedEngine(
            toy_count_query(),
            order=toy_variable_order(),
            config=EngineConfig(shards=shards, backend="process"),
        )
        engine.initialize(toy_database())
        return engine

    def test_one_shard_failure_drains_other_replies(self):
        # Regression for the pipe desync: when shard k replies with an
        # error mid-gather, the replies of shards k+1..N-1 must still be
        # drained, or the next gather reads stale replies and silently
        # returns results for the wrong op.
        engine = self.make_engine(shards=3)
        try:
            # Inject a failing apply into the middle shard only: the
            # worker parks the failure and reports it at the next
            # synchronous exchange.
            engine._backend.connections[1].send(
                ("apply", "NoSuchRelation", {})
            )
            with pytest.raises(EngineError, match="shard 1"):
                engine.result()
            # Pipes stayed request/reply aligned: no stale replies are
            # parked on the healthy shards' connections.
            assert not engine._backend.connections[0].poll(0.2)
            assert not engine._backend.connections[2].poll(0.2)
            # Subsequent ops keep raising the *original* shard-1 failure
            # cleanly instead of returning another op's stale payloads.
            with pytest.raises(EngineError, match="shard 1"):
                engine.shard_stats()
            with pytest.raises(EngineError, match="shard 1"):
                engine.result()
            # The healthy workers are still alive and in protocol.
            assert engine._backend.processes[0].is_alive()
            assert engine._backend.processes[2].is_alive()
        finally:
            engine.close()

    def test_dead_worker_tears_backend_down(self):
        engine = self.make_engine(shards=2)
        try:
            engine._backend.processes[0].terminate()
            engine._backend.processes[0].join(timeout=5.0)
            with pytest.raises(EngineError, match="shard 0"):
                engine.result()
            # A died-mid-gather pipe cannot be realigned: the backend
            # closed itself, and every later op reports that cleanly.
            with pytest.raises(EngineError, match="closed"):
                engine.result()
            with pytest.raises(EngineError, match="closed"):
                engine.shard_stats()
        finally:
            engine.close()


class TestShardedEngineBasics:
    def test_toy_query_shards(self):
        engine = ShardedEngine(
            toy_count_query(),
            order=toy_variable_order(),
            config=EngineConfig(shards=2, backend="serial"),
        )
        with engine:
            engine.initialize(toy_database())
            assert engine.result().payload(()) == 3
            delta = Relation(("A", "B"), name="R")
            delta.data = {("a1", 9): 1}
            engine.apply("R", delta)
            # a1 joins two S tuples: 3 + 2.
            assert engine.result().payload(()) == 5

    def test_requires_initialize(self):
        engine = ShardedEngine(
            toy_count_query(),
            order=toy_variable_order(),
            config=EngineConfig(shards=2, backend="serial"),
        )
        with pytest.raises(EngineError):
            engine.apply("R", Relation(("A", "B"), name="R"))

    def test_close_then_reinitialize(self):
        engine = ShardedEngine(
            toy_count_query(),
            order=toy_variable_order(),
            config=EngineConfig(shards=2, backend="serial"),
        )
        engine.initialize(toy_database())
        engine.close()
        with pytest.raises(EngineError):
            engine.result()
        engine.initialize(toy_database())
        assert engine.result().payload(()) == 3
        engine.close()

    def test_rejects_bad_configuration(self):
        with pytest.raises(EngineError):
            ShardedEngine(toy_count_query(), config=EngineConfig(shards=0))
        with pytest.raises(EngineError):
            ShardedEngine(
                toy_count_query(),
                config=EngineConfig(shards=2, backend="nope"),
            )

    def test_memory_report_sums_shards(self):
        database, _ = retailer_setup()
        unsharded = FIVMEngine(
            retailer_query(CountSpec()), order=retailer_variable_order()
        )
        unsharded.initialize(database)
        engine = ShardedEngine(
            retailer_query(CountSpec()),
            order=retailer_variable_order(),
            config=EngineConfig(shards=3, backend="serial"),
        )
        with engine:
            engine.initialize(database)
            report = engine.memory_report()
            base = unsharded.memory_report()
            assert set(report) == set(base)
            # Leaf view of a routed relation: shard slices partition the
            # keys, so summed entries equal the unsharded count.
            assert report["V_Inventory"]["entries"] == base["V_Inventory"]["entries"]
            # Broadcast relations are replicated per shard.
            assert report["V_Item"]["entries"] == 3 * base["V_Item"]["entries"]

    def test_closed_engine_raises_descriptive_error(self):
        engine = ShardedEngine(
            toy_count_query(),
            order=toy_variable_order(),
            config=EngineConfig(shards=2, backend="serial"),
        )
        engine.initialize(toy_database())
        engine.close()
        delta = Relation(("A", "B"), name="R")
        delta.data = {("a1", 1): 1}
        for op in (
            lambda: engine.apply("R", delta),
            engine.result,
            engine.shard_stats,
            engine.export_state,
        ):
            with pytest.raises(EngineError, match="closed"):
                op()

    def test_closed_backend_raises_engine_error_not_index_error(self):
        # Regression: ops on a closed backend used to die with a bare
        # IndexError from the emptied connection/engine list.
        engine = ShardedEngine(
            toy_count_query(),
            order=toy_variable_order(),
            config=EngineConfig(shards=2, backend="serial"),
        )
        engine.initialize(toy_database())
        backend = engine._backend
        engine.close()
        delta = Relation(("A", "B"), name="R")
        delta.data = {("a1", 1): 1}
        with pytest.raises(EngineError, match="closed"):
            backend.apply(0, "R", delta)
        with pytest.raises(EngineError, match="closed"):
            backend.results()
        with pytest.raises(EngineError, match="closed"):
            backend.stats()
        with pytest.raises(EngineError, match="closed"):
            backend.export_states()

    def test_describe_mentions_plan(self):
        engine = ShardedEngine(
            retailer_query(CountSpec()),
            order=retailer_variable_order(),
            config=EngineConfig(shards=2, backend="serial"),
        )
        text = engine.describe()
        assert "locn" in text and "x2" in text
