"""Exact reproduction of the paper's Figure 1 (all four payload columns).

Toy database: R = {(a1,b1), (a2,b2)}, S = {(a1,c1,d1), (a1,c2,d3),
(a2,c2,d2)} with b_i = c_i = d_i = i. Every number asserted below is taken
from the figure.
"""

import numpy as np

from repro.data import deletes, inserts
from repro.datasets import (
    toy_count_query,
    toy_covar_categorical_query,
    toy_covar_continuous_query,
    toy_database,
    toy_mi_query,
    toy_variable_order,
)
from repro.engine import FIVMEngine


def engine_for(query):
    engine = FIVMEngine(query, order=toy_variable_order())
    engine.initialize(toy_database())
    return engine


class TestCountScenario:
    """Payload column '#': the Z ring."""

    def test_result_is_3(self):
        engine = engine_for(toy_count_query())
        assert engine.result().payload(()) == 3

    def test_vr_partial_counts(self):
        engine = engine_for(toy_count_query())
        vr = engine.view("V_R")
        assert vr.payload(("a1",)) == 1
        assert vr.payload(("a2",)) == 1

    def test_vs_partial_counts(self):
        engine = engine_for(toy_count_query())
        vs = engine.view("V_S")
        assert vs.payload(("a1",)) == 2
        assert vs.payload(("a2",)) == 1


class TestCovarContinuousScenario:
    """Payload column 'COVAR (cont. B, C, D)': the degree-3 matrix ring."""

    def test_root_payload_matches_figure(self):
        engine = engine_for(toy_covar_continuous_query())
        payload = engine.result().payload(())
        assert payload.c == 3.0
        assert payload.s.tolist() == [4.0, 5.0, 6.0]
        expected_q = np.array(
            [
                [6.0, 7.0, 8.0],
                [7.0, 9.0, 11.0],
                [8.0, 11.0, 14.0],
            ]
        )
        assert np.array_equal(payload.q, expected_q)

    def test_vr_payloads_are_lifted_b_values(self):
        engine = engine_for(toy_covar_continuous_query())
        vr = engine.view("V_R")
        a1 = vr.payload(("a1",))
        # VR(a1) = g_B(b1): count 1, s_B = 1, Q_BB = 1
        assert a1.c == 1.0
        assert a1.s.tolist() == [1.0, 0.0, 0.0]
        assert a1.q[0, 0] == 1.0
        a2 = vr.payload(("a2",))
        assert a2.s.tolist() == [2.0, 0.0, 0.0]
        assert a2.q[0, 0] == 4.0

    def test_vs_a1_is_sum_of_products(self):
        engine = engine_for(toy_covar_continuous_query())
        a1 = engine.view("V_S").payload(("a1",))
        # VS(a1) = g_C(1)*g_D(1) + g_C(2)*g_D(3)
        assert a1.c == 2.0
        assert a1.s.tolist() == [0.0, 3.0, 4.0]
        assert a1.q[1, 1] == 5.0   # 1 + 4
        assert a1.q[2, 2] == 10.0  # 1 + 9
        assert a1.q[1, 2] == 7.0   # 1*1 + 2*3


class TestCovarCategoricalScenario:
    """Payload column 'COVAR (cat. C, cont. B, D)': relational values."""

    def test_root_payload_matches_figure(self):
        engine = engine_for(toy_covar_categorical_query())
        ring = engine.plan.ring
        payload = engine.result().payload(())
        assert payload.c.annotation(()) == 3
        # s: SUM(B)=4, SUM(1) GROUP BY C = {c1->1, c2->2}, SUM(D)=6
        assert ring.linear(payload, 0).annotation(()) == 4.0
        assert ring.linear(payload, 1).as_dict() == {(1,): 1, (2,): 2}
        assert ring.linear(payload, 2).annotation(()) == 6.0
        # Q entries from the figure
        assert ring.entry(payload, 0, 0).annotation(()) == 6.0  # SUM(B*B)
        assert ring.entry(payload, 0, 1).as_dict() == {(1,): 1.0, (2,): 3.0}
        assert ring.entry(payload, 0, 2).annotation(()) == 8.0  # SUM(B*D)
        assert ring.entry(payload, 1, 1).as_dict() == {(1,): 1, (2,): 2}
        assert ring.entry(payload, 1, 2).as_dict() == {(1,): 1.0, (2,): 5.0}
        assert ring.entry(payload, 2, 2).annotation(()) == 14.0  # SUM(D*D)


class TestMIScenario:
    """Payload column 'MI (cat. B, C, D)': all-categorical counts."""

    def test_root_payload_matches_figure(self):
        engine = engine_for(toy_mi_query())
        ring = engine.plan.ring
        payload = engine.result().payload(())
        assert payload.c.annotation(()) == 3
        assert ring.linear(payload, 0).as_dict() == {(1,): 2, (2,): 1}
        assert ring.linear(payload, 1).as_dict() == {(1,): 1, (2,): 2}
        assert ring.linear(payload, 2).as_dict() == {(1,): 1, (2,): 1, (3,): 1}
        assert ring.entry(payload, 0, 1).as_dict() == {
            (1, 1): 1,
            (1, 2): 1,
            (2, 2): 1,
        }
        assert ring.entry(payload, 0, 2).as_dict() == {
            (1, 1): 1,
            (1, 3): 1,
            (2, 2): 1,
        }
        assert ring.entry(payload, 1, 2).as_dict() == {
            (1, 1): 1,
            (2, 3): 1,
            (2, 2): 1,
        }


class TestDeltaPropagation:
    """The figure's right-hand side: maintenance under δR and δS."""

    def test_insert_into_r_count(self):
        engine = engine_for(toy_count_query())
        engine.apply("R", inserts(("A", "B"), [("a1", 1)]))
        # R(a1,b1) now has multiplicity 2: join = 2*2 + 1 = 5
        assert engine.result().payload(()) == 5

    def test_insert_new_key_without_partner_changes_nothing(self):
        engine = engine_for(toy_count_query())
        engine.apply("R", inserts(("A", "B"), [("a3", 7)]))
        assert engine.result().payload(()) == 3
        # ... but the leaf view did record it
        assert engine.view("V_R").payload(("a3",)) == 1

    def test_delete_from_s_count(self):
        engine = engine_for(toy_count_query())
        engine.apply("S", deletes(("A", "C", "D"), [("a2", 2, 2)]))
        assert engine.result().payload(()) == 2

    def test_insert_then_delete_roundtrip_covar(self):
        engine = engine_for(toy_covar_continuous_query())
        before = engine.plan.ring.copy(engine.result().payload(()))
        delta_rows = [("a1", 5), ("a2", 7)]
        engine.apply("R", inserts(("A", "B"), delta_rows))
        engine.apply("R", deletes(("A", "B"), delta_rows))
        after = engine.result().payload(())
        assert engine.plan.ring.close(before, after)

    def test_delete_to_empty_join(self):
        engine = engine_for(toy_count_query())
        engine.apply("R", deletes(("A", "B"), [("a1", 1), ("a2", 2)]))
        result = engine.result()
        assert result.payload(()) == 0
        assert len(result) == 0  # zero payloads are pruned

    def test_covar_insert_updates_all_aggregates(self):
        engine = engine_for(toy_covar_continuous_query())
        engine.apply("S", inserts(("A", "C", "D"), [("a2", 1, 4)]))
        payload = engine.result().payload(())
        # new join row: (b2, c1, d4) = (2, 1, 4)
        assert payload.c == 4.0
        assert payload.s.tolist() == [6.0, 6.0, 10.0]
        assert payload.q[0, 2] == 16.0  # 8 + 2*4

    def test_mixed_batch_single_delta(self):
        engine = engine_for(toy_count_query())
        from repro.data import delta_of

        delta = delta_of(
            ("A", "C", "D"),
            inserted=[("a1", 9, 9)],
            deleted=[("a1", 2, 3)],
        )
        engine.apply("S", delta)
        # a1 group: S rows (c1,d1) and (9,9) -> 2 rows * R count 1 + a2: 1
        assert engine.result().payload(()) == 3
