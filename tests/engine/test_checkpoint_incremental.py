"""Incremental checkpoint chains: write, resolve, replay, recover, fail."""

import pytest

from repro.checkpoint import (
    checkpoint_sink,
    load_checkpoint_chain,
    read_checkpoint,
    read_checkpoint_info,
    remove_stale_increments,
    resolve_chain_head,
    restore_checkpoint,
    write_checkpoint,
)
from repro.config import EngineConfig, create_engine
from repro.datasets import (
    UpdateStream,
    toy_count_query,
    toy_database,
    toy_row_factories,
    toy_variable_order,
)
from repro.errors import CheckpointError


def toy_events(total=120, insert_ratio=0.6, seed=31):
    database = toy_database()
    stream = UpdateStream(
        database,
        toy_row_factories(),
        targets=("R", "S"),
        batch_size=10,
        insert_ratio=insert_ratio,
        seed=seed,
    )
    return database, list(stream.tuples(total))


def fresh_engine(database, config=None):
    engine = create_engine(
        toy_count_query(), config=config, order=toy_variable_order()
    )
    engine.initialize(database)
    return engine


def write_chain(tmp_path, database, events, links=3):
    """Full + ``links`` increments, one per event quarter; returns paths."""
    engine = fresh_engine(database)
    chunk = len(events) // (links + 1)
    paths = []
    prev = None
    for i in range(links + 1):
        engine.apply_stream(iter(events[i * chunk:(i + 1) * chunk]), batch_size=10)
        path = str(tmp_path / ("c.ckpt" if i == 0 else f"c.ckpt.inc{i}"))
        state = engine.export_state()
        info = write_checkpoint(engine, path, base=prev, state=state)
        prev = (info, state)
        paths.append(path)
    return engine, paths


class TestChainWrite:
    def test_full_then_increments_carry_chain_header(self, tmp_path):
        database, events = toy_events()
        _, paths = write_chain(tmp_path, database, events)
        infos = [read_checkpoint_info(p) for p in paths]
        assert not infos[0].incremental and infos[0].chain_seq == 0
        assert infos[0].chain_id
        for seq, info in enumerate(infos[1:], start=1):
            assert info.incremental
            assert info.chain_id == infos[0].chain_id
            assert info.chain_seq == seq
            assert info.base_file == ("c.ckpt" if seq == 1 else f"c.ckpt.inc{seq - 1}")

    def test_delta_body_holds_views_delta_not_views(self, tmp_path):
        database, events = toy_events()
        _, paths = write_chain(tmp_path, database, events)
        _, raw = read_checkpoint(paths[1])
        assert "views" not in raw
        assert set(raw["views_delta"])  # at least one view changed
        some = next(iter(raw["views_delta"].values()))
        assert set(some) == {"set", "drop"}

    def test_describe_mentions_chain_position(self, tmp_path):
        database, events = toy_events()
        _, paths = write_chain(tmp_path, database, events)
        assert "incremental #2 on c.ckpt.inc1" in read_checkpoint_info(
            paths[2]
        ).describe()
        assert "incremental" not in read_checkpoint_info(paths[0]).describe()

    def test_unchanged_views_produce_empty_delta(self, tmp_path):
        # The diff detects untouched views by payload identity: with no
        # events between base and increment, every per-view delta is
        # empty. (Byte savings at realistic view sizes is asserted by
        # benchmarks/bench_windowed.py; at toy scale headers dominate.)
        database, events = toy_events()
        engine = fresh_engine(database)
        engine.apply_stream(iter(events), batch_size=10)
        state = engine.export_state()
        info = write_checkpoint(engine, str(tmp_path / "f.ckpt"), state=state)
        write_checkpoint(
            engine,
            str(tmp_path / "f.ckpt.inc1"),
            base=(info, state),
            state=engine.export_state(),
        )
        _, raw = read_checkpoint(str(tmp_path / "f.ckpt.inc1"))
        for delta in raw["views_delta"].values():
            assert delta["set"] == {} and delta["drop"] == []


class TestChainRestore:
    def test_chain_equals_uninterrupted_and_single_full(self, tmp_path):
        database, events = toy_events()
        engine, paths = write_chain(tmp_path, database, events)
        expected = engine.result()
        # ... equals a single full snapshot taken at the same moment ...
        single = str(tmp_path / "single.ckpt")
        write_checkpoint(engine, single)
        restored_single = fresh_engine(database)
        restore_checkpoint(restored_single, single)
        assert restored_single.result() == expected
        # ... and equals replaying the chain head.
        restored_chain = fresh_engine(database)
        restore_checkpoint(restored_chain, paths[-1])
        assert restored_chain.result() == expected
        assert restored_chain.export_state() == restored_single.export_state()

    def test_mid_chain_restore_matches_prefix_run(self, tmp_path):
        database, events = toy_events()
        _, paths = write_chain(tmp_path, database, events, links=3)
        # write_chain writes after each chunk: paths[2] covers 3 chunks.
        consumed = 3 * (len(events) // 4)
        reference = fresh_engine(database)
        reference.apply_stream(iter(events[:consumed]), batch_size=10)
        restored = fresh_engine(database)
        restore_checkpoint(restored, paths[2])
        assert restored.result() == reference.result()

    def test_restored_engine_keeps_maintaining(self, tmp_path):
        database, events = toy_events(total=160)
        engine, paths = write_chain(tmp_path, database, events[:120])
        restored = fresh_engine(database)
        restore_checkpoint(restored, paths[-1])
        tail = events[120:]
        engine.apply_stream(iter(tail), batch_size=10)
        restored.apply_stream(iter(tail), batch_size=10)
        assert restored.result() == engine.result()

    @pytest.mark.parametrize("restore_shards", [1, 2, 4])
    def test_shard_topology_changes_across_the_chain(self, tmp_path, restore_shards):
        # A chain written unsharded restores into any shard topology.
        database, events = toy_events()
        engine, paths = write_chain(tmp_path, database, events)
        expected = engine.result()
        config = (
            EngineConfig(shards=restore_shards, backend="serial")
            if restore_shards > 1
            else None
        )
        restored = create_engine(
            toy_count_query(), config=config, order=toy_variable_order()
        )
        if restore_shards > 1:
            with restored:
                restore_checkpoint(restored, paths[-1])
                assert restored.result() == expected
        else:
            restore_checkpoint(restored, paths[-1])
            assert restored.result() == expected

    def test_chain_written_sharded_restores_unsharded(self, tmp_path):
        database, events = toy_events()
        engine = create_engine(
            toy_count_query(),
            config=EngineConfig(shards=2, backend="serial"),
            order=toy_variable_order(),
        )
        with engine:
            engine.initialize(database)
            engine.apply_stream(iter(events[:60]), batch_size=10)
            full = str(tmp_path / "s.ckpt")
            state = engine.export_state()
            info = write_checkpoint(engine, full, state=state)
            engine.apply_stream(iter(events[60:]), batch_size=10)
            inc = str(tmp_path / "s.ckpt.inc1")
            write_checkpoint(engine, inc, base=(info, state))
            expected = engine.result()
        restored = fresh_engine(database)
        restore_checkpoint(restored, inc)
        assert restored.result() == expected


class TestResolveChainHead:
    def test_walks_to_newest_increment(self, tmp_path):
        database, events = toy_events()
        _, paths = write_chain(tmp_path, database, events)
        assert resolve_chain_head(paths[0]) == paths[-1]

    def test_full_without_increments_is_its_own_head(self, tmp_path):
        database, events = toy_events()
        engine = fresh_engine(database)
        engine.apply_stream(iter(events), batch_size=10)
        path = str(tmp_path / "solo.ckpt")
        write_checkpoint(engine, path)
        assert resolve_chain_head(path) == path

    def test_stale_increment_from_older_chain_rejected(self, tmp_path):
        # Chain A leaves c.ckpt.inc1..3 behind; a fresh full snapshot
        # starts chain B at the same base path. The stale increments must
        # not be picked up: their chain_id belongs to the dead chain.
        database, events = toy_events()
        engine, paths = write_chain(tmp_path, database, events)
        write_checkpoint(engine, paths[0])  # new full, new chain id
        assert resolve_chain_head(paths[0]) == paths[0]
        remove_stale_increments(paths[0])
        import os

        assert not any(os.path.exists(p) for p in paths[1:])

    def test_gap_in_sequence_stops_the_walk(self, tmp_path):
        import os

        database, events = toy_events()
        _, paths = write_chain(tmp_path, database, events)
        os.unlink(paths[1])  # c.ckpt.inc1 gone; inc2/inc3 unreachable
        assert resolve_chain_head(paths[0]) == paths[0]


class TestCheckpointSink:
    def test_full_every_alternates_full_and_incremental(self, tmp_path):
        database, events = toy_events()
        path = str(tmp_path / "sink.ckpt")
        engine = fresh_engine(database)
        engine.apply_stream(
            iter(events),
            batch_size=10,
            checkpoint_every=30,
            on_checkpoint=checkpoint_sink(path, full_every=2),
        )
        # Four checkpoints (every 30 events): full, inc1, full, inc1.
        head = resolve_chain_head(path)
        assert head == f"{path}.inc1"
        info = read_checkpoint_info(path)
        assert not info.incremental
        assert read_checkpoint_info(head).chain_id == info.chain_id
        restored = fresh_engine(database)
        restore_checkpoint(restored, head)
        # The head covers the stream up to the last checkpoint position
        # (tuples() rounds the event count up to a batch boundary, so the
        # final events may fall after it).
        last = (len(events) // 30) * 30
        reference = fresh_engine(database)
        reference.apply_stream(iter(events[:last]), batch_size=10)
        assert restored.result() == reference.result()

    def test_full_every_one_keeps_single_file_behavior(self, tmp_path):
        import os

        database, events = toy_events()
        path = str(tmp_path / "plain.ckpt")
        engine = fresh_engine(database)
        engine.apply_stream(
            iter(events),
            batch_size=10,
            checkpoint_every=40,
            on_checkpoint=checkpoint_sink(path),
        )
        assert not os.path.exists(f"{path}.inc1")
        restored = fresh_engine(database)
        restore_checkpoint(restored, path)
        last = (len(events) // 40) * 40
        reference = fresh_engine(database)
        reference.apply_stream(iter(events[:last]), batch_size=10)
        assert restored.result() == reference.result()

    def test_new_full_cleans_stale_increments(self, tmp_path):
        import os

        database, events = toy_events()
        path = str(tmp_path / "clean.ckpt")
        engine = fresh_engine(database)
        # full_every=4 over 4 checkpoints: full, inc1, inc2, inc3.
        engine.apply_stream(
            iter(events),
            batch_size=10,
            checkpoint_every=30,
            on_checkpoint=checkpoint_sink(path, full_every=4),
        )
        assert os.path.exists(f"{path}.inc3")
        # The next cycle's full write drops the previous increments.
        sink = checkpoint_sink(path, full_every=4)
        sink(engine, 0)
        assert not os.path.exists(f"{path}.inc1")

    def test_full_every_must_be_positive(self):
        with pytest.raises(CheckpointError, match="full_every"):
            checkpoint_sink("x.ckpt", full_every=0)


class TestChainFailures:
    def test_missing_base_file(self, tmp_path):
        import os

        database, events = toy_events()
        _, paths = write_chain(tmp_path, database, events)
        os.unlink(paths[0])
        with pytest.raises(CheckpointError, match="base"):
            load_checkpoint_chain(paths[-1])

    def test_chain_id_mismatch(self, tmp_path):
        database, events = toy_events()
        engine, paths = write_chain(tmp_path, database, events)
        # Overwrite the full snapshot: new chain id, old increments orphaned.
        write_checkpoint(engine, paths[0])
        with pytest.raises(CheckpointError, match="chain"):
            load_checkpoint_chain(paths[-1])

    def test_base_must_carry_views(self, tmp_path):
        database, events = toy_events()
        engine = fresh_engine(database)
        engine.apply_stream(iter(events), batch_size=10)
        state = engine.export_state()
        info = write_checkpoint(
            engine, str(tmp_path / "f.ckpt"), state=state
        )
        broken = {k: v for k, v in state.items() if k != "views"}
        with pytest.raises(CheckpointError, match="views"):
            write_checkpoint(
                engine,
                str(tmp_path / "f.ckpt.inc1"),
                base=(info, broken),
                state=state,
            )

    def test_restore_full_still_works_after_chain(self, tmp_path):
        # Restoring the chain's *root* ignores the increments entirely.
        database, events = toy_events()
        _, paths = write_chain(tmp_path, database, events)
        quarter = len(events) // 4
        reference = fresh_engine(database)
        reference.apply_stream(iter(events[:quarter]), batch_size=10)
        restored = fresh_engine(database)
        restore_checkpoint(restored, paths[0])
        assert restored.result() == reference.result()
