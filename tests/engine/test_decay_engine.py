"""Engine-level decay: cross-path bit-equality, analytics, sharding, stats."""

import pytest

from repro.config import EngineConfig, create_engine
from repro.datasets import (
    UpdateStream,
    toy_count_query,
    toy_covar_continuous_query,
    toy_database,
    toy_row_factories,
    toy_variable_order,
)
from repro.engine import FIVMEngine
from repro.engine.sharded import available_backends
from repro.engine.transport import available_transports
from repro.errors import EngineError
from repro.rings import payload_drift, result_drift

needs_process = pytest.mark.skipif(
    "process" not in available_backends(), reason="fork unavailable"
)
needs_shm = pytest.mark.skipif(
    "shm" not in available_transports(), reason="shared memory unavailable"
)

# Toy query joins two base relations, so every result summand carries
# exactly two decayed leaf factors.
TOY_LEAVES = 2

PATHS = {
    "per-tuple": dict(use_columnar=False, use_fused=False),
    "columnar": dict(use_columnar=True, use_fused=False),
    "fused": dict(use_columnar=True, use_fused=True),
}


def toy_events(total=60, insert_ratio=0.7, seed=13):
    database = toy_database()
    stream = UpdateStream(
        database,
        toy_row_factories(),
        targets=("R", "S"),
        batch_size=6,
        insert_ratio=insert_ratio,
        seed=seed,
    )
    return database, list(stream.tuples(total))


def decayed_engine(decay="0.9/10", config=None, **path):
    config = config or EngineConfig(decay=decay, **path)
    return create_engine(
        toy_covar_continuous_query(), config=config, order=toy_variable_order()
    )


class TestConstruction:
    def test_count_query_refuses_decay(self):
        # Z payloads cannot carry float weights: fail at build, loudly.
        with pytest.raises(EngineError, match="decay"):
            FIVMEngine(
                toy_count_query(),
                order=toy_variable_order(),
                config=EngineConfig(decay="0.9/10"),
            )

    def test_covar_numeric_query_accepts_decay(self):
        engine = decayed_engine()
        assert engine.decay_ring is not None
        assert engine.decay_ring.rate == 0.9

    def test_advance_on_undecayed_engine_refuses(self):
        engine = FIVMEngine(
            toy_covar_continuous_query(), order=toy_variable_order()
        )
        engine.initialize(toy_database())
        with pytest.raises(EngineError, match="decay"):
            engine.advance_decay(1)


class TestAnalyticDecay:
    def test_result_is_undecayed_scaled_by_rate_power(self):
        # Every event lands at tick 0; after d ticks the whole result is
        # the undecayed result times rate^(d * leaves) — the multilinear
        # settle factor, checked analytically.
        database, events = toy_events()
        undecayed = FIVMEngine(
            toy_covar_continuous_query(), order=toy_variable_order()
        )
        undecayed.initialize(database)
        undecayed.apply_stream(iter(events), batch_size=10)
        reference = undecayed.result()

        engine = decayed_engine(decay="0.9/1000000")
        engine.initialize(database)
        engine.apply_stream(iter(events), batch_size=10)
        ticks = 3
        engine.advance_decay(ticks)
        decayed = engine.result()

        factor = 0.9 ** (ticks * TOY_LEAVES)
        assert set(decayed.data) == set(reference.data)
        for key, payload in reference.data.items():
            expected = reference.ring.scale_float(payload, factor)
            assert payload_drift(decayed.data[key], expected) < 1e-9

    def test_zero_ticks_equals_undecayed(self):
        database, events = toy_events()
        undecayed = FIVMEngine(
            toy_covar_continuous_query(), order=toy_variable_order()
        )
        undecayed.initialize(database)
        undecayed.apply_stream(iter(events), batch_size=10)
        engine = decayed_engine(decay="0.5/1000000")
        engine.initialize(database)
        engine.apply_stream(iter(events), batch_size=10)
        assert result_drift(engine.result(), undecayed.result()) < 1e-12

    def test_result_settle_is_idempotent(self):
        database, events = toy_events()
        engine = decayed_engine(decay="0.9/1000000")
        engine.initialize(database)
        engine.apply_stream(iter(events), batch_size=10)
        engine.advance_decay(2)
        first = engine.result().copy()
        # Settling folded the pending ticks in; reading again must not
        # decay the state a second time.
        assert engine.decay_ring.ticks == 0
        assert engine.result() == first


class TestPathEquality:
    def test_per_tuple_columnar_fused_bit_identical(self):
        # The boost rides the shared multiplicity entry points, so all
        # three maintenance paths produce the same bits.
        database, events = toy_events()
        results = {}
        for name, path in PATHS.items():
            engine = decayed_engine(config=EngineConfig(decay="0.9/10", **path))
            engine.initialize(database)
            engine.apply_stream(iter(events), batch_size=10)
            results[name] = engine.result()
        assert results["per-tuple"] == results["columnar"] == results["fused"]

    def test_forced_rescale_changes_nothing(self):
        database, events = toy_events()
        plain = decayed_engine(decay="0.9/10")
        plain.initialize(database)
        plain.apply_stream(iter(events), batch_size=10)

        rescaling = decayed_engine(decay="0.9/10")
        rescaling.decay_ring.boost_limit = 1.01  # settle on every tick
        rescaling.initialize(database)
        rescaling.apply_stream(iter(events), batch_size=10)
        assert rescaling.stats.decay_rescales > 0
        assert result_drift(rescaling.result(), plain.result()) < 1e-9


class TestAutoAdvance:
    def test_apply_stream_ticks_every_interval(self):
        database, events = toy_events(total=60)
        engine = decayed_engine(decay="0.9/20")
        engine.initialize(database)
        engine.apply_stream(iter(events), batch_size=7)
        assert engine.stats.decay_ticks == len(events) // 20
        assert engine.stats.decay_ticks > 0

    def test_interval_crosses_batches(self):
        # Tick positions depend on the event count, not the batching: the
        # pending batch flushes before each tick. Batching still regroups
        # float additions, so the contract across batch sizes is
        # epsilon-closeness (bit-equality holds per batching, see
        # TestPathEquality).
        database, events = toy_events(total=60)
        results = {}
        ticks = set()
        for batch_size in (1, 7, 60):
            engine = decayed_engine(decay="0.9/20")
            engine.initialize(database)
            engine.apply_stream(iter(events), batch_size=batch_size)
            results[batch_size] = engine.result()
            ticks.add(engine.stats.decay_ticks)
        assert ticks == {len(events) // 20}
        assert results[1].close_to(results[7], 1e-9)
        assert results[7].close_to(results[60], 1e-9)


class TestStateRoundTrip:
    def test_export_settles_and_import_restores(self):
        database, events = toy_events()
        engine = decayed_engine(decay="0.9/10")
        engine.initialize(database)
        engine.apply_stream(iter(events), batch_size=10)
        expected = engine.result().copy()
        state = engine.export_state()
        assert engine.decay_ring.ticks == 0  # pending decay folded in

        restored = decayed_engine(decay="0.9/10")
        restored.import_state(state)
        assert restored.result() == expected


class TestSharded:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_serial_shards_close_to_unsharded(self, shards):
        # Shards settle locally then merge; the unsharded engine merges
        # then settles. Float multiplication is not distributive to the
        # last bit, so the contract is epsilon-closeness, not equality.
        database, events = toy_events()
        unsharded = decayed_engine(decay="0.9/10")
        unsharded.initialize(database)
        unsharded.apply_stream(iter(events), batch_size=10)
        engine = decayed_engine(
            config=EngineConfig(shards=shards, backend="serial", decay="0.9/10")
        )
        with engine:
            engine.initialize(database)
            engine.apply_stream(iter(events), batch_size=10)
            assert engine.result().close_to(unsharded.result(), 1e-9)
            assert engine.stats.decay_ticks == unsharded.stats.decay_ticks

    @pytest.mark.slow
    @needs_process
    @needs_shm
    def test_transports_bit_identical(self):
        # Across transports the arithmetic order is identical, so the
        # stronger bit-equality contract holds shard-count for shard-count.
        database, events = toy_events()
        results = {}
        for backend, transport in (
            ("serial", "auto"),
            ("process", "pipe"),
            ("process", "shm"),
        ):
            engine = decayed_engine(
                config=EngineConfig(
                    shards=2,
                    backend=backend,
                    transport=transport,
                    decay="0.9/10",
                )
            )
            with engine:
                engine.initialize(database)
                engine.apply_stream(iter(events), batch_size=10)
                results[(backend, transport)] = engine.result()
        assert (
            results[("serial", "auto")]
            == results[("process", "pipe")]
            == results[("process", "shm")]
        )
