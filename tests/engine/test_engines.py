"""Engine behaviours beyond result equality: lifecycle, stats, errors."""

import pytest

from repro.data import Relation, inserts
from repro.datasets import toy_count_query, toy_database, toy_variable_order
from repro.engine import FIVMEngine, FirstOrderEngine, NaiveEngine
from repro.errors import EngineError

QUERY = toy_count_query()
ORDER = toy_variable_order()

ENGINE_CLASSES = [FIVMEngine, FirstOrderEngine, NaiveEngine]


@pytest.fixture(params=ENGINE_CLASSES, ids=lambda cls: cls.strategy)
def engine(request):
    engine = request.param(QUERY, order=ORDER)
    engine.initialize(toy_database())
    return engine


class TestLifecycle:
    @pytest.mark.parametrize("cls", ENGINE_CLASSES, ids=lambda c: c.strategy)
    def test_apply_before_initialize_rejected(self, cls):
        engine = cls(QUERY, order=ORDER)
        with pytest.raises(EngineError):
            engine.apply("R", inserts(("A", "B"), [("a1", 1)]))
        with pytest.raises(EngineError):
            engine.result()

    def test_wrong_delta_schema_rejected(self, engine):
        with pytest.raises(EngineError):
            engine.apply("R", inserts(("A", "C"), [("a1", 1)]))

    def test_empty_delta_is_noop(self, engine):
        before = engine.result().payload(())
        engine.apply("R", Relation(("A", "B")))
        assert engine.result().payload(()) == before
        assert engine.stats.batches_applied == 0

    def test_apply_batch(self, engine):
        engine.apply_batch(
            [
                ("R", inserts(("A", "B"), [("a1", 1)])),
                ("S", inserts(("A", "C", "D"), [("a1", 9, 9)])),
            ]
        )
        assert engine.stats.batches_applied == 2

    def test_external_database_not_mutated(self):
        db = toy_database()
        engine = FirstOrderEngine(QUERY, order=ORDER)
        engine.initialize(db)
        engine.apply("R", inserts(("A", "B"), [("a9", 9)]))
        assert ("a9", 9) not in db.relation("R").data


class TestStatistics:
    def test_update_counters(self, engine):
        engine.apply("R", inserts(("A", "B"), [("a1", 1), ("a1", 1)]))
        assert engine.stats.updates_applied == 2
        assert engine.stats.tuples_applied == 1
        assert engine.stats.batches_applied == 1

    def test_snapshot_roundtrip(self, engine):
        engine.apply("R", inserts(("A", "B"), [("a1", 1)]))
        snap = engine.stats.snapshot()
        assert snap["updates_applied"] == 1
        assert snap["batches_applied"] == 1


class TestFIVMSpecifics:
    def test_view_accessor(self):
        engine = FIVMEngine(QUERY, order=ORDER)
        engine.initialize(toy_database())
        assert engine.view("V_R").payload(("a1",)) == 1
        with pytest.raises(EngineError):
            engine.view("V_missing")

    def test_view_sizes_tracked(self):
        engine = FIVMEngine(QUERY, order=ORDER)
        engine.initialize(toy_database())
        assert engine.stats.view_sizes["V_R"] == 2
        assert engine.stats.view_sizes["V@A"] == 1
        assert engine.total_view_tuples() == 2 + 2 + 1

    def test_early_termination_on_dead_delta(self):
        engine = FIVMEngine(QUERY, order=ORDER)
        engine.initialize(toy_database())
        # insert then delete within two batches: second batch's propagation
        # reaches the root with a cancelling delta
        engine.apply("R", inserts(("A", "B"), [("a7", 7)]))
        propagated_before = engine.stats.delta_tuples_propagated
        engine.apply("R", inserts(("A", "B"), [("a7", 7)]).neg())
        assert engine.stats.delta_tuples_propagated >= propagated_before
        assert engine.view("V_R").payload(("a7",)) == 0

    def test_unknown_relation_rejected(self):
        engine = FIVMEngine(QUERY, order=ORDER)
        engine.initialize(toy_database())
        with pytest.raises(Exception):
            engine.apply("Nope", inserts(("A", "B"), [("a1", 1)]))


class TestNaiveSpecifics:
    def test_deferred_refresh(self):
        engine = NaiveEngine(QUERY, order=ORDER, refresh_on_apply=False)
        engine.initialize(toy_database())
        engine.apply("R", inserts(("A", "B"), [("a1", 1)]))
        # result() triggers the deferred recomputation
        assert engine.result().payload(()) == 5
        # second read is cached
        assert engine.result().payload(()) == 5


class TestMultiRelationUpdateInterleaving:
    def test_updates_to_all_relations(self, engine):
        engine.apply("R", inserts(("A", "B"), [("a3", 3)]))
        engine.apply("S", inserts(("A", "C", "D"), [("a3", 1, 1)]))
        engine.apply("S", inserts(("A", "C", "D"), [("a3", 1, 1)]))
        assert engine.result().payload(()) == 3 + 2
