"""Windowed ingest equivalence: every engine, every transport, every advance.

The acceptance contract for time-aware maintenance: ingesting a stream
through :class:`~repro.data.windows.WindowedStream` must leave the engine
in *exactly* the state a fresh batch evaluation over the live window
would produce — at every window advance, for tumbling and sliding
windows, across the per-tuple/columnar/fused maintenance paths and the
serial/pipe/shm shard transports, including delete-heavy streams.
"""

import contextlib

import pytest

from repro.config import EngineConfig, create_engine
from repro.data import WindowSpec, WindowedStream, live_window_events
from repro.datasets import (
    UpdateStream,
    toy_count_query,
    toy_covar_continuous_query,
    toy_database,
    toy_row_factories,
    toy_variable_order,
)
from repro.engine import FIVMEngine
from repro.engine.sharded import available_backends
from repro.engine.transport import available_transports

needs_process = pytest.mark.skipif(
    "process" not in available_backends(), reason="fork unavailable"
)
needs_shm = pytest.mark.skipif(
    "shm" not in available_transports(), reason="shared memory unavailable"
)

TUMBLING = WindowSpec(24, 24)
SLIDING = WindowSpec(24, 8)

# The three maintenance paths that must agree bit-exactly.
PATHS = {
    "per-tuple": EngineConfig(use_columnar=False, use_fused=False),
    "columnar": EngineConfig(use_columnar=True, use_fused=False),
    "fused": EngineConfig(use_columnar=True, use_fused=True),
}


def toy_events(total=96, insert_ratio=0.7, seed=11):
    database = toy_database()
    stream = UpdateStream(
        database,
        toy_row_factories(),
        targets=("R", "S"),
        batch_size=8,
        insert_ratio=insert_ratio,
        seed=seed,
    )
    return database, list(stream.tuples(total))


def timed(events):
    """Index-as-time stamping: event i happens at time i."""
    return [(name, row, step, i) for i, (name, row, step) in enumerate(events)]


def batch_reference(query, database, live, batch_size=7):
    """Fresh engine fed exactly the live-window events, nothing else."""
    engine = FIVMEngine(query, order=toy_variable_order())
    engine.initialize(database)
    engine.apply_stream(iter(live), batch_size=batch_size)
    return engine.result()


def assert_equivalent_at_every_advance(
    query, database, events, spec, config=None, batch_size=7
):
    """At every boundary b: windowed state == batch eval over [b-size, b)."""
    stamped = timed(events)
    last = len(stamped) - 1
    boundaries = range(spec.slide, spec.boundary(last) + spec.slide, spec.slide)
    checked = 0
    for b in boundaries:
        prefix = stamped[:b]  # index-as-time: events with time < b
        if not prefix:
            continue
        engine = create_engine(
            query, config=config, order=toy_variable_order()
        )
        ctx = engine if hasattr(engine, "__enter__") else contextlib.nullcontext()
        with ctx:
            engine.initialize(database)
            stream = WindowedStream(spec, iter(prefix))
            engine.apply_stream(stream, batch_size=batch_size)
            engine.apply_stream(stream.advance_to(b), batch_size=batch_size)
            result = engine.result()
            expected = batch_reference(
                query, database, live_window_events(prefix, spec, b), batch_size
            )
            assert result == expected, (
                f"windowed state diverged from batch evaluation at "
                f"boundary {b} ({spec.describe()})"
            )
        checked += 1
    assert checked >= 3, "window sweep never crossed a boundary"


def assert_equivalent_mid_window(
    query, database, events, spec, config=None, batch_size=7
):
    """After the full stream: state == live window incl. unexpired tail."""
    stamped = timed(events)
    last = len(stamped) - 1
    engine = create_engine(query, config=config, order=toy_variable_order())
    ctx = engine if hasattr(engine, "__enter__") else contextlib.nullcontext()
    with ctx:
        engine.initialize(database)
        engine.apply_stream(
            WindowedStream(spec, iter(stamped)), batch_size=batch_size
        )
        result = engine.result()
        live = live_window_events(stamped, spec, spec.boundary(last), upto=last)
        assert result == batch_reference(query, database, live, batch_size)


class TestMaintenancePaths:
    """Tumbling and sliding windows across per-tuple/columnar/fused."""

    @pytest.mark.parametrize("path", sorted(PATHS))
    @pytest.mark.parametrize("spec", [TUMBLING, SLIDING], ids=lambda s: s.kind)
    def test_count_equivalent_at_every_advance(self, path, spec):
        database, events = toy_events()
        assert_equivalent_at_every_advance(
            toy_count_query(), database, events, spec, config=PATHS[path]
        )

    @pytest.mark.parametrize("path", sorted(PATHS))
    def test_covar_sliding_equivalent_at_every_advance(self, path):
        database, events = toy_events(total=64)
        assert_equivalent_at_every_advance(
            toy_covar_continuous_query(),
            database,
            events,
            SLIDING,
            config=PATHS[path],
        )

    @pytest.mark.parametrize("spec", [TUMBLING, SLIDING], ids=lambda s: s.kind)
    def test_delete_heavy_stream(self, spec):
        # Mostly deletes: retractions of deletes re-insert, windows shrink.
        database, events = toy_events(insert_ratio=0.3, seed=23)
        assert_equivalent_at_every_advance(
            toy_count_query(), database, events, spec
        )
        assert_equivalent_mid_window(toy_count_query(), database, events, spec)

    def test_mid_window_tail_included(self):
        database, events = toy_events()
        assert_equivalent_mid_window(
            toy_count_query(), database, events, SLIDING
        )

    def test_batch_size_invariance(self):
        # Window boundaries land mid-batch at any batch size: same state.
        database, events = toy_events()
        for batch_size in (1, 5, 64):
            assert_equivalent_mid_window(
                toy_count_query(),
                database,
                events,
                SLIDING,
                batch_size=batch_size,
            )


class TestShardedSerial:
    """Windowed retractions route through shards like any delta."""

    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("spec", [TUMBLING, SLIDING], ids=lambda s: s.kind)
    def test_equivalent_at_every_advance(self, shards, spec):
        database, events = toy_events()
        assert_equivalent_at_every_advance(
            toy_count_query(),
            database,
            events,
            spec,
            config=EngineConfig(shards=shards, backend="serial"),
        )

    @pytest.mark.parametrize("shards", [2, 4])
    def test_delete_heavy_sliding(self, shards):
        database, events = toy_events(insert_ratio=0.3, seed=23)
        assert_equivalent_at_every_advance(
            toy_count_query(),
            database,
            events,
            SLIDING,
            config=EngineConfig(shards=shards, backend="serial"),
        )


@pytest.mark.slow
@needs_process
class TestProcessTransports:
    """Windowed semantics survive the pipe and shm data planes bit-exactly."""

    @pytest.mark.parametrize("shards", [2, 4])
    def test_pipe_equivalent_at_every_advance(self, shards):
        database, events = toy_events(total=64)
        assert_equivalent_at_every_advance(
            toy_count_query(),
            database,
            events,
            SLIDING,
            config=EngineConfig(
                shards=shards, backend="process", transport="pipe"
            ),
        )

    @needs_shm
    @pytest.mark.parametrize("shards", [2, 4])
    def test_shm_equivalent_at_every_advance(self, shards):
        database, events = toy_events(total=64)
        assert_equivalent_at_every_advance(
            toy_count_query(),
            database,
            events,
            SLIDING,
            config=EngineConfig(
                shards=shards, backend="process", transport="shm"
            ),
        )

    @needs_shm
    def test_covar_delete_heavy_over_shm(self):
        database, events = toy_events(total=48, insert_ratio=0.3, seed=23)
        assert_equivalent_mid_window(
            toy_covar_continuous_query(),
            database,
            events,
            SLIDING,
            config=EngineConfig(shards=2, backend="process", transport="shm"),
        )
