"""Ring-genericity: the same engine runs on semirings (insert-only).

The paper's point is that the maintenance machinery is parameterized by
the payload algebra. Beyond the demo's rings, the boolean semiring turns
the count query into set-semantics existence and the tropical semiring
into a min-cost aggregate — with zero engine changes. Semirings have no
additive inverses, so delete support degrades loudly, not silently.
"""


import pytest

from repro.data import RelationSchema, deletes, inserts
from repro.datasets import toy_database, toy_variable_order
from repro.engine import FIVMEngine
from repro.errors import RingError
from repro.query import Query
from repro.rings import BoolRing, CountSpec, MinPlusRing

R = RelationSchema("R", ("A", "B"))
S = RelationSchema("S", ("A", "C", "D"))


def engine_with_ring(ring):
    query = Query("Q", (R, S), spec=CountSpec(ring=ring))
    engine = FIVMEngine(query, order=toy_variable_order())
    engine.initialize(toy_database())
    return engine


class TestBooleanSemiring:
    def test_existence_semantics(self):
        engine = engine_with_ring(BoolRing())
        assert engine.result().payload(()) is True

    def test_empty_join_is_false(self):
        engine = engine_with_ring(BoolRing())
        # Existence is pruned away entirely when the join dies: zero
        # payloads are removed, so the key disappears.
        query = Query("Q", (R, S), spec=CountSpec(ring=BoolRing()), free=("A",))
        e = FIVMEngine(query, order=toy_variable_order())
        e.initialize(toy_database())
        assert e.result().payload(("a1",)) is True
        assert e.result().payload(("zzz",)) is False

    def test_inserts_maintain_existence(self):
        engine = engine_with_ring(BoolRing())
        engine.apply("R", inserts(("A", "B"), [("a3", 3)]))
        assert engine.result().payload(()) is True

    def test_deletes_rejected_loudly(self):
        engine = engine_with_ring(BoolRing())
        with pytest.raises(RingError):
            engine.apply("R", deletes(("A", "B"), [("a1", 1)]))


class TestTropicalSemiring:
    def test_min_cost_join(self):
        """With g = 0 lifts the result is 0 iff the join is non-empty —
        and per-group it computes min over join derivations."""
        engine = engine_with_ring(MinPlusRing())
        assert engine.result().payload(()) == 0.0

    def test_insert_maintains(self):
        engine = engine_with_ring(MinPlusRing())
        engine.apply("S", inserts(("A", "C", "D"), [("a2", 9, 9)]))
        assert engine.result().payload(()) == 0.0

    def test_deletes_rejected(self):
        engine = engine_with_ring(MinPlusRing())
        with pytest.raises(RingError):
            engine.apply("S", deletes(("A", "C", "D"), [("a2", 2, 2)]))


class TestMinPlusWithCosts:
    def test_cheapest_derivation_per_group(self):
        """Lift D-values as costs: the root payload is the minimum total
        cost over the join — a shortest-derivation query on the same tree."""
        from repro.rings.specs import PayloadPlan, PayloadSpec

        class MinCostSpec(PayloadSpec):
            def build(self):
                ring = MinPlusRing()
                return PayloadPlan(ring=ring, lifts={"D": lambda d: float(d)})

            @property
            def lifted_attributes(self):
                return ("D",)

        query = Query("Q", (R, S), spec=MinCostSpec())
        engine = FIVMEngine(query, order=toy_variable_order())
        engine.initialize(toy_database())
        # D-values reachable through the join: 1, 3 (via a1), 2 (via a2).
        assert engine.result().payload(()) == 1.0
        engine.apply("S", inserts(("A", "C", "D"), [("a1", 5, 0)]))
        assert engine.result().payload(()) == 0.0
