"""Shard-aware checkpointing: cross-shard-count and cross-backend restore.

The acceptance property: a checkpoint exported from an N-shard engine
mid-stream restores into an M-shard engine (any M, including M=1 and a
plain FIVMEngine) and, after replaying the remaining updates, produces
results identical to uninterrupted ingestion — for scalar and covariance
payload rings, on delete-heavy streams included.
"""

import pickle

import pytest

from repro.data import Relation
from repro.datasets import (
    RetailerConfig,
    UpdateStream,
    generate_retailer,
    retailer_query,
    retailer_row_factories,
    retailer_variable_order,
    toy_count_query,
    toy_covar_continuous_query,
    toy_database,
    toy_variable_order,
)
from repro.engine import FIVMEngine, ShardedEngine, available_backends
from repro.errors import EngineError
from repro.rings import CountSpec
from repro.config import EngineConfig


def retailer_setup(insert_ratio=0.7, seed=5, total_updates=1200):
    config = RetailerConfig(
        locations=6, dates=8, items=24, inventory_rows=300, seed=seed
    )
    database = generate_retailer(config)
    stream = UpdateStream(
        database,
        retailer_row_factories(config, database),
        targets=("Inventory", "Weather"),
        batch_size=40,
        insert_ratio=insert_ratio,
        seed=seed,
    )
    return database, list(stream.tuples(total_updates))


def uninterrupted_result(database, events, batch_size=100):
    engine = FIVMEngine(retailer_query(CountSpec()), order=retailer_variable_order())
    engine.initialize(database)
    engine.apply_stream(iter(events), batch_size=batch_size)
    return engine.result()


def sharded(shards, backend="serial"):
    return ShardedEngine(
        retailer_query(CountSpec()),
        order=retailer_variable_order(),
        config=EngineConfig(shards=shards, backend=backend),
    )


def snapshot_mid_stream(engine, database, events, batch_size=100):
    """Initialize, apply the first half, export (picklable round trip)."""
    half = len(events) // 2
    engine.initialize(database)
    engine.apply_stream(iter(events[:half]), batch_size=batch_size)
    state = pickle.loads(pickle.dumps(engine.export_state()))
    return state, events[half:]


class TestCrossShardCountRestore:
    """N-shard snapshots restore at M shards with identical results."""

    @pytest.mark.parametrize(
        "source_shards,target_shards",
        [(1, 2), (2, 4), (4, 1), (4, 2), (1, 4)],
    )
    def test_restore_and_resume_matches_uninterrupted(
        self, source_shards, target_shards
    ):
        database, events = retailer_setup()
        expected = uninterrupted_result(database, events)
        source = sharded(source_shards)
        with source:
            state, remaining = snapshot_mid_stream(source, database, events)
        target = sharded(target_shards)
        with target:
            target.import_state(state)
            target.apply_stream(iter(remaining), batch_size=100)
            assert target.result() == expected

    @pytest.mark.parametrize("target_shards", [1, 2, 4])
    def test_delete_heavy_stream(self, target_shards):
        # Mostly deletes: cancellations shrink views between snapshot and
        # restore, exercising zero-pruning through the re-partitioning.
        database, events = retailer_setup(insert_ratio=0.3, seed=9)
        expected = uninterrupted_result(database, events)
        source = sharded(4)
        with source:
            state, remaining = snapshot_mid_stream(source, database, events)
        target = sharded(target_shards)
        with target:
            target.import_state(state)
            target.apply_stream(iter(remaining), batch_size=100)
            assert target.result() == expected

    def test_sharded_snapshot_restores_into_plain_fivm(self):
        database, events = retailer_setup()
        expected = uninterrupted_result(database, events)
        source = sharded(4)
        with source:
            state, remaining = snapshot_mid_stream(source, database, events)
        plain = FIVMEngine(
            retailer_query(CountSpec()), order=retailer_variable_order()
        )
        plain.import_state(state)
        plain.apply_stream(iter(remaining), batch_size=100)
        assert plain.result() == expected

    def test_plain_fivm_snapshot_restores_into_sharded(self):
        database, events = retailer_setup()
        expected = uninterrupted_result(database, events)
        plain = FIVMEngine(
            retailer_query(CountSpec()), order=retailer_variable_order()
        )
        state, remaining = snapshot_mid_stream(plain, database, events)
        target = sharded(4)
        with target:
            target.import_state(state)
            target.apply_stream(iter(remaining), batch_size=100)
            assert target.result() == expected

    def test_restored_views_partition_like_fresh_initialization(self):
        """Per-shard view materializations after restore are exactly what
        initializing at the target shard count would build (same routing)."""
        database, events = retailer_setup()
        source = sharded(4)
        with source:
            state, _remaining = snapshot_mid_stream(source, database, events)
        restored = sharded(2)
        with restored:
            restored.import_state(state)
            report_restored = restored.memory_report()
        # replaying the same prefix at 2 shards from scratch
        fresh = sharded(2)
        with fresh:
            half = len(events) // 2
            fresh.initialize(database)
            fresh.apply_stream(iter(events[:half]), batch_size=100)
            report_fresh = fresh.memory_report()
        assert {
            name: entry["entries"] for name, entry in report_restored.items()
        } == {name: entry["entries"] for name, entry in report_fresh.items()}

    def test_coordinator_counters_restored(self):
        database, events = retailer_setup()
        source = sharded(2)
        with source:
            state, _ = snapshot_mid_stream(source, database, events)
            expected_updates = source.stats.updates_applied
        target = sharded(4)
        with target:
            target.import_state(state)
            assert target.stats.updates_applied == expected_updates
            assert state["source_shards"] == 2


class TestCovarPayloadRestore:
    """The acceptance property must hold for the covariance ring too."""

    def toy_events(self):
        # interleaved inserts and deletes on both relations
        events = []
        for i in range(1, 9):
            events.append(("R", (f"a{i % 3 + 1}", float(i)), 1))
            events.append(("S", (f"a{i % 3 + 1}", float(i), float(2 * i)), 1))
        for i in range(1, 4):
            events.append(("R", (f"a{i % 3 + 1}", float(i)), -1))
        return events

    @pytest.mark.parametrize("source_shards,target_shards", [(4, 2), (4, 1), (2, 4)])
    def test_covar_cross_shard_restore(self, source_shards, target_shards):
        query = toy_covar_continuous_query()
        events = self.toy_events()
        half = len(events) // 2
        reference = FIVMEngine(query, order=toy_variable_order())
        reference.initialize(toy_database())
        reference.apply_stream(iter(events), batch_size=4)

        source = ShardedEngine(
            query,
            order=toy_variable_order(),
            config=EngineConfig(shards=source_shards, backend="serial"),
        )
        with source:
            source.initialize(toy_database())
            source.apply_stream(iter(events[:half]), batch_size=4)
            state = pickle.loads(pickle.dumps(source.export_state()))
        target = ShardedEngine(
            query,
            order=toy_variable_order(),
            config=EngineConfig(shards=target_shards, backend="serial"),
        )
        with target:
            target.import_state(state)
            target.apply_stream(iter(events[half:]), batch_size=4)
            assert target.result().close_to(reference.result(), 1e-9)


@pytest.mark.skipif(
    "process" not in available_backends(), reason="fork unavailable"
)
class TestProcessBackendRestore:
    """Serial <-> process: snapshots cross the backend boundary both ways."""

    def test_process_snapshot_restores_into_serial_and_back(self):
        database, events = retailer_setup(total_updates=600)
        expected = uninterrupted_result(database, events)
        source = sharded(2, backend="process")
        with source:
            state, remaining = snapshot_mid_stream(source, database, events)
        serial = sharded(4, backend="serial")
        with serial:
            serial.import_state(state)
            serial.apply_stream(iter(remaining), batch_size=100)
            assert serial.result() == expected

    def test_serial_snapshot_restores_into_process_workers(self):
        database, events = retailer_setup(total_updates=600)
        expected = uninterrupted_result(database, events)
        source = sharded(4, backend="serial")
        with source:
            state, remaining = snapshot_mid_stream(source, database, events)
        target = sharded(2, backend="process")
        with target:
            target.import_state(state)
            target.apply_stream(iter(remaining), batch_size=100)
            assert target.result() == expected
            # workers are live after restore: stats flow back over the pipes
            assert target.aggregate_stats()["updates_applied"] > 0


class TestShardedSnapshotValidation:
    def test_rejects_snapshot_of_other_query(self):
        engine = ShardedEngine(
            toy_count_query(),
            order=toy_variable_order(),
            config=EngineConfig(shards=2, backend="serial"),
        )
        with engine:
            engine.initialize(toy_database())
            state = engine.export_state()
        state["query"] = "Q_other"
        clone = ShardedEngine(
            toy_count_query(),
            order=toy_variable_order(),
            config=EngineConfig(shards=2, backend="serial"),
        )
        with pytest.raises(EngineError, match="Q_other"):
            clone.import_state(state)

    def test_rejects_view_mismatch(self):
        engine = ShardedEngine(
            toy_count_query(),
            order=toy_variable_order(),
            config=EngineConfig(shards=2, backend="serial"),
        )
        with engine:
            engine.initialize(toy_database())
            state = engine.export_state()
        state["views"]["V_extra"] = {}
        clone = ShardedEngine(
            toy_count_query(),
            order=toy_variable_order(),
            config=EngineConfig(shards=2, backend="serial"),
        )
        with pytest.raises(EngineError, match="V_extra"):
            clone.import_state(state)

    def test_import_without_prior_initialize(self):
        engine = ShardedEngine(
            toy_count_query(),
            order=toy_variable_order(),
            config=EngineConfig(shards=2, backend="serial"),
        )
        with engine:
            engine.initialize(toy_database())
            state = engine.export_state()
        fresh = ShardedEngine(
            toy_count_query(),
            order=toy_variable_order(),
            config=EngineConfig(shards=3, backend="serial"),
        )
        with fresh:
            fresh.import_state(state)
            assert fresh.result().payload(()) == 3
            delta = Relation(("A", "B"), name="R")
            delta.data = {("a1", 9): 1}
            fresh.apply("R", delta)
            assert fresh.result().payload(()) == 5
