"""The columnar maintenance path and the sharded columnar transport."""

import pickle

import pytest

from repro.data import inserts
from repro.data.delta import delta_of, deletes
from repro.datasets import (
    RetailerConfig,
    UpdateStream,
    continuous_covar_features,
    generate_retailer,
    retailer_query,
    retailer_row_factories,
    retailer_variable_order,
    toy_count_query,
    toy_covar_categorical_query,
    toy_database,
    toy_variable_order,
)
from repro.engine import FIVMEngine, NaiveEngine, ShardedEngine
from repro.engine.base import EngineStatistics
from repro.engine.sharded import available_backends
from repro.errors import EngineError
from repro.rings import CountSpec, CovarSpec
from repro.config import EngineConfig

R_SCHEMA = ("A", "B")
S_SCHEMA = ("A", "C", "D")


def retailer_setup(seed=5, inventory_rows=250):
    config = RetailerConfig(
        locations=4, dates=6, items=20, inventory_rows=inventory_rows, seed=seed
    )
    database = generate_retailer(config)
    stream = UpdateStream(
        database,
        retailer_row_factories(config, database),
        targets=("Inventory",),
        batch_size=50,
        insert_ratio=0.55,  # delete-heavy once warmed up
        seed=seed,
    )
    return database, stream


def covar_query(limit=2):
    return retailer_query(
        CovarSpec(continuous_covar_features(limit=limit), backend="numeric")
    )


class TestColumnarPathSelection:
    def test_auto_engages_for_cofactor_and_fused_scalar_rings(self):
        covar = FIVMEngine(covar_query(), order=retailer_variable_order())
        assert covar._columnar_paths  # numeric cofactor: vectorizable
        assert covar._fused_paths
        # Scalar rings ride the columnar path too now that grouping is
        # int-keyed — but only through fused kernels.
        count = FIVMEngine(
            retailer_query(CountSpec()), order=retailer_variable_order()
        )
        assert count._fused_paths
        assert set(count._columnar_paths) == set(count._fused_paths)
        # With fusion off, auto falls back to the scalar fast path.
        unfused = FIVMEngine(
            retailer_query(CountSpec()),
            order=retailer_variable_order(),
            config=EngineConfig(use_fused=False),
        )
        assert not unfused._columnar_paths
        forced = FIVMEngine(
            retailer_query(CountSpec()),
            order=retailer_variable_order(),
            config=EngineConfig(use_columnar=True, use_fused=False),
        )
        assert forced._columnar_paths

    def test_disabled_by_flag_and_by_no_view_index(self):
        off = FIVMEngine(
            covar_query(),
            order=retailer_variable_order(),
            config=EngineConfig(use_columnar=False),
        )
        assert not off._columnar_paths
        no_index = FIVMEngine(
            covar_query(),
            order=retailer_variable_order(),
            config=EngineConfig(use_view_index=False),
        )
        assert not no_index._columnar_paths

    def test_general_ring_falls_back(self):
        # The general cofactor ring has no bulk kernels: per-tuple path.
        engine = FIVMEngine(
            toy_covar_categorical_query(), order=toy_variable_order()
        )
        assert not engine._columnar_paths

    def test_invalid_flag_rejected(self):
        with pytest.raises(EngineError, match="use_columnar"):
            FIVMEngine(covar_query(), config=EngineConfig(use_columnar="yes"))

    def test_small_batches_stay_on_per_tuple_path(self):
        engine = FIVMEngine(covar_query(), order=retailer_variable_order())
        database, _stream = retailer_setup()
        engine.initialize(database)
        row = next(iter(database.relation("Inventory").data))
        engine.apply("Inventory", inserts(engine.query.schema_of("Inventory").attributes, [row]))
        assert engine.stats.columnar_batches == 0
        assert engine.stats.batches_applied == 1


class TestColumnarEquivalence:
    @pytest.mark.parametrize("batch_size", (16, 100))
    def test_covar_stream_matches_per_tuple_and_views_agree(self, batch_size):
        database, stream = retailer_setup()
        events = list(stream.tuples(500))
        engines = []
        for use_columnar in (True, False):
            engine = FIVMEngine(
                covar_query(),
                order=retailer_variable_order(),
                config=EngineConfig(use_columnar=use_columnar),
            )
            engine.initialize(database)
            engine.apply_stream(iter(events), batch_size=batch_size)
            engines.append(engine)
        columnar, per_tuple = engines
        assert columnar.stats.columnar_batches > 0
        assert columnar.stats.columnar_steps > 0
        assert per_tuple.stats.columnar_batches == 0
        assert columnar.result().close_to(per_tuple.result(), 1e-8)
        for name, view in columnar.materialized.items():
            assert view.close_to(per_tuple.materialized[name], 1e-8), name
        assert columnar.stats.view_sizes == per_tuple.stats.view_sizes

    def test_forced_columnar_count_ring_matches_oracle_exactly(self):
        database, stream = retailer_setup(seed=8)
        events = list(stream.tuples(400))
        columnar = FIVMEngine(
            retailer_query(CountSpec()),
            order=retailer_variable_order(),
            config=EngineConfig(use_columnar=True),
        )
        oracle = NaiveEngine(
            retailer_query(CountSpec()), order=retailer_variable_order()
        )
        for engine in (columnar, oracle):
            engine.initialize(database)
            engine.apply_stream(iter(events), batch_size=64)
        assert columnar.stats.columnar_batches > 0
        # Z payloads: bit-exact, not just close.
        assert columnar.result() == oracle.result()

    def test_cancelling_batch_returns_views_to_start(self):
        engine = FIVMEngine(covar_query(), order=retailer_variable_order())
        database, _stream = retailer_setup()
        engine.initialize(database)
        before = {
            name: {key: engine.plan.ring.copy(p) for key, p in view.data.items()}
            for name, view in engine.materialized.items()
        }
        schema = engine.query.schema_of("Inventory").attributes
        rows = [(100 + i, 1, 1, float(i)) for i in range(EngineStatistics.COLUMNAR_MIN_DELTA)]
        engine.apply("Inventory", inserts(schema, rows))
        assert engine.stats.columnar_batches == 1
        engine.apply("Inventory", deletes(schema, rows))
        assert engine.stats.columnar_batches == 2
        for name, data in before.items():
            view = engine.materialized[name]
            assert set(view.data) == set(data), name
            for key, payload in data.items():
                assert engine.plan.ring.close(view.data[key], payload, 1e-9)

    def test_columnar_delta_annihilated_mid_join_stops_cleanly(self):
        """A block emptied by a sibling probe must stop before marginalize."""
        engine = FIVMEngine(covar_query(), order=retailer_variable_order())
        database, _stream = retailer_setup()
        engine.initialize(database)
        schema = engine.query.schema_of("Inventory").attributes
        # ksn=9999 exists in no sibling: the V_Item probe wipes the block.
        rows = [(1, 1, 9999, float(i)) for i in range(20)]
        before = engine.result().data
        engine.apply("Inventory", inserts(schema, rows))
        assert engine.stats.columnar_batches == 1
        assert engine.result().data.keys() == before.keys()

    def test_checkpoint_roundtrip_across_columnar_modes(self):
        database, stream = retailer_setup(seed=12)
        events = list(stream.tuples(300))
        source = FIVMEngine(covar_query(), order=retailer_variable_order())
        source.initialize(database)
        source.apply_stream(iter(events[:150]), batch_size=50)
        snapshot = pickle.loads(pickle.dumps(source.export_state()))
        source.apply_stream(iter(events[150:]), batch_size=50)
        for use_columnar in (True, False):
            clone = FIVMEngine(
                covar_query(),
                order=retailer_variable_order(),
                config=EngineConfig(use_columnar=use_columnar),
            )
            clone.import_state(pickle.loads(pickle.dumps(snapshot)))
            clone.apply_stream(iter(events[150:]), batch_size=50)
            assert clone.result().close_to(source.result(), 1e-8)
        assert source.stats.columnar_batches > 0

    def test_columnar_counters_roundtrip_through_snapshot(self):
        database, stream = retailer_setup()
        events = list(stream.tuples(200))
        engine = FIVMEngine(covar_query(), order=retailer_variable_order())
        engine.initialize(database)
        engine.apply_stream(iter(events), batch_size=100)
        assert engine.stats.columnar_batches > 0
        restored = FIVMEngine(covar_query(), order=retailer_variable_order())
        restored.import_state(engine.export_state())
        assert restored.stats.columnar_batches == engine.stats.columnar_batches
        assert restored.stats.columnar_steps == engine.stats.columnar_steps


class TestColumnarWithToyQueries:
    """Hand-built deltas straddling COLUMNAR_MIN_DELTA on the toy query."""

    def engines(self):
        columnar = FIVMEngine(
            toy_count_query(),
            order=toy_variable_order(),
            config=EngineConfig(use_columnar=True),
        )
        oracle = NaiveEngine(toy_count_query(), order=toy_variable_order())
        for engine in (columnar, oracle):
            engine.initialize(toy_database())
        return columnar, oracle

    def big_delta(self, n=None, sign=1):
        n = n or EngineStatistics.COLUMNAR_MIN_DELTA + 4
        delta = inserts(R_SCHEMA, [(f"a{i % 7}", i) for i in range(n)])
        return delta if sign > 0 else delta.neg()

    def test_mixed_sizes_and_deletes_match_oracle(self):
        columnar, oracle = self.engines()
        steps = [
            ("R", self.big_delta()),
            ("S", inserts(S_SCHEMA, [("a1", 1, 2), ("a2", 3, 3)])),
            ("R", self.big_delta(sign=-1)),
            ("R", delta_of(R_SCHEMA, inserted=[("a1", 500)])),
        ]
        for name, delta in steps:
            columnar.apply(name, delta.copy())
            oracle.apply(name, delta.copy())
            assert columnar.result() == oracle.result()
        assert columnar.stats.columnar_batches == 2  # only the big R deltas

    def test_batch_with_internal_cancellation(self):
        columnar, oracle = self.engines()
        n = EngineStatistics.COLUMNAR_MIN_DELTA
        delta = inserts(R_SCHEMA, [(f"a{i}", i) for i in range(n)])
        delta.add_inplace(deletes(R_SCHEMA, [(f"a{i}", i) for i in range(0, n, 2)]))
        columnar.apply("R", delta.copy())
        oracle.apply("R", delta.copy())
        assert columnar.result() == oracle.result()


@pytest.mark.parametrize("backend", available_backends())
class TestColumnarTransport:
    def test_transport_on_off_and_shard_counts_agree(self, backend):
        database, stream = retailer_setup(seed=21)
        events = list(stream.tuples(400))
        reference = None
        for transport in (True, False):
            for shards in (1, 3):
                engine = ShardedEngine(
                    covar_query(),
                    order=retailer_variable_order(),
                    config=EngineConfig(shards=shards, backend=backend, columnar_transport=transport),
                )
                try:
                    engine.initialize(database)
                    engine.apply_stream(iter(events), batch_size=50)
                    result = engine.result()
                finally:
                    engine.close()
                if reference is None:
                    reference = result
                else:
                    assert result.close_to(reference, 1e-8), (backend, transport, shards)

    def test_count_ring_transport_exact(self, backend):
        database, stream = retailer_setup(seed=23)
        events = list(stream.tuples(300))
        oracle = FIVMEngine(
            retailer_query(CountSpec()), order=retailer_variable_order()
        )
        oracle.initialize(database)
        oracle.apply_stream(iter(events), batch_size=64)
        engine = ShardedEngine(
            retailer_query(CountSpec()),
            order=retailer_variable_order(),
            config=EngineConfig(shards=2, backend=backend, columnar_transport=True),
        )
        try:
            engine.initialize(database)
            engine.apply_stream(iter(events), batch_size=64)
            assert engine.result() == oracle.result()
        finally:
            engine.close()
