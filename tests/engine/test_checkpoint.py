"""Engine checkpointing and memory accounting."""

import pickle

import pytest

from repro.data import inserts
from repro.datasets import (
    toy_count_query,
    toy_covar_categorical_query,
    toy_database,
    toy_query,
    toy_variable_order,
)
from repro.engine import (
    FIVMEngine,
    FirstOrderEngine,
    NaiveEngine,
    PerAggregateEngine,
)
from repro.errors import EngineError
from repro.rings import CountSpec, CovarSpec, Feature
from repro.config import EngineConfig


def fresh_engine(query=None):
    engine = FIVMEngine(query or toy_count_query(), order=toy_variable_order())
    engine.initialize(toy_database())
    return engine


class TestCheckpoint:
    def test_roundtrip_preserves_result(self):
        engine = fresh_engine()
        engine.apply("R", inserts(("A", "B"), [("a1", 1)]))
        snapshot = engine.export_state()
        clone = FIVMEngine(toy_count_query(), order=toy_variable_order())
        clone.import_state(snapshot)
        assert clone.result() == engine.result()

    def test_restored_engine_keeps_maintaining(self):
        engine = fresh_engine()
        snapshot = engine.export_state()
        clone = FIVMEngine(toy_count_query(), order=toy_variable_order())
        clone.import_state(snapshot)
        delta = inserts(("A", "B"), [("a1", 1)])
        engine.apply("R", delta)
        clone.apply("R", delta)
        assert clone.result() == engine.result()

    def test_snapshot_is_picklable(self):
        engine = fresh_engine(toy_covar_categorical_query())
        snapshot = pickle.loads(pickle.dumps(engine.export_state()))
        clone = FIVMEngine(
            toy_covar_categorical_query(), order=toy_variable_order()
        )
        clone.import_state(snapshot)
        assert clone.result().close_to(engine.result(), 1e-12)

    def test_snapshot_isolated_from_source(self):
        engine = fresh_engine()
        snapshot = engine.export_state()
        engine.apply("R", inserts(("A", "B"), [("a9", 9)]))
        clone = FIVMEngine(toy_count_query(), order=toy_variable_order())
        clone.import_state(snapshot)
        assert clone.view("V_R").payload(("a9",)) == 0

    def test_mismatched_snapshot_rejected(self):
        engine = fresh_engine()
        snapshot = engine.export_state()
        snapshot["views"]["V_extra"] = {}
        clone = FIVMEngine(toy_count_query(), order=toy_variable_order())
        with pytest.raises(EngineError):
            clone.import_state(snapshot)

    def test_export_before_initialize_rejected(self):
        engine = FIVMEngine(toy_count_query(), order=toy_variable_order())
        with pytest.raises(EngineError):
            engine.export_state()

    def test_probe_counters_resume_coherently(self):
        """Indexes are rebuilt on restore and counters pick up where the
        snapshot left off: source and clone agree after identical applies."""
        engine = fresh_engine()
        engine.apply("R", inserts(("A", "B"), [("a1", 1)]))
        assert engine.stats.index_probes > 0
        snapshot = engine.export_state()
        clone = FIVMEngine(toy_count_query(), order=toy_variable_order())
        clone.import_state(snapshot)
        assert clone.stats.index_probes == engine.stats.index_probes
        assert clone.stats.probe_steps == engine.stats.probe_steps
        delta = inserts(("A", "B"), [("a2", 5)])
        engine.apply("R", delta)
        clone.apply("R", delta)
        assert clone.stats.index_probes == engine.stats.index_probes
        assert clone.stats.index_hits == engine.stats.index_hits
        assert clone.stats.updates_applied == engine.stats.updates_applied


class TestStateProvenance:
    """The shared header: format version, payload kind, query name."""

    def test_header_fields_present(self):
        state = fresh_engine().export_state()
        assert state["format_version"] == FIVMEngine.STATE_FORMAT_VERSION
        assert state["payload"] == "views"
        assert state["strategy"] == "fivm"
        assert state["query"] == "Q_count"

    def test_snapshot_from_other_query_rejected(self):
        # Same view names (V_R / V_S / V@A), different query: without the
        # provenance check this would restore garbage payloads.
        snapshot = fresh_engine(toy_query(CountSpec(), name="Q_other")).export_state()
        clone = FIVMEngine(toy_count_query(), order=toy_variable_order())
        with pytest.raises(EngineError, match="Q_other"):
            clone.import_state(snapshot)

    def test_unknown_format_version_rejected(self):
        snapshot = fresh_engine().export_state()
        snapshot["format_version"] = 99
        clone = FIVMEngine(toy_count_query(), order=toy_variable_order())
        with pytest.raises(EngineError, match="format version"):
            clone.import_state(snapshot)

    def test_missing_format_version_rejected(self):
        snapshot = fresh_engine().export_state()
        del snapshot["format_version"]
        clone = FIVMEngine(toy_count_query(), order=toy_variable_order())
        with pytest.raises(EngineError, match="format_version"):
            clone.import_state(snapshot)

    def test_wrong_payload_kind_rejected(self):
        naive = NaiveEngine(toy_count_query(), order=toy_variable_order())
        naive.initialize(toy_database())
        clone = FIVMEngine(toy_count_query(), order=toy_variable_order())
        with pytest.raises(EngineError, match="relations"):
            clone.import_state(naive.export_state())


class TestBaselineEngineCheckpoints:
    """Naive / first-order / per-aggregate implement the same interface."""

    @pytest.mark.parametrize("engine_cls", [NaiveEngine, FirstOrderEngine])
    def test_roundtrip_and_resume(self, engine_cls):
        engine = engine_cls(toy_count_query(), order=toy_variable_order())
        engine.initialize(toy_database())
        engine.apply("R", inserts(("A", "B"), [("a1", 7)]))
        snapshot = pickle.loads(pickle.dumps(engine.export_state()))
        clone = engine_cls(toy_count_query(), order=toy_variable_order())
        clone.import_state(snapshot)
        assert clone.result() == engine.result()
        delta = inserts(("A", "C", "D"), [("a1", 4, 4)])
        engine.apply("S", delta)
        clone.apply("S", delta)
        assert clone.result() == engine.result()
        assert clone.stats.updates_applied == engine.stats.updates_applied

    def test_naive_and_firstorder_share_payload_kind(self):
        naive = NaiveEngine(toy_count_query(), order=toy_variable_order())
        naive.initialize(toy_database())
        naive.apply("R", inserts(("A", "B"), [("a3", 3)]))
        clone = FirstOrderEngine(toy_count_query(), order=toy_variable_order())
        clone.import_state(naive.export_state())
        assert clone.result() == naive.result()

    def test_relations_snapshot_rejects_missing_relation(self):
        naive = NaiveEngine(toy_count_query(), order=toy_variable_order())
        naive.initialize(toy_database())
        snapshot = naive.export_state()
        del snapshot["relations"]["S"]
        clone = NaiveEngine(toy_count_query(), order=toy_variable_order())
        with pytest.raises(EngineError, match="relations"):
            clone.import_state(snapshot)

    def test_peragg_roundtrip(self):
        query = toy_query(
            CovarSpec((Feature.continuous("B"), Feature.continuous("C"))),
            name="Q_peragg",
        )
        features = (Feature.continuous("B"), Feature.continuous("C"))
        engine = PerAggregateEngine(query, features, order=toy_variable_order())
        engine.initialize(toy_database())
        engine.apply("R", inserts(("A", "B"), [("a1", 2)]))
        snapshot = pickle.loads(pickle.dumps(engine.export_state()))
        clone = PerAggregateEngine(query, features, order=toy_variable_order())
        clone.import_state(snapshot)
        c, s, q = engine.covar_matrix()
        c2, s2, q2 = clone.covar_matrix()
        assert c == c2 and (s == s2).all() and (q == q2).all()
        delta = inserts(("A", "B"), [("a2", 9)])
        engine.apply("R", delta)
        clone.apply("R", delta)
        assert clone.covar_matrix()[0] == engine.covar_matrix()[0]

    def test_peragg_rejects_different_feature_set(self):
        query = toy_query(
            CovarSpec((Feature.continuous("B"),)), name="Q_peragg"
        )
        engine = PerAggregateEngine(
            query, (Feature.continuous("B"),), order=toy_variable_order()
        )
        engine.initialize(toy_database())
        snapshot = engine.export_state()
        wide = PerAggregateEngine(
            query,
            (Feature.continuous("B"), Feature.continuous("C")),
            order=toy_variable_order(),
        )
        with pytest.raises(EngineError, match="aggregates"):
            wide.import_state(snapshot)


class TestApplyStreamCheckpointHook:
    def test_periodic_hook_sees_all_consumed_events(self):
        engine = fresh_engine()
        seen = []

        def on_checkpoint(source, count):
            assert source is engine
            # the pending partial batch was flushed before the hook ran
            assert source.stats.updates_applied == count
            seen.append((count, source.result().payload(())))

        events = [("R", ("a1", i), 1) for i in range(10)]
        engine.apply_stream(
            iter(events),
            batch_size=3,
            checkpoint_every=4,
            on_checkpoint=on_checkpoint,
        )
        assert [count for count, _ in seen] == [4, 8]
        # each snapshot point reflects exactly the prefix applied so far:
        # a1 joins two S tuples, so every R insert adds 2 to the count 3.
        assert [payload for _, payload in seen] == [3 + 2 * 4, 3 + 2 * 8]
        assert engine.stats.updates_applied == 10

    def test_checkpoint_every_requires_callback(self):
        engine = fresh_engine()
        with pytest.raises(EngineError, match="on_checkpoint"):
            engine.apply_stream(iter([]), checkpoint_every=5)

    def test_negative_checkpoint_every_rejected(self):
        engine = fresh_engine()
        with pytest.raises(EngineError, match="checkpoint_every"):
            engine.apply_stream(iter([]), checkpoint_every=-1)


class TestMemoryReport:
    def test_count_ring_weights(self):
        engine = fresh_engine()
        report = engine.memory_report()
        assert report["V_R"]["entries"] == 2
        assert report["V_R"]["payload_weight"] == 2
        assert report["V@A"]["entries"] == 1

    def test_index_overhead_reported(self):
        engine = fresh_engine()
        # Indexes materialize lazily: before any probing update there is
        # no index overhead at all, however many specs are registered.
        report = engine.memory_report()
        assert all("indexes" not in entry for entry in report.values())
        # An update to S probes V_R on A, materializing exactly that index.
        engine.apply("S", inserts(("A", "C", "D"), [("a1", 1, 1)]))
        report = engine.memory_report()
        assert report["V_R"]["indexes"] == 1
        assert report["V_R"]["index_entries"] == report["V_R"]["entries"]
        assert report["V_R"]["index_buckets"] >= 1
        # The root is never probed, so it carries no index overhead keys.
        assert "indexes" not in report["V@A"]

    def test_no_index_overhead_when_disabled(self):
        engine = FIVMEngine(
            toy_count_query(),
            order=toy_variable_order(),
            config=EngineConfig(use_view_index=False),
        )
        engine.initialize(toy_database())
        report = engine.memory_report()
        assert all("indexes" not in entry for entry in report.values())

    def test_relational_cofactor_weights_count_annotations(self):
        engine = fresh_engine(toy_covar_categorical_query())
        report = engine.memory_report()
        root = report["V@A"]
        # one key, but the payload fans out into count + s entries + Q cells
        assert root["entries"] == 1
        assert root["payload_weight"] > 5

    def test_covers_every_view(self):
        engine = fresh_engine()
        assert set(engine.memory_report()) == {"V_R", "V_S", "V@A"}
