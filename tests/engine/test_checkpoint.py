"""Engine checkpointing and memory accounting."""

import pickle

import pytest

from repro.data import inserts
from repro.datasets import (
    toy_count_query,
    toy_covar_categorical_query,
    toy_database,
    toy_variable_order,
)
from repro.engine import FIVMEngine
from repro.errors import EngineError


def fresh_engine(query=None):
    engine = FIVMEngine(query or toy_count_query(), order=toy_variable_order())
    engine.initialize(toy_database())
    return engine


class TestCheckpoint:
    def test_roundtrip_preserves_result(self):
        engine = fresh_engine()
        engine.apply("R", inserts(("A", "B"), [("a1", 1)]))
        snapshot = engine.export_state()
        clone = FIVMEngine(toy_count_query(), order=toy_variable_order())
        clone.import_state(snapshot)
        assert clone.result() == engine.result()

    def test_restored_engine_keeps_maintaining(self):
        engine = fresh_engine()
        snapshot = engine.export_state()
        clone = FIVMEngine(toy_count_query(), order=toy_variable_order())
        clone.import_state(snapshot)
        delta = inserts(("A", "B"), [("a1", 1)])
        engine.apply("R", delta)
        clone.apply("R", delta)
        assert clone.result() == engine.result()

    def test_snapshot_is_picklable(self):
        engine = fresh_engine(toy_covar_categorical_query())
        snapshot = pickle.loads(pickle.dumps(engine.export_state()))
        clone = FIVMEngine(
            toy_covar_categorical_query(), order=toy_variable_order()
        )
        clone.import_state(snapshot)
        assert clone.result().close_to(engine.result(), 1e-12)

    def test_snapshot_isolated_from_source(self):
        engine = fresh_engine()
        snapshot = engine.export_state()
        engine.apply("R", inserts(("A", "B"), [("a9", 9)]))
        clone = FIVMEngine(toy_count_query(), order=toy_variable_order())
        clone.import_state(snapshot)
        assert clone.view("V_R").payload(("a9",)) == 0

    def test_mismatched_snapshot_rejected(self):
        engine = fresh_engine()
        snapshot = engine.export_state()
        snapshot["views"]["V_extra"] = {}
        clone = FIVMEngine(toy_count_query(), order=toy_variable_order())
        with pytest.raises(EngineError):
            clone.import_state(snapshot)

    def test_export_before_initialize_rejected(self):
        engine = FIVMEngine(toy_count_query(), order=toy_variable_order())
        with pytest.raises(EngineError):
            engine.export_state()


class TestMemoryReport:
    def test_count_ring_weights(self):
        engine = fresh_engine()
        report = engine.memory_report()
        assert report["V_R"]["entries"] == 2
        assert report["V_R"]["payload_weight"] == 2
        assert report["V@A"]["entries"] == 1

    def test_index_overhead_reported(self):
        engine = fresh_engine()
        report = engine.memory_report()
        # V_R and V_S are each probed by the other's maintenance path on A.
        assert report["V_R"]["indexes"] == 1
        assert report["V_R"]["index_entries"] == report["V_R"]["entries"]
        assert report["V_R"]["index_buckets"] >= 1
        # The root is never probed, so it carries no index overhead keys.
        assert "indexes" not in report["V@A"]

    def test_no_index_overhead_when_disabled(self):
        engine = FIVMEngine(
            toy_count_query(), order=toy_variable_order(), use_view_index=False
        )
        engine.initialize(toy_database())
        report = engine.memory_report()
        assert all("indexes" not in entry for entry in report.values())

    def test_relational_cofactor_weights_count_annotations(self):
        engine = fresh_engine(toy_covar_categorical_query())
        report = engine.memory_report()
        root = report["V@A"]
        # one key, but the payload fans out into count + s entries + Q cells
        assert root["entries"] == 1
        assert root["payload_weight"] > 5

    def test_covers_every_view(self):
        engine = fresh_engine()
        assert set(engine.memory_report()) == {"V_R", "V_S", "V@A"}
