"""Long-run stress: hundreds of mixed batches, engines stay in lockstep.

Where the hypothesis suite covers breadth (random shapes), this covers
depth: a seeded 200-batch stream over the Retailer join, with periodic
cross-checks of F-IVM against full re-evaluation, view-size sanity and
delete-dominated phases that shrink the database back down.
"""

import pytest

from repro.datasets import (
    RetailerConfig,
    UpdateStream,
    generate_retailer,
    retailer_query,
    retailer_row_factories,
    retailer_variable_order,
)
from repro.engine import FIVMEngine, NaiveEngine
from repro.rings import CountSpec, CovarSpec, Feature

pytestmark = pytest.mark.slow

CONFIG = RetailerConfig(locations=5, dates=8, items=25, inventory_rows=300, seed=77)


def spec():
    return CovarSpec(
        (Feature.continuous("prize"), Feature.continuous("inventoryunits")),
        backend="numeric",
    )


@pytest.mark.parametrize(
    "payload_spec,tolerance",
    [(CountSpec(), None), (spec(), 1e-6)],
    ids=["count", "covar"],
)
def test_200_batches_with_periodic_crosscheck(payload_spec, tolerance):
    db = generate_retailer(CONFIG)
    order = retailer_variable_order()
    query = retailer_query(payload_spec)
    fivm = FIVMEngine(query, order=order)
    fivm.initialize(db)
    naive = NaiveEngine(query, order=order, refresh_on_apply=False)
    naive.initialize(db)
    stream = UpdateStream(
        db,
        retailer_row_factories(CONFIG, db),
        targets=("Inventory", "Weather"),
        batch_size=20,
        insert_ratio=0.6,
        seed=5,
    )
    for index, (name, delta) in enumerate(stream.batches(200)):
        fivm.apply(name, delta)
        naive.apply(name, delta)
        if index % 50 == 49:
            if tolerance is None:
                assert fivm.result() == naive.result(), f"diverged at batch {index}"
            else:
                assert fivm.result().close_to(
                    naive.result(), tolerance
                ), f"diverged at batch {index}"
    # Final state: the leaf view tracks the live shadow database exactly.
    expected_leaf = stream.shadow.relation("Inventory").lift(
        fivm.plan.ring,
        ("locn", "dateid", "ksn"),
        {
            attr: fivm.plan.lifts[attr]
            for attr in ("inventoryunits",)
            if attr in fivm.plan.lifts
        },
    )
    assert fivm.view("V_Inventory").close_to(expected_leaf, 1e-6)


def test_delete_phase_shrinks_views():
    """Insert-heavy phase then delete-only phase: view sizes must shrink
    back, and the result must track re-evaluation throughout."""
    db = generate_retailer(CONFIG)
    order = retailer_variable_order()
    query = retailer_query(CountSpec())
    engine = FIVMEngine(query, order=order)
    engine.initialize(db)
    grow = UpdateStream(
        db,
        retailer_row_factories(CONFIG, db),
        targets=("Inventory",),
        batch_size=50,
        insert_ratio=1.0,
        seed=9,
    )
    for name, delta in grow.batches(10):
        engine.apply(name, delta)
    grown_size = engine.stats.view_sizes["V_Inventory"]
    # delete-only stream continuing from the grown shadow state
    shrink = UpdateStream(
        grow.shadow,
        {},
        targets=("Inventory",),
        batch_size=50,
        insert_ratio=0.0,
        seed=10,
    )
    for name, delta in shrink.batches(10):
        engine.apply(name, delta)
    shrunk_size = engine.stats.view_sizes["V_Inventory"]
    assert shrunk_size < grown_size
    naive = NaiveEngine(query, order=order)
    naive.initialize(shrink.shadow)
    assert engine.result() == naive.result()
