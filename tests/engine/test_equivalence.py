"""The master invariant: all engines compute the same result.

Random databases and random insert/delete sequences; F-IVM, first-order
IVM and naive re-evaluation must agree with each other and with offline
recomputation — for the count ring exactly and for the COVAR ring up to
float tolerance. This is the paper's implicit correctness claim: the
maintenance strategy never changes the query semantics, only the cost.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Database, Relation, RelationSchema
from repro.engine import FIVMEngine, FirstOrderEngine, NaiveEngine, evaluate_tree
from repro.query import Query, plan_variable_order
from repro.rings import CountSpec, CovarSpec, Feature
from repro.viewtree import build_view_tree

R = RelationSchema("R", ("A", "B"))
S = RelationSchema("S", ("A", "C", "D"))
T = RelationSchema("T", ("C", "E"))

DOMAIN = 3


def rows(arity, max_rows=6):
    row = st.tuples(*[st.integers(0, DOMAIN - 1)] * arity)
    return st.lists(row, max_size=max_rows)


def database(r_rows, s_rows, t_rows):
    return Database(
        [
            Relation.from_tuples(R.attributes, r_rows, name="R"),
            Relation.from_tuples(S.attributes, s_rows, name="S"),
            Relation.from_tuples(T.attributes, t_rows, name="T"),
        ]
    )


# One update: (relation, rows, insert?) — deletes target rows that may or
# may not exist, so the generator re-checks liveness before deleting.
updates_strategy = st.lists(
    st.tuples(
        st.sampled_from(["R", "S", "T"]),
        st.integers(0, 5),  # row template index
        st.booleans(),
    ),
    max_size=10,
)

ROW_TEMPLATES = {
    "R": [(i % DOMAIN, (i + 1) % DOMAIN) for i in range(6)],
    "S": [(i % DOMAIN, (i + 2) % DOMAIN, i % DOMAIN) for i in range(6)],
    "T": [((i + 1) % DOMAIN, i % DOMAIN) for i in range(6)],
}


def make_engines(query, order):
    return [
        FIVMEngine(query, order=order),
        FirstOrderEngine(query, order=order),
        NaiveEngine(query, order=order),
    ]


def run_scenario(query, db, update_list, tolerance=None):
    order = plan_variable_order(query)
    engines = make_engines(query, order)
    shadow = db.copy()
    for engine in engines:
        engine.initialize(db)
    for name, template_index, is_insert in update_list:
        row = ROW_TEMPLATES[name][template_index]
        schema = shadow.relation(name).schema
        delta = Relation(schema, name=name)
        if is_insert:
            delta.data[row] = 1
        else:
            if shadow.relation(name).data.get(row, 0) <= 0:
                continue  # nothing to delete
            delta.data[row] = -1
        shadow.apply(name, delta)
        for engine in engines:
            engine.apply(name, delta)
    # offline recomputation over the final database state
    tree = build_view_tree(query, order=order, plan=engines[0].plan)
    offline = evaluate_tree(
        tree, {name: shadow.relation(name) for name in query.relation_names}
    )
    reference = engines[0].result()
    for engine in engines[1:]:
        if tolerance is None:
            assert reference == engine.result(), engine.strategy
        else:
            assert reference.close_to(engine.result(), tolerance), engine.strategy
    if tolerance is None:
        assert reference == offline
    else:
        assert reference.close_to(offline, tolerance)


@given(rows(2), rows(3), rows(2), updates_strategy)
def test_count_engines_agree(r_rows, s_rows, t_rows, update_list):
    query = Query("Q", (R, S, T), spec=CountSpec())
    run_scenario(query, database(r_rows, s_rows, t_rows), update_list)


@given(rows(2), rows(3), rows(2), updates_strategy)
def test_covar_engines_agree(r_rows, s_rows, t_rows, update_list):
    spec = CovarSpec(
        (Feature.continuous("B"), Feature.continuous("D"), Feature.continuous("E"))
    )
    query = Query("Q", (R, S, T), spec=spec)
    run_scenario(query, database(r_rows, s_rows, t_rows), update_list, tolerance=1e-7)


@given(rows(2), rows(3), rows(2), updates_strategy)
def test_categorical_covar_engines_agree(r_rows, s_rows, t_rows, update_list):
    spec = CovarSpec(
        (Feature.categorical("B"), Feature.continuous("D"), Feature.categorical("E"))
    )
    query = Query("Q", (R, S, T), spec=spec)
    run_scenario(query, database(r_rows, s_rows, t_rows), update_list, tolerance=1e-7)


@given(rows(2), rows(3), updates_strategy)
def test_group_by_query_engines_agree(r_rows, s_rows, update_list):
    """Free variables: result keyed by A."""
    query = Query("Q", (R, S), spec=CountSpec(), free=("A",))
    update_list = [u for u in update_list if u[0] != "T"]
    db = Database(
        [
            Relation.from_tuples(R.attributes, r_rows, name="R"),
            Relation.from_tuples(S.attributes, s_rows, name="S"),
        ]
    )
    order = plan_variable_order(query)
    engines = make_engines(query, order)
    shadow = db.copy()
    for engine in engines:
        engine.initialize(db)
    for name, template_index, is_insert in update_list:
        row = ROW_TEMPLATES[name][template_index]
        delta = Relation(shadow.relation(name).schema, name=name)
        if is_insert:
            delta.data[row] = 1
        elif shadow.relation(name).data.get(row, 0) > 0:
            delta.data[row] = -1
        else:
            continue
        shadow.apply(name, delta)
        for engine in engines:
            engine.apply(name, delta)
    reference = engines[0].result()
    for engine in engines[1:]:
        assert reference == engine.result(), engine.strategy


@settings(max_examples=10)
@given(rows(2, 8), rows(3, 8))
def test_cyclic_query_engines_agree(r_rows, s_rows):
    """Triangle query: views get larger keys but semantics must hold."""
    u = RelationSchema("U", ("B", "C"))
    query = Query(
        "Tri",
        (R, RelationSchema("S2", ("A", "C")), u),
        spec=CountSpec(),
    )
    db = Database(
        [
            Relation.from_tuples(("A", "B"), r_rows, name="R"),
            Relation.from_tuples(("A", "C"), [(a, c) for a, c, _ in s_rows], name="S2"),
            Relation.from_tuples(("B", "C"), [(b, c) for _, b, c in s_rows], name="U"),
        ]
    )
    order = plan_variable_order(query)
    engines = make_engines(query, order)
    for engine in engines:
        engine.initialize(db)
    delta = Relation(("A", "B"), name="R")
    delta.data[(0, 0)] = 1
    for engine in engines:
        engine.apply("R", delta)
    reference = engines[0].result()
    for engine in engines[1:]:
        assert reference == engine.result(), engine.strategy
