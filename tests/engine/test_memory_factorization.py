"""The factorization claim (Section 1).

"F-IVM can maintain model gradients over a join faster than maintaining
the join, since the latter may be much larger and have many repeating
values." — the engine's entire materialized state (views + compound
payloads) must be much smaller than the listing representation of the
join it summarizes.
"""


from repro.datasets import (
    RetailerConfig,
    generate_retailer,
    retailer_query,
    retailer_variable_order,
)
from repro.engine import FIVMEngine
from repro.rings import CovarSpec, Feature

CONFIG = RetailerConfig(locations=6, dates=10, items=40, inventory_rows=800, seed=31)


def join_listing_cells(db):
    """Rows x columns of the materialized 5-way join (bag semantics)."""
    joined = db.relation("Inventory")
    for name in ("Item", "Weather", "Location", "Census"):
        joined = joined.join(db.relation(name))
    rows = sum(joined.data.values())
    return rows, rows * len(joined.schema)


class TestFactorizedStateSize:
    def test_view_state_smaller_than_join_listing(self):
        db = generate_retailer(CONFIG)
        spec = CovarSpec(
            (
                Feature.continuous("prize"),
                Feature.continuous("inventoryunits"),
                Feature.continuous("population"),
            ),
            backend="numeric",
        )
        engine = FIVMEngine(retailer_query(spec), order=retailer_variable_order())
        engine.initialize(db)
        join_rows, join_cells = join_listing_cells(db)
        report = engine.memory_report()
        total_weight = sum(view["payload_weight"] for view in report.values())
        total_entries = sum(view["entries"] for view in report.values())
        # 43-attribute join listing vs factorized views with compound payloads
        assert total_entries < join_rows * 2
        assert total_weight < join_cells / 2
        # and the gradient state at the root is a single compound payload
        assert report[engine.tree.root.name]["entries"] == 1

    def test_root_gradient_state_constant_under_growth(self):
        """The gradient (COVAR) state does not grow with the data — only
        the keyed views do."""
        db = generate_retailer(CONFIG)
        spec = CovarSpec(
            (Feature.continuous("prize"), Feature.continuous("inventoryunits")),
            backend="numeric",
        )
        engine = FIVMEngine(retailer_query(spec), order=retailer_variable_order())
        engine.initialize(db)
        root = engine.tree.root.name
        before = engine.memory_report()[root]
        from repro.datasets import UpdateStream, retailer_row_factories

        stream = UpdateStream(
            db,
            retailer_row_factories(CONFIG, db),
            targets=("Inventory",),
            batch_size=200,
            insert_ratio=1.0,
            seed=4,
        )
        for name, delta in stream.batches(3):
            engine.apply(name, delta)
        after = engine.memory_report()[root]
        assert after["entries"] == before["entries"] == 1
        assert after["payload_weight"] == before["payload_weight"]
