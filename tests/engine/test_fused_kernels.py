"""Fused per-path kernels: bit-equality, mirrors, JIT gating, checkpoints.

The fused ladder (:mod:`repro.engine.compile`) promises *bit-equal*
results to the interpreted columnar ladder and the per-tuple path — not
merely numerically close — because it replays the exact same float
summation orders. These tests sweep rings, batch sizes and delete-heavy
cancellation streams against that promise, and pin down the supporting
invariants: columnar mirrors can never serve stale state, the numba
backend is a pure speed knob behind ``REPRO_JIT``, and fused counters
survive checkpoint round-trips.
"""

import os
import pickle
from unittest import mock

import numpy as np
import pytest

from repro.data import Relation, inserts
from repro.data.index import IndexedRelation
from repro.datasets import (
    RetailerConfig,
    UpdateStream,
    continuous_covar_features,
    generate_retailer,
    retailer_query,
    retailer_row_factories,
    retailer_variable_order,
    toy_count_query,
    toy_database,
    toy_variable_order,
)
from repro.engine import FIVMEngine
from repro.engine.compile import (
    _expand_pairs,
    _group_rows,
    _Scratch,
    compile_fused_path,
    jit_kernels,
)
from repro.rings import CountSpec, CovarSpec
from repro.rings.cofactor import CofactorLayout, NumericCofactorRing
from repro.config import EngineConfig

R_SCHEMA = ("A", "B")


def covar_query(limit=2):
    return retailer_query(
        CovarSpec(continuous_covar_features(limit=limit), backend="numeric")
    )


def retailer_setup(seed=11, inventory_rows=300, insert_ratio=0.5):
    config = RetailerConfig(
        locations=4, dates=6, items=20, inventory_rows=inventory_rows, seed=seed
    )
    database = generate_retailer(config)
    stream = UpdateStream(
        database,
        retailer_row_factories(config, database),
        targets=("Inventory",),
        batch_size=64,
        insert_ratio=insert_ratio,
        seed=seed,
    )
    return database, stream


def payloads_identical(a, b):
    """Bit-for-bit payload equality (never ``close_to``)."""
    if hasattr(a, "c"):
        return (
            a.c == b.c and bool((a.s == b.s).all()) and bool((a.q == b.q).all())
        )
    return a == b


def assert_views_bit_equal(fused, reference):
    assert fused.materialized.keys() == reference.materialized.keys()
    for name, view in fused.materialized.items():
        ref = reference.materialized[name]
        assert list(view.data.keys()) == list(ref.data.keys()), name
        for key, payload in view.data.items():
            assert payloads_identical(payload, ref.data[key]), (name, key)


class TestFusedBitEquality:
    """Fused vs interpreted vs per-tuple across rings and batch sizes."""

    @pytest.mark.parametrize("batch_size", (16, 100, 500))
    @pytest.mark.parametrize(
        "query_ring",
        ("covar", "count"),
    )
    def test_stream_sweep(self, query_ring, batch_size):
        database, stream = retailer_setup()
        events = list(stream.tuples(800))
        query_of = covar_query if query_ring == "covar" else (
            lambda: retailer_query(CountSpec())
        )
        engines = {}
        for mode, kwargs in (
            ("fused", {}),
            ("interpreted", {"use_fused": False, "use_columnar": True}),
            ("per_tuple", {"use_fused": False, "use_columnar": False}),
        ):
            engine = FIVMEngine(
                query_of(),
                order=retailer_variable_order(),
                config=EngineConfig(**kwargs),
            )
            engine.initialize(database)
            engine.apply_stream(iter(events), batch_size=batch_size)
            engines[mode] = engine
        if batch_size >= 100:
            assert engines["fused"].stats.fused_batches > 0
        assert engines["fused"].stats.fused_batches == (
            engines["fused"].stats.columnar_batches
        )
        assert engines["interpreted"].stats.fused_batches == 0
        assert_views_bit_equal(engines["fused"], engines["interpreted"])
        assert_views_bit_equal(engines["fused"], engines["per_tuple"])
        # Shared maintenance counters replay identically on the
        # interpreted ladder (per-tuple takes different probe shapes).
        fused, interp = engines["fused"].stats, engines["interpreted"].stats
        assert fused.index_probes == interp.index_probes
        assert fused.index_hits == interp.index_hits
        assert fused.delta_tuples_propagated == interp.delta_tuples_propagated

    def test_delete_heavy_cancellation(self):
        """Insert-then-delete streams cancel to the exact same views."""
        database, stream = retailer_setup(insert_ratio=0.2)
        warm = list(stream.tuples(400))
        fused = FIVMEngine(covar_query(), order=retailer_variable_order())
        interp = FIVMEngine(
            covar_query(),
            order=retailer_variable_order(),
            config=EngineConfig(use_fused=False, use_columnar=True),
        )
        for engine in (fused, interp):
            engine.initialize(database)
            engine.apply_stream(iter(warm), batch_size=128)
        assert fused.stats.fused_batches > 0
        assert_views_bit_equal(fused, interp)

    def test_exact_insert_delete_annihilation(self):
        """+row then -row in separate batches leaves no residue."""
        engine = FIVMEngine(toy_count_query(), order=toy_variable_order())
        engine.initialize(toy_database())
        rows = [(f"a{i}", i) for i in range(40)]
        before = {
            name: dict(view.data)
            for name, view in engine.materialized.items()
        }
        engine.apply("R", inserts(R_SCHEMA, rows))
        delta = inserts(R_SCHEMA, rows)
        engine.apply("R", delta.neg())
        assert engine.stats.fused_batches == 2
        for name, view in engine.materialized.items():
            assert view.data == before[name], name


class TestColumnarMirror:
    """A stale mirror can never serve a probe."""

    def ring(self):
        return NumericCofactorRing(CofactorLayout(("x",)))

    def indexed(self):
        ring = self.ring()
        rel = IndexedRelation(("A", "B"), ring)
        block = ring.make_block(
            [ring.lift(0, float(v)) for v in (1.0, 2.0, 3.0)]
        )
        rel.add_block_inplace([(1, 10), (2, 20), (2, 21)], block)
        return ring, rel, rel.ensure_index(("A",))

    def test_mirror_layout_matches_buckets(self):
        ring, rel, index = self.indexed()
        mirror = index.columnar_mirror(ring, 2)
        assert index.mirror is mirror
        assert len(mirror.starts) == len(index.buckets)
        total = 0
        for b, (hook, bucket) in enumerate(index.buckets.items()):
            assert mirror.hook_cols[0][b] == hook
            start, count = mirror.starts[b], mirror.counts[b]
            assert count == len(bucket)
            assert [
                tuple(col[i] for col in mirror.key_cols)
                for i in range(start, start + count)
            ] == list(bucket.keys())
            total += count
        assert total == ring.block_size(mirror.block)

    @pytest.mark.parametrize(
        "mutate",
        (
            "add_inplace",
            "add_block_inplace",
            "index_set",
            "index_discard",
            "index_build",
        ),
    )
    def test_every_mutation_drops_the_mirror(self, mutate):
        ring, rel, index = self.indexed()
        index.columnar_mirror(ring, 2)
        assert index.mirror is not None
        payload = ring.lift(0, 5.0)
        if mutate == "add_inplace":
            other = Relation(("A", "B"), ring)
            other.data = {(9, 90): payload}
            rel.add_inplace(other)
        elif mutate == "add_block_inplace":
            rel.add_block_inplace([(9, 90)], ring.make_block([payload]))
        elif mutate == "index_set":
            index.set((9, 90), payload)
        elif mutate == "index_discard":
            index.discard((1, 10))
        else:
            index.build(rel.data)
        assert index.mirror is None, f"{mutate} left a stale mirror"

    def test_add_inplace_drops_columnar_cache(self):
        """Regression: the indexed add_inplace branch bypassed the base
        class and left ``Relation.columnar()``'s cache stale."""
        rel = IndexedRelation(("A", "B"))  # default Z multiplicities
        rel.data = {(1, 10): 2, (2, 20): 1}
        rel.ensure_index(("A",))
        first = rel.columnar()
        other = Relation(("A", "B"))
        other.data = {(7, 70): 3}
        rel.add_inplace(other)
        refreshed = rel.columnar()
        assert refreshed is not first
        assert len(refreshed.counts) == len(rel.data)

    def test_stale_mirror_never_reaches_a_fused_probe(self):
        """End to end: mutate a sibling between fused batches and check
        the next batch probes the *new* contents."""
        engine = FIVMEngine(toy_count_query(), order=toy_variable_order())
        engine.initialize(toy_database())
        rows = [(f"b{i}", i) for i in range(20)]
        engine.apply("R", inserts(R_SCHEMA, rows))
        oracle = FIVMEngine(
            toy_count_query(),
            order=toy_variable_order(),
            config=EngineConfig(use_fused=False, use_columnar=False),
        )
        oracle.initialize(toy_database())
        oracle.apply("R", inserts(R_SCHEMA, rows))
        # Mutate S (the sibling view side) then push R rows again: the R
        # path probes V_S, whose mirror must have been invalidated.
        s_rows = [("b1", 1, 1), ("b2", 2, 2)]
        engine.apply("S", inserts(("A", "C", "D"), s_rows))
        oracle.apply("S", inserts(("A", "C", "D"), s_rows))
        more = [(f"b{i}", i + 100) for i in range(30)]
        engine.apply("R", inserts(R_SCHEMA, more))
        oracle.apply("R", inserts(R_SCHEMA, more))
        assert engine.stats.fused_batches >= 2
        assert_views_bit_equal(engine, oracle)
        assert engine.result() == oracle.result()


class TestGroupingKernels:
    def test_first_seen_order_matches_dict_pass(self):
        rng = np.random.default_rng(3)
        cols = [
            np.asarray(rng.integers(0, 7, size=200)),
            np.asarray(rng.integers(0, 5, size=200)),
        ]
        gids, reps = _group_rows(cols, 200, _Scratch())
        seen = {}
        for i, row in enumerate(zip(cols[0].tolist(), cols[1].tolist())):
            expected = seen.setdefault(row, len(seen))
            assert gids[i] == expected
        assert [
            (cols[0][r], cols[1][r]) for r in reps.tolist()
        ] == list(seen.keys())

    def test_object_columns_take_dict_encoding(self):
        from repro.data.columnar import column_array

        cols = [column_array([("t", 1), ("t", 2), ("t", 1)])]
        assert cols[0].dtype.kind == "O"
        gids, reps = _group_rows(cols, 3, _Scratch())
        assert gids.tolist() == [0, 1, 0]
        assert reps.tolist() == [0, 1]

    def test_expand_pairs_order(self):
        members = np.asarray([3, 0, 2, 1], dtype=np.intp)  # two groups
        left, right = _expand_pairs(
            members,
            np.asarray([0, 2], dtype=np.intp),
            np.asarray([2, 2], dtype=np.intp),
            np.asarray([5, 9], dtype=np.intp),
            np.asarray([2, 1], dtype=np.intp),
        )
        # Group 0: entries 5,6 outer x members 3,0 inner; group 1: entry 9.
        assert left.tolist() == [3, 0, 3, 0, 2, 1]
        assert right.tolist() == [5, 5, 6, 6, 9, 9]


class TestJITGate:
    def test_disabled_without_env(self):
        with mock.patch.dict(os.environ, {}, clear=False):
            os.environ.pop("REPRO_JIT", None)
            from repro.engine import compile as compile_mod

            compile_mod._JIT_CACHE.clear()
            assert jit_kernels() is None
            compile_mod._JIT_CACHE.clear()

    def test_degrades_silently_when_numba_missing(self):
        """REPRO_JIT=1 without numba must fall back to numpy, not raise."""
        from repro.engine import compile as compile_mod

        compile_mod._JIT_CACHE.clear()
        with mock.patch.dict(os.environ, {"REPRO_JIT": "1"}):
            kernels = jit_kernels()
            has_numba = True
            try:
                import numba  # noqa: F401
            except ImportError:
                has_numba = False
            if has_numba:
                assert kernels is not None
            else:
                assert kernels is None
        compile_mod._JIT_CACHE.clear()

    def test_jit_expand_matches_numpy(self):
        pytest.importorskip("numba")
        from repro.engine import compile as compile_mod

        compile_mod._JIT_CACHE.clear()
        members = np.arange(6, dtype=np.intp)[::-1].copy()
        args = (
            members,
            np.asarray([0, 3], dtype=np.intp),
            np.asarray([3, 3], dtype=np.intp),
            np.asarray([2, 7], dtype=np.intp),
            np.asarray([2, 3], dtype=np.intp),
        )
        plain = _expand_pairs(*args)
        with mock.patch.dict(os.environ, {"REPRO_JIT": "1"}):
            jitted = _expand_pairs(*args)
        compile_mod._JIT_CACHE.clear()
        assert plain[0].tolist() == jitted[0].tolist()
        assert plain[1].tolist() == jitted[1].tolist()


class TestCheckpointRoundTrip:
    def test_fused_counters_survive_snapshot(self):
        database, stream = retailer_setup()
        events = list(stream.tuples(600))
        engine = FIVMEngine(covar_query(), order=retailer_variable_order())
        engine.initialize(database)
        engine.apply_stream(iter(events[:300]), batch_size=100)
        assert engine.stats.fused_batches > 0
        snapshot = pickle.loads(pickle.dumps(engine.export_state()))
        clone = FIVMEngine(covar_query(), order=retailer_variable_order())
        clone.import_state(snapshot)
        for field in (
            "fused_batches",
            "fused_steps",
            "mirror_hits",
            "mirror_builds",
            "mirror_invalidations",
        ):
            assert getattr(clone.stats, field) == getattr(
                engine.stats, field
            ), field
        engine.apply_stream(iter(events[300:]), batch_size=100)
        clone.apply_stream(iter(events[300:]), batch_size=100)
        assert_views_bit_equal(clone, engine)
        assert clone.stats.fused_batches == engine.stats.fused_batches

    def test_restored_engine_keeps_fused_paths(self):
        engine = FIVMEngine(toy_count_query(), order=toy_variable_order())
        engine.initialize(toy_database())
        clone = FIVMEngine(toy_count_query(), order=toy_variable_order())
        clone.import_state(engine.export_state())
        assert set(clone._fused_paths) == set(engine._fused_paths)
        assert all(
            compile_fused_path(clone, name) is not None
            for name in clone._fused_paths
        )
