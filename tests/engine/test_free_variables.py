"""Group-by (free-variable) queries through hand-crafted variable orders.

Free variables are never marginalized; views above them carry them as
extra keys. These tests exercise the carried-key machinery beyond the
planner's free-at-the-top orders: free variables *below* bound variables
and free variables spread across branches.
"""


from repro.data import Database, Relation, RelationSchema, delta_of, inserts
from repro.engine import FIVMEngine, NaiveEngine
from repro.query import Query, VONode, VariableOrder
from repro.rings import CountSpec, CovarSpec, Feature
from repro.viewtree import build_view_tree

R = RelationSchema("R", ("A", "B"))
S = RelationSchema("S", ("A", "C"))


def db():
    return Database(
        [
            Relation.from_tuples(
                ("A", "B"), [(0, 10), (0, 11), (1, 10), (1, 12)], name="R"
            ),
            Relation.from_tuples(
                ("A", "C"), [(0, 7), (0, 8), (1, 7), (2, 9)], name="S"
            ),
        ]
    )


def order_free_below():
    """A at the root (bound), B below it (free): V@B's key is (A, B) and
    V@A must carry B upward while marginalizing A."""
    return VariableOrder(
        [
            VONode(
                "A",
                children=(
                    VONode("B", relations=("R",)),
                    VONode("C", relations=("S",)),
                ),
            )
        ]
    )


class TestFreeBelowBound:
    def test_tree_keys_carry_free_vars(self):
        query = Query("Q", (R, S), spec=CountSpec(), free=("B",))
        tree = build_view_tree(query, order_free_below())
        assert tree.views["V@B"].key == ("A", "B")
        assert tree.views["V@B"].is_free
        assert tree.views["V@C"].key == ("A",)
        assert tree.views["V@A"].key == ("B",)

    def test_initial_result_matches_direct_groupby(self):
        query = Query("Q", (R, S), spec=CountSpec(), free=("B",))
        engine = FIVMEngine(query, order=order_free_below())
        engine.initialize(db())
        joined = db().relation("R").join(db().relation("S"))
        expected = joined.marginalize(("B",))
        assert engine.result() == expected

    def test_maintenance_under_mixed_updates(self):
        query = Query("Q", (R, S), spec=CountSpec(), free=("B",))
        fivm = FIVMEngine(query, order=order_free_below())
        naive = NaiveEngine(query, order=order_free_below())
        database = db()
        fivm.initialize(database)
        naive.initialize(database)
        updates = [
            ("R", inserts(("A", "B"), [(2, 13)])),          # new B group
            ("S", inserts(("A", "C"), [(2, 7)])),            # activates it
            ("R", delta_of(("A", "B"), deleted=[(0, 10)])),  # shrink a group
        ]
        for name, delta in updates:
            fivm.apply(name, delta)
            naive.apply(name, delta)
            assert fivm.result() == naive.result(), name

    def test_group_disappears_on_delete(self):
        query = Query("Q", (R, S), spec=CountSpec(), free=("B",))
        engine = FIVMEngine(query, order=order_free_below())
        engine.initialize(db())
        assert engine.result().payload((12,)) == 1  # (1,12) x (1,7)
        engine.apply("R", delta_of(("A", "B"), deleted=[(1, 12)]))
        assert (12,) not in engine.result().data


class TestFreeAcrossBranches:
    def test_two_free_vars_in_different_branches(self):
        query = Query("Q", (R, S), spec=CountSpec(), free=("B", "C"))
        order = VariableOrder(
            [
                VONode(
                    "A",
                    children=(
                        VONode("B", relations=("R",)),
                        VONode("C", relations=("S",)),
                    ),
                )
            ]
        )
        fivm = FIVMEngine(query, order=order)
        fivm.initialize(db())
        joined = db().relation("R").join(db().relation("S"))
        expected = joined.marginalize(("B", "C"))
        assert fivm.result() == expected
        # maintenance keeps per-(B,C) counts in lockstep with recompute
        naive = NaiveEngine(query, order=order)
        naive.initialize(db())
        delta = inserts(("A", "C"), [(0, 7), (1, 9)])
        fivm.apply("S", delta)
        naive.apply("S", delta)
        assert fivm.result() == naive.result()


class TestFreeWithCovarPayload:
    def test_covar_grouped_by_free_var(self):
        """COVAR per B-group: compound payloads under group-by keys."""
        spec = CovarSpec((Feature.continuous("C"),), backend="numeric")
        query = Query("Q", (R, S), spec=spec, free=("B",))
        engine = FIVMEngine(query, order=order_free_below())
        engine.initialize(db())
        payload = engine.result().payload((10,))
        # B=10 joins A∈{0,1}: C values 7, 8 (A=0) and 7 (A=1)
        assert payload.c == 3.0
        assert payload.s[0] == 22.0
        assert payload.q[0, 0] == 7.0**2 + 8.0**2 + 7.0**2
