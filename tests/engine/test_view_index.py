"""The view-index subsystem: probe plans, O(delta) maintenance, ablation."""

import pytest

from repro.data import IndexedRelation, deletes, inserts
from repro.data.delta import delta_of
from repro.datasets import (
    RetailerConfig,
    UpdateStream,
    generate_retailer,
    retailer_query,
    retailer_row_factories,
    retailer_variable_order,
    toy_count_query,
    toy_covar_categorical_query,
    toy_database,
    toy_variable_order,
)
from repro.data.database import Database
from repro.data.relation import Relation
from repro.data.schema import RelationSchema
from repro.engine import FIVMEngine, NaiveEngine
from repro.query.query import Query
from repro.query.variable_order import VariableOrder, VONode
from repro.rings import CountSpec
from repro.viewtree import build_probe_plan
from repro.config import EngineConfig

R_SCHEMA = ("A", "B")
S_SCHEMA = ("A", "C", "D")


def toy_engines():
    """Fresh toy engines with indexes on and off, plus a naive oracle."""
    engines = []
    for flag in (True, False):
        engine = FIVMEngine(
            toy_count_query(),
            order=toy_variable_order(),
            config=EngineConfig(use_view_index=flag),
        )
        engine.initialize(toy_database())
        engines.append(engine)
    oracle = NaiveEngine(toy_count_query(), order=toy_variable_order())
    oracle.initialize(toy_database())
    return engines[0], engines[1], oracle


def retailer_setup(seed=5):
    config = RetailerConfig(
        locations=4, dates=6, items=20, inventory_rows=200, seed=seed
    )
    database = generate_retailer(config)
    stream = UpdateStream(
        database,
        retailer_row_factories(config, database),
        targets=("Inventory",),
        batch_size=50,
        insert_ratio=0.7,
        seed=seed,
    )
    return database, stream


class TestProbePlan:
    def test_toy_plan_indexes_both_siblings_on_join_variable(self):
        tree = FIVMEngine(toy_count_query(), order=toy_variable_order()).tree
        plan = build_probe_plan(tree)
        assert plan.index_specs == {"V_R": (("A",),), "V_S": (("A",),)}
        (steps,) = plan.path_steps["R"]
        assert [(s.sibling, s.attrs) for s in steps] == [("V_S", ("A",))]

    def test_retailer_plan_covers_every_inner_view_on_each_path(self):
        engine = FIVMEngine(
            retailer_query(CountSpec()), order=retailer_variable_order()
        )
        plan = engine.probe_plan
        for name in engine.query.relation_names:
            path = engine.tree.path_to_root(name)
            assert len(plan.path_steps[name]) == len(path) - 1
        # Every probed attribute tuple is an index spec on that sibling.
        for per_view in plan.path_steps.values():
            for steps in per_view:
                for step in steps:
                    assert step.attrs in plan.index_specs[step.sibling]

    def test_probed_views_are_wrapped_with_lazy_indexes(self):
        engine, _plain, _oracle = toy_engines()
        for name, specs in engine.probe_plan.index_specs.items():
            view = engine.materialized[name]
            assert isinstance(view, IndexedRelation)
            # Lazy materialization: specs registered, nothing built yet.
            assert not view.indexes
            assert view.pending == set(specs)
        # The root is probed by nobody and stays a plain relation.
        assert not isinstance(
            engine.materialized[engine.tree.root.name], IndexedRelation
        )

    def test_indexes_materialize_on_first_probe_only(self):
        """Indexes stay absent until a maintenance path actually probes.

        An update to R probes V_S (the sibling) on A and must build
        exactly that index; V_R's own registered index stays pending —
        nothing probed it — so R-only streams pay no V_R index
        maintenance at all. Results are unchanged throughout.
        """
        engine, _plain, oracle = toy_engines()
        delta = inserts(R_SCHEMA, [("a1", 1)])
        engine.apply("R", delta)
        oracle.apply("R", delta)
        v_s = engine.materialized["V_S"]
        v_r = engine.materialized["V_R"]
        assert set(v_s.indexes) == {("A",)} and not v_s.pending
        assert not v_r.indexes and v_r.pending == {("A",)}
        assert engine.result() == oracle.result()
        # The reverse direction materializes V_R's index on first probe.
        delta = inserts(S_SCHEMA, [("a1", 2, 2)])
        engine.apply("S", delta)
        oracle.apply("S", delta)
        assert set(v_r.indexes) == {("A",)} and not v_r.pending
        assert v_r.index_on(("A",)).entry_count() == len(v_r)
        assert engine.result() == oracle.result()


class TestIndexedMaintenance:
    def test_indexed_and_scan_paths_agree_with_oracle(self):
        indexed_e, plain_e, oracle = toy_engines()
        steps = [
            ("R", inserts(R_SCHEMA, [("a1", 5), ("a9", 9)])),
            ("S", inserts(S_SCHEMA, [("a9", 1, 2), ("a1", 3, 3)])),
            ("R", deletes(R_SCHEMA, [("a1", 1)])),
            ("S", delta_of(S_SCHEMA, deleted=[("a1", 1, 1)])),
            ("R", deletes(R_SCHEMA, [("a9", 9)])),
        ]
        for name, delta in steps:
            for engine in (indexed_e, plain_e, oracle):
                engine.apply(name, delta)
            assert indexed_e.result() == oracle.result()
            assert plain_e.result() == oracle.result()

    def test_index_counters_advance_only_when_enabled(self):
        indexed_e, plain_e, _oracle = toy_engines()
        delta = inserts(R_SCHEMA, [("a1", 1)])
        indexed_e.apply("R", delta)
        plain_e.apply("R", delta)
        assert indexed_e.stats.index_probes > 0
        assert indexed_e.stats.index_hits > 0
        assert indexed_e.stats.index_hits <= indexed_e.stats.index_probes
        assert plain_e.stats.index_probes == 0
        snapshot = indexed_e.stats.snapshot()
        assert snapshot["index_probes"] == indexed_e.stats.index_probes

    def test_cancellation_stream_returns_views_and_indexes_to_start(self):
        engine, _plain, _oracle = toy_engines()
        before = {name: dict(v.data) for name, v in engine.materialized.items()}
        rows = [("a1", 77), ("a8", 8), ("a9", 9)]
        engine.apply("R", inserts(R_SCHEMA, rows))
        engine.apply("R", deletes(R_SCHEMA, rows[:1]))
        engine.apply("R", deletes(R_SCHEMA, rows[1:]))
        for name, data in before.items():
            view = engine.materialized[name]
            assert view.data == data
            if isinstance(view, IndexedRelation):
                for index in view.indexes.values():
                    assert index.entry_count() == len(view)

    def test_view_sizes_track_touched_path_only(self):
        engine, _plain, _oracle = toy_engines()
        engine.apply("R", inserts(R_SCHEMA, [("a7", 7)]))
        engine.apply("S", inserts(S_SCHEMA, [("a7", 1, 1), ("a1", 9, 9)]))
        assert engine.stats.view_sizes == {
            name: len(view) for name, view in engine.materialized.items()
        }

    def test_batched_vs_unbatched_with_indexes_on_and_off(self):
        database, stream = retailer_setup()
        events = list(stream.tuples(400))
        query = retailer_query(CountSpec())
        order = retailer_variable_order()
        results = []
        for flag in (True, False):
            for batch_size in (1, 64):
                engine = FIVMEngine(query, order=order, config=EngineConfig(use_view_index=flag))
                engine.initialize(database)
                engine.apply_stream(iter(events), batch_size=batch_size)
                results.append(engine.result())
        assert all(result == results[0] for result in results[1:])

    @pytest.mark.parametrize("use_view_index", (True, False))
    def test_delta_annihilated_mid_join_at_three_child_node(self, use_view_index):
        """A delta emptied by one sibling at a 3-child node must stop cleanly.

        V@A joins V_R, V_S and V@D, and its key D comes only from V@D —
        so when a δR finds no match in V_S, the partial join does not
        carry D yet and marginalizing it would raise. Regression test:
        propagation must stop without error and without corrupting views.
        """
        query = Query(
            "Q3",
            (
                RelationSchema("R", ("A", "B")),
                RelationSchema("S", ("A", "C")),
                RelationSchema("T", ("A", "D")),
            ),
            spec=CountSpec(),
            free=("D",),
        )
        order = VariableOrder(
            [VONode("A", relations=("R", "S"), children=[VONode("D", relations=("T",))])]
        )
        database = Database(
            [
                Relation(("A", "B"), name="R"),
                Relation(("A", "C"), name="S"),
                Relation.from_tuples(("A", "D"), [("a1", 7)], name="T"),
            ]
        )
        engine = FIVMEngine(
            query,
            order=order,
            config=EngineConfig(use_view_index=use_view_index),
        )
        engine.initialize(database)
        oracle = NaiveEngine(query, order=order)
        oracle.initialize(database)
        steps = [
            ("R", inserts(("A", "B"), [("a1", 5)])),  # no match in empty S
            ("S", inserts(("A", "C"), [("a1", 3)])),  # now the join completes
            ("S", deletes(("A", "C"), [("a1", 3)])),  # and annihilates again
        ]
        for name, delta in steps:
            engine.apply(name, delta)
            oracle.apply(name, delta)
            assert engine.result() == oracle.result()

    def test_nonscalar_ring_maintenance_with_indexes(self):
        query = toy_covar_categorical_query()
        indexed_e = FIVMEngine(query, order=toy_variable_order())
        plain_e = FIVMEngine(
            query,
            order=toy_variable_order(),
            config=EngineConfig(use_view_index=False),
        )
        for engine in (indexed_e, plain_e):
            engine.initialize(toy_database())
        steps = [
            ("R", inserts(R_SCHEMA, [("a1", 4), ("a5", 5)])),
            ("S", inserts(S_SCHEMA, [("a5", 2, 2)])),
            ("R", deletes(R_SCHEMA, [("a5", 5)])),
        ]
        for name, delta in steps:
            indexed_e.apply(name, delta)
            plain_e.apply(name, delta)
        assert indexed_e.result().close_to(plain_e.result(), 1e-9)


class TestCheckpointWithIndexes:
    def snapshot_roundtrip(self, use_view_index):
        engine = FIVMEngine(
            toy_count_query(),
            order=toy_variable_order(),
            config=EngineConfig(use_view_index=use_view_index),
        )
        engine.initialize(toy_database())
        engine.apply("R", inserts(R_SCHEMA, [("a1", 5)]))
        snapshot = engine.export_state()
        clone = FIVMEngine(
            toy_count_query(),
            order=toy_variable_order(),
            config=EngineConfig(use_view_index=use_view_index),
        )
        clone.import_state(snapshot)
        return engine, clone

    @pytest.mark.parametrize("use_view_index", (True, False))
    def test_roundtrip_result_and_continued_maintenance(self, use_view_index):
        engine, clone = self.snapshot_roundtrip(use_view_index)
        assert clone.result() == engine.result()
        delta = delta_of(S_SCHEMA, inserted=[("a1", 8, 8)], deleted=[("a1", 1, 1)])
        engine.apply("S", delta)
        clone.apply("S", delta)
        assert clone.result() == engine.result()

    def test_indexes_registered_after_import(self):
        engine, clone = self.snapshot_roundtrip(True)
        for name, specs in clone.probe_plan.index_specs.items():
            view = clone.materialized[name]
            assert isinstance(view, IndexedRelation)
            for attrs in specs:
                # Registered lazily on restore; first probe materializes
                # a consistent index over the restored entries.
                assert attrs in view.pending
                index = view.ensure_index(attrs)
                assert index.entry_count() == len(view)

    def test_import_drops_ring_zero_payloads(self):
        engine, _clone = self.snapshot_roundtrip(True)
        snapshot = engine.export_state()
        snapshot["views"]["V_R"][("parked",)] = 0  # a parked cancellation
        clone = FIVMEngine(toy_count_query(), order=toy_variable_order())
        clone.import_state(snapshot)
        assert ("parked",) not in clone.view("V_R").data
        assert clone.stats.view_sizes["V_R"] == len(clone.view("V_R"))
        # The lazily materialized index must not carry the zombie either.
        assert clone.view("V_R").ensure_index(("A",)).get("parked") is None

    def test_import_restores_stats_counters(self):
        engine, clone = self.snapshot_roundtrip(True)
        assert clone.stats.updates_applied == engine.stats.updates_applied
        assert clone.stats.index_probes == engine.stats.index_probes
        assert clone.stats.view_sizes == {
            name: len(view) for name, view in clone.materialized.items()
        }

    def test_import_without_stats_resets_counters(self):
        engine, _clone = self.snapshot_roundtrip(True)
        snapshot = engine.export_state()
        del snapshot["stats"]
        clone = FIVMEngine(toy_count_query(), order=toy_variable_order())
        clone.import_state(snapshot)
        assert clone.stats.updates_applied == 0
        assert clone.stats.index_probes == 0

    def test_cross_mode_snapshot_compatible(self):
        """A snapshot from a no-index engine restores into an indexed one."""
        plain = FIVMEngine(
            toy_count_query(),
            order=toy_variable_order(),
            config=EngineConfig(use_view_index=False),
        )
        plain.initialize(toy_database())
        plain.apply("R", inserts(R_SCHEMA, [("a2", 9)]))
        clone = FIVMEngine(toy_count_query(), order=toy_variable_order())
        clone.import_state(plain.export_state())
        assert clone.result() == plain.result()
        delta = inserts(S_SCHEMA, [("a2", 1, 1)])
        plain.apply("S", delta)
        clone.apply("S", delta)
        assert clone.result() == plain.result()


class TestAdaptiveProbeVsScan:
    """Per-step probe-vs-scan choice from |delta| vs sibling size."""

    def small_engine(self, **kwargs):
        # Probe-vs-scan is a per-tuple-path choice; keep fused kernels
        # out so large count-ring batches still exercise it.
        kwargs.setdefault("use_fused", False)
        engine = FIVMEngine(
            toy_count_query(),
            order=toy_variable_order(),
            config=EngineConfig(**kwargs),
        )
        engine.initialize(toy_database())
        return engine

    def big_delta(self, n=1200):
        delta = Relation(R_SCHEMA, name="R")
        delta.data = {(f"a{i}", i): 1 for i in range(n)}
        return delta

    def test_large_delta_takes_scan_path(self):
        # |delta| = 1200 against a 2-key sibling: far past the ratio.
        engine = self.small_engine()
        engine.apply("R", self.big_delta())
        assert engine.stats.scan_steps == 1
        assert engine.stats.probe_steps == 0

    def test_adaptive_off_always_probes(self):
        engine = self.small_engine(adaptive_probe=False)
        engine.apply("R", self.big_delta())
        assert engine.stats.scan_steps == 0
        assert engine.stats.probe_steps == 1

    def test_small_delta_always_probes(self):
        engine = self.small_engine()
        engine.apply("R", delta_of(R_SCHEMA, {("a1", 7): 1}, name="R"))
        assert engine.stats.scan_steps == 0
        assert engine.stats.probe_steps == 1

    def test_adaptive_and_probe_only_agree(self):
        adaptive = self.small_engine()
        probe_only = self.small_engine(adaptive_probe=False)
        oracle = NaiveEngine(toy_count_query(), order=toy_variable_order())
        oracle.initialize(toy_database())
        deltas = [
            ("R", self.big_delta()),
            ("S", delta_of(S_SCHEMA, {("a5", 1, 1): 1, ("a6", 2, 2): 2}, name="S")),
            ("R", self.big_delta().neg()),
        ]
        for name, delta in deltas:
            adaptive.apply(name, delta.copy())
            probe_only.apply(name, delta.copy())
            oracle.apply(name, delta.copy())
        assert adaptive.result() == oracle.result()
        assert probe_only.result() == oracle.result()
        assert adaptive.stats.scan_steps >= 1

    def test_counters_roundtrip_through_snapshot(self):
        engine = self.small_engine()
        engine.apply("R", self.big_delta())
        snapshot = engine.export_state()
        restored = FIVMEngine(toy_count_query(), order=toy_variable_order())
        restored.import_state(snapshot)
        assert restored.stats.scan_steps == engine.stats.scan_steps
        assert restored.stats.probe_steps == engine.stats.probe_steps
