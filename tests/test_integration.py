"""End-to-end integration: the demo's full workflow on one database.

Input tab -> Model Selection -> Regression -> Chow-Liu -> Maintenance
Strategy, sharing one evolving Retailer database, with the final state
cross-checked against offline recomputation. This is the scripted version
of a full demo session (Section 3).
"""

import pytest

from repro.apps import (
    ChowLiuApp,
    MaintenanceStrategyApp,
    ModelSelectionApp,
    RegressionApp,
)
from repro.datasets import (
    RETAILER_SCHEMAS,
    RetailerConfig,
    UpdateStream,
    generate_retailer,
    retailer_query,
    retailer_row_factories,
    retailer_variable_order,
)
from repro.engine import NaiveEngine
from repro.ml.discretize import binning_for_attribute
from repro.rings import CovarSpec, Feature

pytestmark = pytest.mark.slow

CONFIG = RetailerConfig(locations=6, dates=10, items=30, inventory_rows=500, seed=23)


@pytest.fixture(scope="module")
def database():
    return generate_retailer(CONFIG)


def test_full_demo_session(database):
    order = retailer_variable_order()

    # --- Input tab: database + query are fixed; inspect the strategy.
    strategy = MaintenanceStrategyApp(
        retailer_query(CovarSpec((Feature.continuous("prize"),))), order=order
    )
    assert "V@locn" in strategy.render_tree()

    # --- Model Selection tab: pick features by MI against the label.
    item = database.relation("Item")
    inventory = database.relation("Inventory")
    mi_features = (
        Feature.categorical("ksn"),
        Feature.categorical("subcategory"),
        Feature.categorical("category"),
        Feature("prize", "continuous", binning_for_attribute(item, "prize", 6)),
        Feature(
            "inventoryunits",
            "continuous",
            binning_for_attribute(inventory, "inventoryunits", 6),
        ),
        Feature.categorical("rain"),
    )
    selection = ModelSelectionApp(
        database,
        RETAILER_SCHEMAS,
        mi_features,
        label="inventoryunits",
        threshold=0.05,
        order=order,
    )
    selected = selection.selected_features()
    assert "rain" not in selected
    assert len(selected) >= 2

    # --- Regression tab: learn over the selected features.
    feature_kinds = {
        "ksn": Feature.categorical("ksn"),
        "subcategory": Feature.categorical("subcategory"),
        "category": Feature.categorical("category"),
        "prize": Feature.continuous("prize"),
    }
    regression_feats = tuple(
        feature_kinds[name] for name in selected if name in feature_kinds
    ) + (Feature.continuous("inventoryunits"),)
    regression = RegressionApp(
        database,
        RETAILER_SCHEMAS,
        regression_feats,
        "inventoryunits",
        order=order,
    )
    model_before = regression.refresh_model()

    # --- Chow-Liu tab over the same MI features.
    chowliu = ChowLiuApp(database, RETAILER_SCHEMAS, mi_features, order=order)
    tree_before = chowliu.tree()
    assert len(tree_before.edges) == len(mi_features) - 1

    # --- Process Updates: one shared stream drives all apps in lockstep.
    streams = {
        app: UpdateStream(
            app.session.database,
            retailer_row_factories(CONFIG, database),
            targets=("Inventory",),
            batch_size=200,
            insert_ratio=0.7,
            seed=77,
        )
        for app in (selection, regression, chowliu)
    }
    for app, stream in streams.items():
        report = app.process_bulk(stream.batches(4))
        assert report.updates > 0

    # All three sessions saw the same deltas -> same database state.
    reference_db = streams[selection].shadow
    for stream in streams.values():
        assert stream.shadow.relation("Inventory") == reference_db.relation(
            "Inventory"
        )

    # --- Apps still functional after the bulk.
    assert len(selection.ranking().ranked) == len(mi_features) - 1
    model_after = regression.refresh_model()
    assert model_after.training_rmse < model_before.training_rmse * 2
    assert len(chowliu.tree().edges) == len(mi_features) - 1

    # --- The maintained regression COVAR equals offline recomputation.
    naive = NaiveEngine(regression.session.query, order=order)
    naive.initialize(regression.session.database)
    assert regression.session.result().close_to(naive.result(), 1e-6)
