"""Chow-Liu trees: optimality, determinism, structure."""

import itertools

import numpy as np
import pytest

from repro.errors import FIVMError
from repro.ml import chow_liu_tree
from repro.ml.mi import MIMatrix


def matrix(attrs, entries):
    m = len(attrs)
    values = np.zeros((m, m))
    for (i, j), w in entries.items():
        values[i, j] = w
        values[j, i] = w
    return MIMatrix(attributes=tuple(attrs), values=values)


def brute_force_best_weight(mi):
    """Max total weight over all spanning trees (Prüfer enumeration is
    overkill at this scale; enumerate edge subsets)."""
    attrs = mi.attributes
    m = len(attrs)
    edges = [
        (i, j, mi.values[i, j]) for i in range(m) for j in range(i + 1, m)
    ]
    best = -1.0
    for subset in itertools.combinations(edges, m - 1):
        # connectivity check via union-find
        parent = list(range(m))

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        ok = True
        for i, j, _ in subset:
            ri, rj = find(i), find(j)
            if ri == rj:
                ok = False
                break
            parent[ri] = rj
        if ok:
            best = max(best, sum(w for _, _, w in subset))
    return best


class TestOptimality:
    def test_matches_brute_force_on_random_matrices(self):
        rng = np.random.default_rng(23)
        for trial in range(5):
            m = 5
            sym = rng.random((m, m))
            sym = (sym + sym.T) / 2
            np.fill_diagonal(sym, 1.0)
            mi = MIMatrix(
                attributes=tuple(f"X{i}" for i in range(m)), values=sym
            )
            tree = chow_liu_tree(mi)
            assert tree.total_weight == pytest.approx(brute_force_best_weight(mi))

    def test_simple_chain(self):
        mi = matrix(
            ("A", "B", "C"),
            {(0, 1): 0.9, (1, 2): 0.8, (0, 2): 0.1},
        )
        tree = chow_liu_tree(mi)
        edge_sets = {frozenset((u, v)) for u, v, _ in tree.edges}
        assert edge_sets == {frozenset(("A", "B")), frozenset(("B", "C"))}


class TestStructure:
    def test_edge_count(self):
        mi = matrix(("A", "B", "C", "D"), {(i, j): 1.0 for i in range(4) for j in range(i + 1, 4)})
        tree = chow_liu_tree(mi)
        assert len(tree.edges) == 3

    def test_root_selection(self):
        mi = matrix(("A", "B", "C"), {(0, 1): 0.5, (1, 2): 0.4, (0, 2): 0.1})
        tree = chow_liu_tree(mi, root="B")
        assert tree.root == "B"
        assert tree.parent["B"] is None
        assert tree.parent["A"] == "B"

    def test_children(self):
        mi = matrix(("A", "B", "C"), {(0, 1): 0.5, (0, 2): 0.4, (1, 2): 0.1})
        tree = chow_liu_tree(mi, root="A")
        assert set(tree.children("A")) == {"B", "C"}

    def test_deterministic_under_ties(self):
        mi = matrix(
            ("A", "B", "C"), {(0, 1): 0.5, (1, 2): 0.5, (0, 2): 0.5}
        )
        first = chow_liu_tree(mi)
        second = chow_liu_tree(mi)
        assert first.edges == second.edges

    def test_single_attribute(self):
        mi = MIMatrix(attributes=("A",), values=np.zeros((1, 1)))
        tree = chow_liu_tree(mi)
        assert tree.edges == ()
        assert tree.root == "A"

    def test_render(self):
        mi = matrix(("A", "B"), {(0, 1): 0.7})
        text = chow_liu_tree(mi).render()
        assert "A" in text and "B" in text and "0.700" in text


class TestValidation:
    def test_unknown_root(self):
        mi = matrix(("A", "B"), {(0, 1): 0.7})
        with pytest.raises(FIVMError):
            chow_liu_tree(mi, root="Z")

    def test_empty_matrix(self):
        mi = MIMatrix(attributes=(), values=np.zeros((0, 0)))
        with pytest.raises(FIVMError):
            chow_liu_tree(mi)
