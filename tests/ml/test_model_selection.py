"""Model selection: MI-based feature ranking and thresholding."""

import numpy as np
import pytest

from repro.errors import FIVMError
from repro.ml import rank_features, select_features
from repro.ml.mi import MIMatrix


def mi_fixture():
    attrs = ("label", "strong", "weak", "medium")
    values = np.array(
        [
            [1.0, 0.8, 0.05, 0.3],
            [0.8, 1.0, 0.0, 0.0],
            [0.05, 0.0, 1.0, 0.0],
            [0.3, 0.0, 0.0, 1.0],
        ]
    )
    return MIMatrix(attributes=attrs, values=values)


class TestRanking:
    def test_descending_order(self):
        ranking = rank_features(mi_fixture(), "label")
        assert [attr for attr, _ in ranking.ranked] == ["strong", "medium", "weak"]

    def test_label_excluded(self):
        ranking = rank_features(mi_fixture(), "label")
        assert all(attr != "label" for attr, _ in ranking.ranked)

    def test_threshold_selection(self):
        ranking = rank_features(mi_fixture(), "label")
        assert ranking.selected(0.2) == ("strong", "medium")
        assert ranking.selected(0.9) == ()
        assert ranking.selected(0.0) == ("strong", "medium", "weak")

    def test_select_features_shortcut(self):
        assert select_features(mi_fixture(), "label", 0.2) == ("strong", "medium")

    def test_tie_break_alphabetical(self):
        attrs = ("label", "b", "a")
        values = np.full((3, 3), 0.5)
        mi = MIMatrix(attributes=attrs, values=values)
        ranking = rank_features(mi, "label")
        assert [attr for attr, _ in ranking.ranked] == ["a", "b"]

    def test_unknown_label(self):
        with pytest.raises(FIVMError):
            rank_features(mi_fixture(), "nope")

    def test_render_marks_selection(self):
        text = rank_features(mi_fixture(), "label").render(0.2)
        assert "[✔] strong" in text
        assert "[ ] weak" in text
