"""Mutual information from maintained counts, vs direct computation."""

import math

import numpy as np
import pytest

from repro.data import Database, Relation, RelationSchema
from repro.datasets import toy_database, toy_mi_query, toy_variable_order
from repro.engine import FIVMEngine
from repro.errors import FIVMError
from repro.ml import mutual_information_matrix
from repro.ml.mi import entropy, pairwise_mi
from repro.query import Query
from repro.rings import CountSpec, Feature, MISpec, RelationValue

R = RelationSchema("R", ("A", "B"))
S = RelationSchema("S", ("A", "C", "D"))


def direct_mi(rows, i, j):
    """MI of columns i, j over explicit rows (natural-log)."""
    n = len(rows)
    from collections import Counter

    joint = Counter((row[i], row[j]) for row in rows)
    px = Counter(row[i] for row in rows)
    py = Counter(row[j] for row in rows)
    total = 0.0
    for (x, y), c in joint.items():
        total += (c / n) * math.log(n * c / (px[x] * py[y]))
    return total


def direct_entropy(rows, i):
    from collections import Counter

    n = len(rows)
    counts = Counter(row[i] for row in rows)
    return -sum((c / n) * math.log(c / n) for c in counts.values())


def join_rows(db):
    joined = db.relation("R").join(db.relation("S"))
    rows = []
    for key, multiplicity in joined.data.items():
        rows.extend([key] * multiplicity)
    return rows


def mi_matrix_of(db):
    engine = FIVMEngine(toy_mi_query(), order=toy_variable_order())
    engine.initialize(db)
    return mutual_information_matrix(engine.result().payload(()), engine.plan)


class TestAgainstDirectComputation:
    def test_toy_database(self):
        db = toy_database()
        mi = mi_matrix_of(db)
        rows = join_rows(db)  # columns: A, B, C, D
        # matrix attrs are (B, C, D) = join columns 1, 2, 3
        for ai, attr_i in enumerate(("B", "C", "D")):
            for aj, attr_j in enumerate(("B", "C", "D")):
                if ai == aj:
                    expected = direct_entropy(rows, ai + 1)
                else:
                    expected = direct_mi(rows, ai + 1, aj + 1)
                assert mi.mi(attr_i, attr_j) == pytest.approx(expected, abs=1e-12)

    def test_random_database(self):
        rng = np.random.default_rng(17)
        r_rows = [(int(a), int(b)) for a, b in rng.integers(0, 3, (30, 2))]
        s_rows = [
            (int(a), int(c), int(d)) for a, c, d in rng.integers(0, 3, (30, 3))
        ]
        db = Database(
            [
                Relation.from_tuples(("A", "B"), r_rows, name="R"),
                Relation.from_tuples(("A", "C", "D"), s_rows, name="S"),
            ]
        )
        mi = mi_matrix_of(db)
        rows = join_rows(db)
        assert mi.mi("B", "C") == pytest.approx(direct_mi(rows, 1, 2), abs=1e-12)
        assert mi.mi("C", "D") == pytest.approx(direct_mi(rows, 2, 3), abs=1e-12)

    def test_symmetry(self):
        mi = mi_matrix_of(toy_database())
        assert np.array_equal(mi.values, mi.values.T)

    def test_identical_attributes_have_mi_equal_entropy(self):
        """If C == D always, I(C, D) = H(C)."""
        rows_s = [(a, v, v) for a, v in [(0, 1), (1, 2), (2, 1), (3, 2)]]
        rows_r = [(a, 0) for a in range(4)]
        db = Database(
            [
                Relation.from_tuples(("A", "B"), rows_r, name="R"),
                Relation.from_tuples(("A", "C", "D"), rows_s, name="S"),
            ]
        )
        mi = mi_matrix_of(db)
        assert mi.mi("C", "D") == pytest.approx(mi.mi("C", "C"), abs=1e-12)

    def test_independent_attributes_have_zero_mi(self):
        """C uniform and independent of D -> I ~ 0 (exactly 0 for a
        perfectly balanced design)."""
        rows_s = [
            (a, c, d) for a, (c, d) in enumerate((c, d) for c in (0, 1) for d in (0, 1))
        ]
        rows_r = [(a, 0) for a in range(4)]
        db = Database(
            [
                Relation.from_tuples(("A", "B"), rows_r, name="R"),
                Relation.from_tuples(("A", "C", "D"), rows_s, name="S"),
            ]
        )
        mi = mi_matrix_of(db)
        assert mi.mi("C", "D") == pytest.approx(0.0, abs=1e-12)


class TestHelpers:
    def test_entropy_empty(self):
        assert entropy(RelationValue(), 0) == 0.0

    def test_entropy_uniform(self):
        c_x = RelationValue(("X",), {(0,): 2, (1,): 2})
        assert entropy(c_x, 4) == pytest.approx(math.log(2))

    def test_pairwise_mi_empty(self):
        assert pairwise_mi(RelationValue(), RelationValue(), RelationValue(), 0, True) == 0.0

    def test_mi_matrix_accessors(self):
        mi = mi_matrix_of(toy_database())
        with pytest.raises(FIVMError):
            mi.mi("B", "nope")
        assert "B" in mi.render()


class TestBinnedContinuous:
    def test_binned_mi_matches_direct_binning(self):
        db = toy_database()
        spec = MISpec(
            (
                Feature.binned("B", 0, 4, 2),
                Feature.categorical("C"),
                Feature.binned("D", 0, 4, 2),
            )
        )
        engine = FIVMEngine(Query("Q", (R, S), spec=spec))
        engine.initialize(db)
        mi = mutual_information_matrix(engine.result().payload(()), engine.plan)
        rows = [
            (a, int(b >= 2), c, int(d >= 2))
            for (a, b, c, d) in join_rows(db)
        ]
        assert mi.mi("B", "D") == pytest.approx(direct_mi(rows, 1, 3), abs=1e-12)


class TestValidation:
    def test_wrong_ring_rejected(self):
        engine = FIVMEngine(Query("Q", (R, S), spec=CountSpec()))
        engine.initialize(toy_database())
        with pytest.raises(FIVMError):
            mutual_information_matrix(engine.result().payload(()), engine.plan)
