"""Discretization helpers."""

import pytest

from repro.data import Relation
from repro.errors import DataError
from repro.ml import binned_feature, binning_for_attribute, binning_from_values


class TestBinningFromValues:
    def test_spans_min_max(self):
        binning = binning_from_values([1.0, 5.0, 3.0], bins=4)
        assert binning.low == 1.0
        assert binning.high == 5.0
        assert binning.count == 4

    def test_degenerate_domain(self):
        binning = binning_from_values([2.0, 2.0], bins=3)
        assert binning.high > binning.low
        assert binning.bin(2.0) == 0

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            binning_from_values([])


class TestBinningForAttribute:
    def test_reads_attribute_column(self):
        relation = Relation.from_tuples(("A", "X"), [(1, 10.0), (2, 30.0)])
        binning = binning_for_attribute(relation, "X", bins=2)
        assert binning.low == 10.0
        assert binning.high == 30.0

    def test_unknown_attribute(self):
        relation = Relation.from_tuples(("A",), [(1,)])
        with pytest.raises(DataError):
            binning_for_attribute(relation, "X")


class TestBinnedFeature:
    def test_feature_is_categorical(self):
        relation = Relation.from_tuples(("A", "X"), [(1, 10.0), (2, 30.0)])
        feature = binned_feature(relation, "X", bins=5)
        assert feature.is_categorical
        assert feature.binning.count == 5
