"""COVAR extraction: payload -> dense moment matrix with one-hot columns."""

import numpy as np
import pytest

from repro.data import RelationSchema
from repro.datasets import toy_database, toy_variable_order
from repro.engine import FIVMEngine
from repro.errors import FIVMError
from repro.ml import Column, covar_from_payload
from repro.query import Query
from repro.rings import CountSpec, CovarSpec, Feature

R = RelationSchema("R", ("A", "B"))
S = RelationSchema("S", ("A", "C", "D"))


def covar_for(spec):
    engine = FIVMEngine(Query("Q", (R, S), spec=spec), order=toy_variable_order())
    engine.initialize(toy_database())
    return covar_from_payload(engine.result().payload(()), engine.plan)


CONT = (Feature.continuous("B"), Feature.continuous("C"), Feature.continuous("D"))
MIXED = (Feature.continuous("B"), Feature.categorical("C"), Feature.continuous("D"))


class TestNumericExtraction:
    def test_columns_and_values(self):
        covar = covar_for(CovarSpec(CONT, backend="numeric"))
        assert [c.label for c in covar.columns] == ["B", "C", "D"]
        assert covar.count == 3.0
        assert covar.sums.tolist() == [4.0, 5.0, 6.0]
        assert covar.moments[0, 2] == 8.0

    def test_extended_matrix(self):
        covar = covar_for(CovarSpec(CONT, backend="numeric"))
        extended = covar.extended()
        assert extended.shape == (4, 4)
        assert extended[0, 0] == 3.0
        assert extended[0, 1] == 4.0
        assert extended[1, 0] == 4.0
        assert extended[3, 3] == 14.0

    def test_index_and_columns_of(self):
        covar = covar_for(CovarSpec(CONT, backend="numeric"))
        assert covar.index("C") == 1
        assert covar.columns_of("D") == (2,)
        with pytest.raises(FIVMError):
            covar.index("Z")
        with pytest.raises(FIVMError):
            covar.columns_of("Z")


class TestGeneralFloatExtraction:
    def test_matches_numeric_backend(self):
        numeric = covar_for(CovarSpec(CONT, backend="numeric"))
        general = covar_for(CovarSpec(CONT, backend="general-float"))
        assert numeric.count == general.count
        assert np.allclose(numeric.sums, general.sums)
        assert np.allclose(numeric.moments, general.moments)


class TestRelationalExtraction:
    def test_one_hot_columns_for_categorical(self):
        covar = covar_for(CovarSpec(MIXED))
        labels = [c.label for c in covar.columns]
        assert labels == ["B", "C=1", "C=2", "D"]

    def test_counts_and_sums(self):
        covar = covar_for(CovarSpec(MIXED))
        assert covar.count == 3.0
        b = covar.index("B")
        c1 = covar.index("C", 1)
        c2 = covar.index("C", 2)
        d = covar.index("D")
        assert covar.sums[b] == 4.0
        assert covar.sums[c1] == 1.0   # SUM(1) for C=c1
        assert covar.sums[c2] == 2.0
        assert covar.sums[d] == 6.0

    def test_interaction_blocks(self):
        covar = covar_for(CovarSpec(MIXED))
        b = covar.index("B")
        c1 = covar.index("C", 1)
        c2 = covar.index("C", 2)
        d = covar.index("D")
        # Q_BC: SUM(B) GROUP BY C = {c1: 1, c2: 3}
        assert covar.moments[b, c1] == 1.0
        assert covar.moments[b, c2] == 3.0
        # Q_CD: SUM(D) GROUP BY C = {c1: 1, c2: 5}
        assert covar.moments[c1, d] == 1.0
        assert covar.moments[c2, d] == 5.0
        # one-hot diagonal and orthogonality
        assert covar.moments[c1, c1] == 1.0
        assert covar.moments[c2, c2] == 2.0
        assert covar.moments[c1, c2] == 0.0
        # continuous diagonal
        assert covar.moments[b, b] == 6.0
        assert covar.moments[d, d] == 14.0
        # symmetry
        assert np.array_equal(covar.moments, covar.moments.T)

    def test_matches_expansion_of_numeric_on_continuous_subset(self):
        """One-hot expansion over {B, D} agrees with the numeric backend."""
        mixed = covar_for(CovarSpec(MIXED))
        numeric = covar_for(CovarSpec(CONT, backend="numeric"))
        for attrs in (("B", "B"), ("B", "D"), ("D", "D")):
            i_mixed = mixed.index(attrs[0])
            j_mixed = mixed.index(attrs[1])
            i_num = numeric.index(attrs[0])
            j_num = numeric.index(attrs[1])
            assert mixed.moments[i_mixed, j_mixed] == numeric.moments[i_num, j_num]


class TestErrors:
    def test_non_cofactor_payload_rejected(self):
        engine = FIVMEngine(
            Query("Q", (R, S), spec=CountSpec()), order=toy_variable_order()
        )
        engine.initialize(toy_database())
        with pytest.raises(FIVMError):
            covar_from_payload(engine.result().payload(()), engine.plan)

    def test_render_contains_labels(self):
        covar = covar_for(CovarSpec(MIXED))
        text = covar.render()
        assert "C=1" in text and "count = 3" in text


class TestColumn:
    def test_labels(self):
        assert Column("B").label == "B"
        assert Column("C", "red").label == "C=red"
