"""Ridge regression from COVAR sufficient statistics.

Cross-validated against direct numpy least squares on the *materialized*
join — the whole point of F-IVM is that the two must coincide without ever
building that join.
"""

import numpy as np
import pytest

from repro.data import Database, Relation, RelationSchema
from repro.engine import FIVMEngine
from repro.errors import FIVMError
from repro.ml import RidgeRegression, covar_from_payload
from repro.query import Query
from repro.rings import CovarSpec, Feature

R = RelationSchema("R", ("A", "B"))
S = RelationSchema("S", ("A", "C", "D"))


def make_db(seed=3, n=40):
    rng = np.random.default_rng(seed)
    r_rows = [(int(a), int(rng.integers(-4, 5))) for a in rng.integers(0, 6, n)]
    s_rows = [
        (int(a), int(rng.integers(-4, 5)), int(rng.integers(-4, 5)))
        for a in rng.integers(0, 6, n)
    ]
    return Database(
        [
            Relation.from_tuples(("A", "B"), r_rows, name="R"),
            Relation.from_tuples(("A", "C", "D"), s_rows, name="S"),
        ]
    )


def materialized_design(db):
    """[1, B, C] rows and D labels of the explicit join (bag semantics)."""
    joined = db.relation("R").join(db.relation("S"))
    xs, ys = [], []
    for (a, b, c, d), multiplicity in joined.data.items():
        for _ in range(multiplicity):
            xs.append([1.0, float(b), float(c)])
            ys.append(float(d))
    return np.array(xs), np.array(ys)


def covar_of(db, backend="numeric"):
    spec = CovarSpec(
        (Feature.continuous("B"), Feature.continuous("C"), Feature.continuous("D")),
        backend=backend,
    )
    engine = FIVMEngine(Query("Q", (R, S), spec=spec))
    engine.initialize(db)
    return covar_from_payload(engine.result().payload(()), engine.plan)


class TestClosedForm:
    def test_matches_direct_normal_equations(self):
        db = make_db()
        covar = covar_of(db)
        lam = 0.1
        solver = RidgeRegression(["B", "C"], "D", regularization=lam)
        model = solver.fit_closed_form(covar)
        x, y = materialized_design(db)
        n = len(y)
        mask = np.diag([0.0, 1.0, 1.0])
        expected = np.linalg.solve(x.T @ x / n + lam * mask, x.T @ y / n)
        assert np.allclose(model.theta, expected)

    def test_unregularized_matches_lstsq(self):
        db = make_db(seed=5)
        covar = covar_of(db)
        solver = RidgeRegression(["B", "C"], "D", regularization=0.0)
        model = solver.fit_closed_form(covar)
        x, y = materialized_design(db)
        expected, *_ = np.linalg.lstsq(x, y, rcond=None)
        assert np.allclose(model.theta, expected, atol=1e-8)


class TestGradientDescent:
    def test_converges_to_closed_form(self):
        covar = covar_of(make_db())
        solver = RidgeRegression(["B", "C"], "D", regularization=0.05)
        bgd = solver.fit(covar, max_iterations=20000, tolerance=1e-12)
        closed = solver.fit_closed_form(covar)
        assert bgd.converged
        assert np.allclose(bgd.theta, closed.theta, atol=1e-6)

    def test_warm_start_resumes_faster(self):
        covar = covar_of(make_db())
        solver = RidgeRegression(["B", "C"], "D", regularization=0.05)
        cold = solver.fit(covar, max_iterations=50000, tolerance=1e-10)
        warm = solver.fit(
            covar, theta0=cold.theta, max_iterations=50000, tolerance=1e-10
        )
        assert warm.iterations < cold.iterations

    def test_wrong_theta0_shape_rejected(self):
        covar = covar_of(make_db())
        solver = RidgeRegression(["B", "C"], "D")
        with pytest.raises(FIVMError):
            solver.fit(covar, theta0=np.zeros(7))


class TestTrainingRmse:
    def test_matches_explicit_residuals(self):
        db = make_db(seed=9)
        covar = covar_of(db)
        solver = RidgeRegression(["B", "C"], "D", regularization=0.01)
        model = solver.fit_closed_form(covar)
        x, y = materialized_design(db)
        explicit = np.sqrt(np.mean((x @ model.theta - y) ** 2))
        assert model.training_rmse == pytest.approx(explicit, rel=1e-9)


class TestPredictAndCoefficients:
    def test_continuous_prediction(self):
        covar = covar_of(make_db())
        model = RidgeRegression(["B", "C"], "D").fit_closed_form(covar)
        expected = model.intercept + model.theta[1] * 2.0 + model.theta[2] * -1.0
        assert model.predict({"B": 2.0, "C": -1.0}) == pytest.approx(expected)

    def test_missing_feature_rejected(self):
        covar = covar_of(make_db())
        model = RidgeRegression(["B", "C"], "D").fit_closed_form(covar)
        with pytest.raises(FIVMError):
            model.predict({"B": 2.0})

    def test_coefficients_labelled(self):
        covar = covar_of(make_db())
        model = RidgeRegression(["B", "C"], "D").fit_closed_form(covar)
        assert set(model.coefficients()) == {"B", "C"}


class TestCategoricalRegression:
    def test_one_hot_learning(self):
        """Label depends deterministically on categorical C; regression
        over one-hot columns must recover the category means."""
        rows_r = [(a, 0) for a in range(6)]
        rows_s = [(a, a % 2, 10 if a % 2 == 0 else 20) for a in range(6)]
        db = Database(
            [
                Relation.from_tuples(("A", "B"), rows_r, name="R"),
                Relation.from_tuples(("A", "C", "D"), rows_s, name="S"),
            ]
        )
        spec = CovarSpec(
            (
                Feature.categorical("C"),
                Feature.continuous("D"),
            )
        )
        engine = FIVMEngine(Query("Q", (R, S), spec=spec))
        engine.initialize(db)
        covar = covar_from_payload(engine.result().payload(()), engine.plan)
        model = RidgeRegression(["C"], "D", regularization=0.0).fit_closed_form(covar)
        assert model.predict({"C": 0}) == pytest.approx(10.0, abs=1e-6)
        assert model.predict({"C": 1}) == pytest.approx(20.0, abs=1e-6)


class TestValidation:
    def test_no_features_rejected(self):
        with pytest.raises(FIVMError):
            RidgeRegression([], "D")

    def test_label_in_features_rejected(self):
        with pytest.raises(FIVMError):
            RidgeRegression(["D"], "D")

    def test_negative_regularization_rejected(self):
        with pytest.raises(FIVMError):
            RidgeRegression(["B"], "D", regularization=-1.0)

    def test_categorical_label_rejected(self):
        db = make_db()
        spec = CovarSpec(
            (Feature.categorical("B"), Feature.continuous("D"))
        )
        engine = FIVMEngine(Query("Q", (R, S), spec=spec))
        engine.initialize(db)
        covar = covar_from_payload(engine.result().payload(()), engine.plan)
        with pytest.raises(FIVMError):
            RidgeRegression(["D"], "B").design(covar)

    def test_empty_dataset_rejected(self):
        db = Database(
            [
                Relation(("A", "B"), name="R"),
                Relation(("A", "C", "D"), name="S"),
            ]
        )
        covar = covar_of(db)
        with pytest.raises(FIVMError):
            RidgeRegression(["B", "C"], "D").fit_closed_form(covar)
