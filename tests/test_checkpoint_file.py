"""The on-disk checkpoint envelope: format, atomicity, corruption handling."""

import os
import pickle

import pytest

from repro.checkpoint import (
    FILE_VERSION,
    MAGIC,
    checkpoint_sink,
    read_checkpoint,
    read_checkpoint_info,
    restore_checkpoint,
    write_checkpoint,
)
from repro.data import inserts
from repro.datasets import (
    toy_count_query,
    toy_covar_continuous_query,
    toy_database,
    toy_variable_order,
)
from repro.engine import FIVMEngine, ShardedEngine
from repro.errors import CheckpointError, EngineError
from repro.config import EngineConfig


def fresh_engine(query=None):
    engine = FIVMEngine(query or toy_count_query(), order=toy_variable_order())
    engine.initialize(toy_database())
    return engine


class TestWriteRead:
    @pytest.mark.parametrize("compression", ["zlib", "none"])
    def test_roundtrip(self, tmp_path, compression):
        engine = fresh_engine()
        engine.apply("R", inserts(("A", "B"), [("a1", 1)]))
        path = tmp_path / "toy.ckpt"
        info = write_checkpoint(engine, path, compression=compression)
        assert info.query == "Q_count"
        assert info.strategy == "fivm"
        assert info.payload == "views"
        assert info.compression == compression
        assert info.file_bytes == os.path.getsize(path)
        clone = FIVMEngine(toy_count_query(), order=toy_variable_order())
        restored_info = restore_checkpoint(clone, path)
        assert restored_info.state_bytes == info.state_bytes
        assert clone.result() == engine.result()

    def test_zlib_smaller_than_raw_state(self, tmp_path):
        engine = fresh_engine(toy_covar_continuous_query())
        path = tmp_path / "covar.ckpt"
        info = write_checkpoint(engine, path)
        assert info.file_bytes < info.state_bytes + len(MAGIC) + 512

    def test_info_without_loading_state(self, tmp_path):
        engine = fresh_engine()
        path = tmp_path / "toy.ckpt"
        write_checkpoint(engine, path, metadata={"note": "hello", "n": 3})
        info = read_checkpoint_info(path)
        assert info.metadata == {"note": "hello", "n": 3}
        assert info.file_version == FILE_VERSION
        assert info.created_at > 0
        assert "Q_count" in info.describe()

    def test_read_returns_state(self, tmp_path):
        engine = fresh_engine()
        path = tmp_path / "toy.ckpt"
        write_checkpoint(engine, path)
        _info, state = read_checkpoint(path)
        assert set(state["views"]) == {"V_R", "V_S", "V@A"}

    def test_atomic_overwrite_keeps_previous_on_disk(self, tmp_path):
        engine = fresh_engine()
        path = tmp_path / "toy.ckpt"
        write_checkpoint(engine, path)
        engine.apply("R", inserts(("A", "B"), [("a1", 1)]))
        write_checkpoint(engine, path)  # replaces, never truncates in place
        assert not os.path.exists(f"{path}.tmp")
        clone = FIVMEngine(toy_count_query(), order=toy_variable_order())
        restore_checkpoint(clone, path)
        assert clone.result() == engine.result()

    def test_unknown_compression_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="compression"):
            write_checkpoint(fresh_engine(), tmp_path / "x.ckpt", compression="lz4")


class TestCorruption:
    def test_zero_byte_file(self, tmp_path):
        # Crash before the first write, or a touch(1)-created placeholder:
        # the most common corruption in practice, named for what it is.
        path = tmp_path / "empty.ckpt"
        path.write_bytes(b"")
        with pytest.raises(CheckpointError, match="empty file"):
            read_checkpoint_info(path)
        with pytest.raises(CheckpointError, match=str(path)):
            read_checkpoint(path)

    def test_file_shorter_than_magic(self, tmp_path):
        path = tmp_path / "short.ckpt"
        path.write_bytes(MAGIC[:3])
        with pytest.raises(CheckpointError, match="only 3 bytes"):
            read_checkpoint_info(path)

    def test_file_ends_inside_header(self, tmp_path):
        engine = fresh_engine()
        path = tmp_path / "toy.ckpt"
        write_checkpoint(engine, path)
        blob = path.read_bytes()
        # Cut at the magic: the header pickle is absent entirely ...
        path.write_bytes(blob[: len(MAGIC)])
        with pytest.raises(CheckpointError, match="ends inside the header"):
            read_checkpoint_info(path)
        # ... and a partial header pickle is surfaced as corruption.
        path.write_bytes(blob[: len(MAGIC) + 4])
        with pytest.raises(CheckpointError, match="corrupt checkpoint header"):
            read_checkpoint_info(path)

    def test_truncated_body_names_the_file(self, tmp_path):
        engine = fresh_engine()
        path = tmp_path / "toy.ckpt"
        write_checkpoint(engine, path, compression="none")
        blob = path.read_bytes()
        path.write_bytes(blob[:-10])
        with pytest.raises(CheckpointError, match="truncated checkpoint"):
            read_checkpoint(path)

    def test_restore_surfaces_truncation_not_pickle_noise(self, tmp_path):
        # restore_checkpoint on a damaged file must raise the descriptive
        # CheckpointError, never a bare EOFError/UnpicklingError.
        engine = fresh_engine()
        path = tmp_path / "toy.ckpt"
        write_checkpoint(engine, path)
        path.write_bytes(path.read_bytes()[:-25])
        clone = FIVMEngine(toy_count_query(), order=toy_variable_order())
        with pytest.raises(CheckpointError, match="truncated|corrupt"):
            restore_checkpoint(clone, path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "not.ckpt"
        path.write_bytes(b"definitely not a checkpoint")
        with pytest.raises(CheckpointError, match="magic"):
            read_checkpoint_info(path)

    def test_unknown_file_version(self, tmp_path):
        path = tmp_path / "future.ckpt"
        header = {"file_version": 99, "compression": "none"}
        with open(path, "wb") as handle:
            handle.write(MAGIC)
            pickle.dump(header, handle)
        with pytest.raises(CheckpointError, match="file version"):
            read_checkpoint_info(path)

    def test_header_with_global_reference_rejected(self, tmp_path):
        # Headers are parsed with a restricted unpickler: a pickle that
        # references any callable (the code-execution vector) is refused
        # before it can run, so `checkpoint info` is safe on untrusted files.
        class Evil:
            def __reduce__(self):
                return (os.getcwd, ())  # harmless stand-in for the payload

        path = tmp_path / "evil.ckpt"
        path.write_bytes(MAGIC + pickle.dumps(Evil()))
        with pytest.raises(CheckpointError, match="primitive"):
            read_checkpoint_info(path)

    def test_header_missing_fields(self, tmp_path):
        # valid magic/version/compression but gutted header: still a
        # CheckpointError, never a bare KeyError
        path = tmp_path / "gutted.ckpt"
        header = {"file_version": FILE_VERSION, "compression": "none"}
        with open(path, "wb") as handle:
            handle.write(MAGIC)
            pickle.dump(header, handle)
        with pytest.raises(CheckpointError, match="missing"):
            read_checkpoint_info(path)

    def test_truncated_state(self, tmp_path):
        engine = fresh_engine()
        path = tmp_path / "toy.ckpt"
        write_checkpoint(engine, path, compression="none")
        blob = path.read_bytes()
        path.write_bytes(blob[:-10])
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    def test_corrupt_compressed_state(self, tmp_path):
        engine = fresh_engine()
        path = tmp_path / "toy.ckpt"
        write_checkpoint(engine, path, compression="zlib")
        blob = path.read_bytes()
        path.write_bytes(blob[:-20] + b"\x00" * 20)
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    def test_engine_mismatch_is_engine_error_not_file_error(self, tmp_path):
        # file is intact; the *engine* rejects the foreign provenance
        engine = fresh_engine()
        path = tmp_path / "toy.ckpt"
        write_checkpoint(engine, path)
        other = FIVMEngine(
            toy_covar_continuous_query(), order=toy_variable_order()
        )
        with pytest.raises(EngineError, match="Q_count"):
            restore_checkpoint(other, path)


class TestCheckpointSink:
    def test_periodic_sink_rewrites_latest(self, tmp_path):
        engine = fresh_engine()
        path = tmp_path / "stream.ckpt"
        events = [("R", ("a1", i), 1) for i in range(10)]
        engine.apply_stream(
            iter(events),
            batch_size=3,
            checkpoint_every=4,
            on_checkpoint=checkpoint_sink(path, metadata={"job": "test"}),
        )
        info = read_checkpoint_info(path)
        # latest wins: the second snapshot (8 events) is on disk
        assert info.metadata == {"job": "test", "events_processed": 8}
        clone = FIVMEngine(toy_count_query(), order=toy_variable_order())
        restore_checkpoint(clone, path)
        assert clone.stats.updates_applied == 8

    def test_sink_with_sharded_engine(self, tmp_path):
        engine = ShardedEngine(
            toy_count_query(),
            order=toy_variable_order(),
            config=EngineConfig(shards=2, backend="serial"),
        )
        path = tmp_path / "sharded.ckpt"
        with engine:
            engine.initialize(toy_database())
            events = [("R", ("a1", i), 1) for i in range(6)]
            engine.apply_stream(
                iter(events),
                batch_size=2,
                checkpoint_every=3,
                on_checkpoint=checkpoint_sink(path),
            )
        clone = FIVMEngine(toy_count_query(), order=toy_variable_order())
        restore_checkpoint(clone, path)  # cross-topology restore from disk
        assert read_checkpoint_info(path).metadata["events_processed"] == 6
