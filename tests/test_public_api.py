"""Public API surface: everything in __all__ resolves and docs exist."""

import repro


class TestPublicAPI:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_module_docstrings(self):
        import repro.apps
        import repro.data
        import repro.datasets
        import repro.engine
        import repro.ml
        import repro.query
        import repro.rings
        import repro.viewtree

        for module in (
            repro,
            repro.rings,
            repro.data,
            repro.query,
            repro.viewtree,
            repro.engine,
            repro.ml,
            repro.datasets,
            repro.apps,
        ):
            assert module.__doc__, module.__name__

    def test_quickstart_from_docstring(self):
        """The README/package-docstring quickstart must actually run."""
        from repro import (
            CovarSpec,
            Database,
            Feature,
            FIVMEngine,
            Query,
            Relation,
            RelationSchema,
            inserts,
        )

        r = Relation.from_tuples(("A", "B"), [("a1", 1), ("a2", 2)], name="R")
        s = Relation.from_tuples(
            ("A", "C", "D"), [("a1", 1, 1), ("a1", 2, 3), ("a2", 2, 2)], name="S"
        )
        query = Query(
            "Q",
            (RelationSchema("R", ("A", "B")), RelationSchema("S", ("A", "C", "D"))),
            spec=CovarSpec(
                (
                    Feature.continuous("B"),
                    Feature.continuous("C"),
                    Feature.continuous("D"),
                )
            ),
        )
        engine = FIVMEngine(query)
        engine.initialize(Database([r, s]))
        engine.apply("R", inserts(("A", "B"), [("a1", 3)]))
        payload = engine.result().payload(())
        assert payload.c == 5.0  # 2 R-tuples with a1 x 2 S-tuples + 1
