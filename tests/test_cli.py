"""The command-line interface (the demo's tabs from a terminal)."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out


SMALL = ["--scale", "1", "--seed", "3"]


class TestInfo:
    def test_covar_view_tree(self, capsys):
        code, out = run_cli(capsys, ["info", "--dataset", "retailer"] + SMALL)
        assert code == 0
        assert "V@locn" in out
        assert "DECLARE MAP" in out

    def test_count_payload(self, capsys):
        code, out = run_cli(
            capsys, ["info", "--payload", "count", "--dataset", "favorita"] + SMALL
        )
        assert code == 0
        assert "V@date" in out

    def test_mi_payload_with_dot(self, capsys):
        code, out = run_cli(capsys, ["info", "--payload", "mi", "--dot"] + SMALL)
        assert code == 0
        assert "digraph" in out


class TestRun:
    def test_model_selection_bulks(self, capsys):
        code, out = run_cli(
            capsys,
            [
                "run",
                "--app",
                "model-selection",
                "--bulks",
                "1",
                "--bulk-updates",
                "200",
                "--batch-size",
                "100",
            ]
            + SMALL,
        )
        assert code == 0
        assert "label: inventoryunits" in out
        assert "bulk 1" in out

    def test_regression_on_favorita(self, capsys):
        code, out = run_cli(
            capsys,
            [
                "run",
                "--dataset",
                "favorita",
                "--app",
                "regression",
                "--bulks",
                "1",
                "--bulk-updates",
                "200",
                "--batch-size",
                "100",
            ]
            + SMALL,
        )
        assert code == 0
        assert "intercept" in out

    def test_chowliu(self, capsys):
        code, out = run_cli(
            capsys,
            [
                "run",
                "--app",
                "chow-liu",
                "--bulks",
                "1",
                "--bulk-updates",
                "200",
                "--batch-size",
                "100",
            ]
            + SMALL,
        )
        assert code == 0
        assert "MI=" in out


class TestBench:
    def test_engine_comparison(self, capsys):
        code, out = run_cli(
            capsys, ["bench", "--batches", "2", "--batch-size", "50"] + SMALL
        )
        assert code == 0
        assert "fivm" in out and "naive" in out
        assert "all engines agree" in out

    def test_sharded_engine_row(self, capsys):
        code, out = run_cli(
            capsys,
            [
                "bench",
                "--batches",
                "2",
                "--batch-size",
                "50",
                "--shards",
                "2",
                "--shard-backend",
                "serial",
            ]
            + SMALL,
        )
        assert code == 0
        assert "fivm x2" in out and "shards=2" in out
        assert "all engines agree" in out


class TestCheckpoint:
    def test_save_info_load_roundtrip_across_shard_counts(self, capsys, tmp_path):
        path = str(tmp_path / "retailer.ckpt")
        code, out = run_cli(
            capsys,
            [
                "checkpoint", "save", path,
                "--updates", "400",
                "--batch-size", "100",
                "--shards", "2",
                "--shard-backend", "serial",
            ]
            + SMALL,
        )
        assert code == 0
        assert "saved checkpoint" in out and "fivm-sharded" in out

        code, out = run_cli(capsys, ["checkpoint", "info", path])
        assert code == 0
        assert "Retailer" in out and "dataset: retailer" in out

        # restore at a different shard count, resume, verify vs full replay
        code, out = run_cli(
            capsys,
            [
                "checkpoint", "load", path,
                "--shards", "4",
                "--shard-backend", "serial",
                "--resume-updates", "200",
                "--verify",
            ],
        )
        assert code == 0
        assert "restored" in out
        assert "identical to uninterrupted ingestion ✓" in out

    def test_save_periodic_and_unsharded_load(self, capsys, tmp_path):
        path = str(tmp_path / "periodic.ckpt")
        code, out = run_cli(
            capsys,
            [
                "checkpoint", "save", path,
                "--updates", "300",
                "--batch-size", "50",
                "--every", "100",
            ]
            + SMALL,
        )
        assert code == 0
        code, out = run_cli(capsys, ["checkpoint", "load", path, "--verify"])
        assert code == 0
        assert "identical to uninterrupted ingestion ✓" in out

    def test_load_rejects_non_checkpoint(self, capsys, tmp_path):
        bogus = tmp_path / "bogus.ckpt"
        bogus.write_bytes(b"not a checkpoint")
        from repro.errors import CheckpointError

        with pytest.raises(CheckpointError):
            main(["checkpoint", "info", str(bogus)])


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--app", "nope"])
