"""The command-line interface (the demo's tabs from a terminal)."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out


SMALL = ["--scale", "1", "--seed", "3"]


class TestInfo:
    def test_covar_view_tree(self, capsys):
        code, out = run_cli(capsys, ["info", "--dataset", "retailer"] + SMALL)
        assert code == 0
        assert "V@locn" in out
        assert "DECLARE MAP" in out

    def test_count_payload(self, capsys):
        code, out = run_cli(
            capsys, ["info", "--payload", "count", "--dataset", "favorita"] + SMALL
        )
        assert code == 0
        assert "V@date" in out

    def test_mi_payload_with_dot(self, capsys):
        code, out = run_cli(capsys, ["info", "--payload", "mi", "--dot"] + SMALL)
        assert code == 0
        assert "digraph" in out


class TestRun:
    def test_model_selection_bulks(self, capsys):
        code, out = run_cli(
            capsys,
            [
                "run",
                "--app",
                "model-selection",
                "--bulks",
                "1",
                "--bulk-updates",
                "200",
                "--batch-size",
                "100",
            ]
            + SMALL,
        )
        assert code == 0
        assert "label: inventoryunits" in out
        assert "bulk 1" in out

    def test_regression_on_favorita(self, capsys):
        code, out = run_cli(
            capsys,
            [
                "run",
                "--dataset",
                "favorita",
                "--app",
                "regression",
                "--bulks",
                "1",
                "--bulk-updates",
                "200",
                "--batch-size",
                "100",
            ]
            + SMALL,
        )
        assert code == 0
        assert "intercept" in out

    def test_chowliu(self, capsys):
        code, out = run_cli(
            capsys,
            [
                "run",
                "--app",
                "chow-liu",
                "--bulks",
                "1",
                "--bulk-updates",
                "200",
                "--batch-size",
                "100",
            ]
            + SMALL,
        )
        assert code == 0
        assert "MI=" in out


class TestBench:
    def test_engine_comparison(self, capsys):
        code, out = run_cli(
            capsys, ["bench", "--batches", "2", "--batch-size", "50"] + SMALL
        )
        assert code == 0
        assert "fivm" in out and "naive" in out
        assert "all engines agree" in out

    def test_sharded_engine_row(self, capsys):
        code, out = run_cli(
            capsys,
            [
                "bench",
                "--batches",
                "2",
                "--batch-size",
                "50",
                "--shards",
                "2",
                "--shard-backend",
                "serial",
            ]
            + SMALL,
        )
        assert code == 0
        assert "fivm x2" in out and "shards=2" in out
        assert "all engines agree" in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--app", "nope"])
