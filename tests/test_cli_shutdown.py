"""Graceful shutdown: SIGTERM unwinds serve cleanly, flushing state."""

import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.checkpoint import read_checkpoint_info
from repro.engine.transport import active_shm_segments

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def spawn_serve(tmp_path, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--dataset", "toy", "--payload", "covar",
            "--updates", "3000000", "--batch-size", "200",
            "--port", "0", "--linger", "-1", *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=str(tmp_path),
    )


def wait_for(predicate, proc, seconds=60.0):
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        if predicate():
            return
        assert proc.poll() is None, proc.stdout.read()
        time.sleep(0.1)
    pytest.fail("condition not reached before the deadline")


class TestServeSigterm:
    def test_sigterm_mid_ingest_flushes_final_checkpoint(self, tmp_path):
        ckpt = tmp_path / "serve.ckpt"
        proc = spawn_serve(
            tmp_path,
            "--checkpoint", str(ckpt), "--checkpoint-every", "2000",
        )
        try:
            # The first periodic snapshot proves ingest is mid-stream.
            wait_for(ckpt.exists, proc)
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)
        assert proc.returncode == 0, out
        assert "interrupted; shutting down" in out
        assert "final checkpoint written" in out
        info = read_checkpoint_info(str(ckpt))
        # The shutdown flush stamped the drained stream position — far
        # short of the 3M the command asked for.
        assert 0 < info.metadata["events_processed"] < 3000000

    def test_sigterm_without_checkpointing_exits_clean(self, tmp_path):
        before = set(active_shm_segments())
        proc = spawn_serve(tmp_path)
        try:
            time.sleep(2.0)
            assert proc.poll() is None
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)
        assert proc.returncode == 0, out
        assert "interrupted; shutting down" in out
        assert "final checkpoint" not in out
        assert not (set(active_shm_segments()) - before)
