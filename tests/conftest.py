"""Shared fixtures and hypothesis configuration."""

from __future__ import annotations

import hypothesis
import pytest
from hypothesis import strategies as st

from repro.data import Database, Relation
from repro.datasets import (
    RetailerConfig,
    generate_retailer,
    retailer_variable_order,
    toy_database,
)

hypothesis.settings.register_profile(
    "fivm",
    max_examples=30,
    deadline=None,
    suppress_health_check=[hypothesis.HealthCheck.too_slow],
)
hypothesis.settings.load_profile("fivm")


# ----------------------------------------------------------------------
# Databases
# ----------------------------------------------------------------------


@pytest.fixture
def toy_db() -> Database:
    return toy_database()


@pytest.fixture(scope="session")
def small_retailer_config() -> RetailerConfig:
    return RetailerConfig(locations=6, dates=10, items=30, inventory_rows=400, seed=11)


@pytest.fixture(scope="session")
def small_retailer_db(small_retailer_config) -> Database:
    return generate_retailer(small_retailer_config)


@pytest.fixture
def retailer_order():
    return retailer_variable_order()


# ----------------------------------------------------------------------
# Hypothesis strategies (integer-valued to keep float arithmetic exact)
# ----------------------------------------------------------------------

small_ints = st.integers(min_value=-6, max_value=6)
small_nonneg = st.integers(min_value=0, max_value=6)
tiny_floats = st.integers(min_value=-5, max_value=5).map(float)


def rows_strategy(arity: int, domain: int = 4, max_rows: int = 8):
    """Random rows over a small integer domain."""
    row = st.tuples(*[st.integers(min_value=0, max_value=domain - 1)] * arity)
    return st.lists(row, max_size=max_rows)


def z_relation_strategy(schema, domain: int = 4, max_rows: int = 8):
    """Random Z-relations (possibly with signed multiplicities)."""

    def build(entries):
        relation = Relation(schema)
        for key, multiplicity in entries:
            if multiplicity:
                relation.data[key] = (
                    relation.data.get(key, 0) + multiplicity
                )
                if relation.data[key] == 0:
                    del relation.data[key]
        return relation

    key = st.tuples(
        *[st.integers(min_value=0, max_value=domain - 1)] * len(schema)
    )
    entry = st.tuples(key, st.integers(min_value=-2, max_value=3))
    return st.lists(entry, max_size=max_rows).map(build)
