"""Checkpoint crash-safety: orphaned tmp files, truncation, broken chains."""

import glob
import os

import pytest

from repro.checkpoint import (
    checkpoint_sink,
    load_checkpoint_chain,
    read_checkpoint_info,
    resolve_chain_head,
    restore_checkpoint,
    sweep_stale_tmp_files,
    write_checkpoint,
)
from repro.config import create_engine
from repro.datasets import (
    UpdateStream,
    toy_count_query,
    toy_database,
    toy_row_factories,
    toy_variable_order,
)
from repro.errors import CheckpointError
from repro.testing import (
    FaultInjector,
    FaultSpec,
    InjectedFault,
    clear_injector,
    install_injector,
)


@pytest.fixture(autouse=True)
def _fault_free_afterwards():
    yield
    clear_injector()


def toy_engine(events_applied=40, seed=31):
    database = toy_database()
    engine = create_engine(toy_count_query(), order=toy_variable_order())
    engine.initialize(database)
    if events_applied:
        stream = UpdateStream(
            database,
            toy_row_factories(),
            targets=("R", "S"),
            batch_size=10,
            insert_ratio=0.6,
            seed=seed,
        )
        engine.apply_stream(stream.tuples(events_applied), batch_size=10)
    return database, engine


def tmp_orphans(tmp_path):
    return glob.glob(str(tmp_path / "*.tmp"))


class TestOrphanedTmpFiles:
    def test_crash_mid_write_orphans_tmp_and_keeps_previous(self, tmp_path):
        database, engine = toy_engine()
        path = str(tmp_path / "c.ckpt")
        before = write_checkpoint(engine, path)
        install_injector(FaultInjector((
            FaultSpec("crash", site="checkpoint.write"),
        )))
        with pytest.raises(InjectedFault, match="before publishing"):
            write_checkpoint(engine, path)
        # The interrupted write left its scratch file and nothing else:
        # the previously published checkpoint is byte-for-byte intact.
        assert len(tmp_orphans(tmp_path)) == 1
        assert read_checkpoint_info(path).created_at == before.created_at
        assert resolve_chain_head(path) == path

    def test_sweep_removes_only_matching_orphans(self, tmp_path):
        database, engine = toy_engine()
        path = str(tmp_path / "c.ckpt")
        write_checkpoint(engine, path)
        # Orphans for the base and an increment, plus two look-alikes
        # that must survive: another checkpoint's scratch and a real
        # checkpoint whose name merely contains the basename.
        for name in ("c.ckpt.k2j9.tmp", "c.ckpt.inc1.x7.tmp"):
            (tmp_path / name).write_bytes(b"junk")
        (tmp_path / "other.ckpt.k2j9.tmp").write_bytes(b"keep")
        removed = sweep_stale_tmp_files(path)
        assert sorted(os.path.basename(p) for p in removed) == [
            "c.ckpt.inc1.x7.tmp", "c.ckpt.k2j9.tmp",
        ]
        assert (tmp_path / "other.ckpt.k2j9.tmp").exists()
        assert read_checkpoint_info(path) is not None

    def test_sink_sweeps_orphans_from_a_killed_predecessor(self, tmp_path):
        database, engine = toy_engine()
        path = str(tmp_path / "c.ckpt")
        install_injector(FaultInjector((
            FaultSpec("crash", site="checkpoint.write"),
        )))
        sink = checkpoint_sink(path)
        with pytest.raises(InjectedFault):
            sink(engine, 10)
        assert len(tmp_orphans(tmp_path)) == 1
        clear_injector()
        # The next writer (here: the same sink, as after a recovery)
        # sweeps the orphan before staging its own scratch file.
        sink(engine, 20)
        assert tmp_orphans(tmp_path) == []
        assert read_checkpoint_info(path).metadata["events_processed"] == 20

    def test_restore_round_trips_after_crash_and_retry(self, tmp_path):
        database, engine = toy_engine()
        path = str(tmp_path / "c.ckpt")
        install_injector(FaultInjector((
            FaultSpec("crash", site="checkpoint.write"),
        )))
        with pytest.raises(InjectedFault):
            write_checkpoint(engine, path)
        clear_injector()
        write_checkpoint(engine, path)
        restored = create_engine(toy_count_query(), order=toy_variable_order())
        restore_checkpoint(restored, path)
        assert restored.result() == engine.result()


class TestTruncatedCheckpoints:
    def test_truncated_file_refuses_to_load(self, tmp_path):
        database, engine = toy_engine()
        path = str(tmp_path / "c.ckpt")
        install_injector(FaultInjector((
            FaultSpec("truncate", site="checkpoint.finish", bytes_kept=8),
        )))
        write_checkpoint(engine, path)
        assert os.path.getsize(path) == 8
        with pytest.raises(CheckpointError):
            read_checkpoint_info(path)


class TestBrokenChains:
    def write_chain(self, tmp_path, links=2):
        database, engine = toy_engine(events_applied=0)
        stream = UpdateStream(
            database,
            toy_row_factories(),
            targets=("R", "S"),
            batch_size=10,
            insert_ratio=0.6,
            seed=31,
        )
        events = list(stream.tuples(40 * (links + 1)))
        paths = []
        prev = None
        for i in range(links + 1):
            engine.apply_stream(
                iter(events[i * 40:(i + 1) * 40]), batch_size=10
            )
            path = str(tmp_path / ("c.ckpt" if i == 0 else f"c.ckpt.inc{i}"))
            state = engine.export_state()
            info = write_checkpoint(engine, path, base=prev, state=state)
            prev = (info, state)
            paths.append(path)
        return engine, paths

    def test_corrupt_mid_link_names_link_and_restart_point(self, tmp_path):
        _engine, paths = self.write_chain(tmp_path)
        with open(paths[1], "r+b") as handle:
            handle.truncate(8)
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint_chain(paths[2])
        message = str(excinfo.value)
        assert f"broken at link {paths[1]!r}" in message
        assert f"newest restorable full checkpoint: {paths[0]!r}" in message

    def test_missing_mid_link_names_restart_point(self, tmp_path):
        _engine, paths = self.write_chain(tmp_path)
        os.unlink(paths[1])
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint_chain(paths[2])
        message = str(excinfo.value)
        assert "does not exist" in message
        assert f"newest restorable full checkpoint: {paths[0]!r}" in message

    def test_no_restart_point_when_full_snapshot_is_gone_too(self, tmp_path):
        _engine, paths = self.write_chain(tmp_path)
        os.unlink(paths[1])
        os.unlink(paths[0])
        with pytest.raises(
            CheckpointError, match="newest restorable full checkpoint: "
            "none found"
        ):
            load_checkpoint_chain(paths[2])

    def test_chain_head_resolution_ignores_tmp_orphans(self, tmp_path):
        _engine, paths = self.write_chain(tmp_path)
        (tmp_path / "c.ckpt.inc3.zz.tmp").write_bytes(b"junk")
        assert resolve_chain_head(paths[0]) == paths[2]
