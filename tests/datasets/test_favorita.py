"""Synthetic Favorita: schemas, determinism, view tree."""

import pytest

from repro.datasets import (
    FAVORITA_SCHEMAS,
    FavoritaConfig,
    favorita_query,
    favorita_regression_features,
    favorita_row_factories,
    favorita_variable_order,
    generate_favorita,
)
from repro.rings import CountSpec


@pytest.fixture(scope="module")
def config():
    return FavoritaConfig(stores=5, dates=12, items=20, sales_rows=200, seed=4)


@pytest.fixture(scope="module")
def db(config):
    return generate_favorita(config)


class TestSchemas:
    def test_six_relations(self):
        assert [s.name for s in FAVORITA_SCHEMAS] == [
            "Sales",
            "Items",
            "Stores",
            "Transactions",
            "Oil",
            "Holiday",
        ]

    def test_join_keys(self):
        query = favorita_query(CountSpec())
        assert set(query.join_attributes) == {"date", "store", "item"}
        assert query.is_acyclic()


class TestGenerator:
    def test_deterministic(self, config):
        db1 = generate_favorita(config)
        db2 = generate_favorita(config)
        for schema in FAVORITA_SCHEMAS:
            assert db1.relation(schema.name) == db2.relation(schema.name)

    def test_cardinalities(self, config, db):
        assert len(db.relation("Stores")) == config.stores
        assert len(db.relation("Oil")) == config.dates
        assert len(db.relation("Items")) == config.items
        assert len(db.relation("Transactions")) == config.stores * config.dates

    def test_join_nonempty(self, db):
        sales = db.relation("Sales")
        items = db.relation("Items")
        assert len(sales.join(items)) > 0

    def test_promotion_lifts_sales(self, db):
        promoted, other = [], []
        for key, mult in db.relation("Sales").data.items():
            (promoted if key[4] else other).extend([key[3]] * mult)
        assert sum(promoted) / len(promoted) > sum(other) / len(other)


class TestOrderAndFeatures:
    def test_variable_order_valid(self):
        order = favorita_variable_order()
        order.validate(favorita_query(CountSpec()))
        assert order.roots[0].variable == "date"
        assert order.anchor_of("Sales") == "item"
        assert order.anchor_of("Oil") == "date"

    def test_regression_features(self):
        features, label = favorita_regression_features()
        assert label == "unitsales"
        assert {f.name for f in features} >= {"onpromotion", "oilprize"}

    def test_row_factories(self, config, db):
        factories = favorita_row_factories(config, db)
        row = factories["Sales"](config.rng())
        assert len(row) == 5
