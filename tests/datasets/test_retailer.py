"""Synthetic Retailer: schemas, determinism, correlations, view tree."""


from repro.datasets import (
    RETAILER_SCHEMAS,
    continuous_covar_features,
    generate_retailer,
    mi_features,
    regression_features,
    retailer_query,
    retailer_row_factories,
    retailer_variable_order,
)
from repro.rings import CountSpec


class TestSchemas:
    def test_five_relations(self):
        assert [s.name for s in RETAILER_SCHEMAS] == [
            "Inventory",
            "Location",
            "Census",
            "Item",
            "Weather",
        ]

    def test_43_distinct_attributes(self):
        attrs = set()
        for schema in RETAILER_SCHEMAS:
            attrs.update(schema.attributes)
        assert len(attrs) == 43  # the Figure 2c attribute list

    def test_join_keys(self):
        query = retailer_query(CountSpec())
        assert set(query.join_attributes) == {"locn", "dateid", "ksn", "zip"}
        assert query.is_acyclic()


class TestGenerator:
    def test_deterministic(self, small_retailer_config):
        db1 = generate_retailer(small_retailer_config)
        db2 = generate_retailer(small_retailer_config)
        for schema in RETAILER_SCHEMAS:
            assert db1.relation(schema.name) == db2.relation(schema.name)

    def test_schemas_match(self, small_retailer_db):
        for schema in RETAILER_SCHEMAS:
            assert small_retailer_db.relation(schema.name).schema == schema.attributes

    def test_dimension_cardinalities(self, small_retailer_config, small_retailer_db):
        assert len(small_retailer_db.relation("Location")) == small_retailer_config.locations
        assert len(small_retailer_db.relation("Census")) == small_retailer_config.locations
        assert len(small_retailer_db.relation("Item")) == small_retailer_config.items
        assert (
            len(small_retailer_db.relation("Weather"))
            == small_retailer_config.locations * small_retailer_config.dates
        )

    def test_join_is_nonempty(self, small_retailer_db):
        inv = small_retailer_db.relation("Inventory")
        item = small_retailer_db.relation("Item")
        assert len(inv.join(item)) > 0

    def test_inventory_skewed_towards_low_ksn(self, small_retailer_db):
        ksn_counts = {}
        for key, mult in small_retailer_db.relation("Inventory").data.items():
            ksn_counts[key[2]] = ksn_counts.get(key[2], 0) + mult
        low = sum(c for k, c in ksn_counts.items() if k < 5)
        high = sum(c for k, c in ksn_counts.items() if k >= 5)
        assert low > high  # zipf skew

    def test_price_correlates_with_subcategory(self, small_retailer_db):
        rows = list(small_retailer_db.relation("Item").data)
        # Same subcategory -> similar base price (band of ±3*sigma around 5+3*sub).
        for ksn, subcategory, _cat, _cl, prize in rows:
            assert abs(prize - (5.0 + 3.0 * subcategory)) < 8.0


class TestRowFactories:
    def test_factories_produce_valid_rows(self, small_retailer_config, small_retailer_db):
        factories = retailer_row_factories(small_retailer_config, small_retailer_db)
        rng = small_retailer_config.rng()
        inv_row = factories["Inventory"](rng)
        assert len(inv_row) == 4
        weather_row = factories["Weather"](rng)
        assert len(weather_row) == 8


class TestFeatureSets:
    def test_regression_features(self):
        features, label = regression_features()
        assert label == "inventoryunits"
        names = [f.name for f in features]
        assert "prize" in names and "ksn" in names

    def test_continuous_features_cover_everything(self):
        features = continuous_covar_features()
        assert len(features) == 43
        assert all(not f.is_categorical for f in features)
        # 1 + m + m(m+1)/2 aggregates maintained as one payload
        m = len(features)
        assert 1 + m + m * (m + 1) // 2 == 990

    def test_limited_continuous_features(self):
        assert len(continuous_covar_features(5)) == 5

    def test_mi_features_all_binned_or_categorical(self, small_retailer_db):
        features = mi_features(small_retailer_db, bins=4)
        assert len(features) == 43
        assert all(f.is_categorical for f in features)


class TestVariableOrder:
    def test_matches_figure_2d(self):
        order = retailer_variable_order()
        query = retailer_query(CountSpec())
        order.validate(query)
        assert order.roots[0].variable == "locn"
        assert order.anchor_of("Inventory") == "ksn"
        assert order.anchor_of("Weather") == "dateid"
        assert order.anchor_of("Census") == "zip"
        assert order.dependency_set(query, "ksn") == ("locn", "dateid")
        assert order.dependency_set(query, "zip") == ("locn",)
