"""Update streams: determinism, delete safety, bulks."""

import pytest

from repro.data import Database, Relation
from repro.datasets import UpdateStream
from repro.errors import DataError


def tiny_db():
    return Database(
        [
            Relation.from_tuples(("A", "B"), [(i, i % 3) for i in range(20)], name="R"),
            Relation.from_tuples(("A", "C"), [(i, i % 2) for i in range(10)], name="S"),
        ]
    )


def factory(rng):
    return (int(rng.integers(0, 50)), int(rng.integers(0, 3)))


class TestStream:
    def test_deterministic(self):
        def collect():
            stream = UpdateStream(
                tiny_db(), {"R": factory}, batch_size=5, insert_ratio=0.5, seed=7
            )
            return [(name, dict(delta.data)) for name, delta in stream.batches(6)]

        assert collect() == collect()

    def test_round_robin_targets(self):
        stream = UpdateStream(
            tiny_db(),
            {"R": factory, "S": factory},
            batch_size=3,
            seed=1,
        )
        names = [name for name, _ in stream.batches(4)]
        assert names == ["R", "S", "R", "S"]

    def test_shadow_never_goes_negative(self):
        stream = UpdateStream(
            tiny_db(), {"R": factory}, batch_size=10, insert_ratio=0.2, seed=3
        )
        for _name, _delta in stream.batches(20):
            for multiplicity in stream.shadow.relation("R").data.values():
                assert multiplicity > 0

    def test_original_database_untouched(self):
        db = tiny_db()
        before = dict(db.relation("R").data)
        stream = UpdateStream(db, {"R": factory}, batch_size=5, seed=0)
        list(stream.batches(5))
        assert db.relation("R").data == before

    def test_insert_only_stream(self):
        stream = UpdateStream(
            tiny_db(), {"R": factory}, batch_size=8, insert_ratio=1.0, seed=2
        )
        _, delta = stream.next_batch()
        assert all(m > 0 for m in delta.data.values())

    def test_delete_only_stream_drains(self):
        db = tiny_db()
        stream = UpdateStream(
            db, {}, targets=("R",), batch_size=50, insert_ratio=0.0, seed=2
        )
        _, delta = stream.next_batch()
        assert all(m < 0 for m in delta.data.values())
        assert len(stream.shadow.relation("R")) == 0
        # Exhausted relation without factory: empty batches from now on.
        _, empty = stream.next_batch()
        assert not empty.data

    def test_batch_size_updates(self):
        stream = UpdateStream(
            tiny_db(), {"R": factory}, batch_size=12, insert_ratio=1.0, seed=5
        )
        _, delta = stream.next_batch()
        assert sum(delta.data.values()) == 12

    def test_bulk_emits_requested_updates(self):
        stream = UpdateStream(
            tiny_db(), {"R": factory}, batch_size=10, insert_ratio=0.9, seed=5
        )
        total = sum(
            sum(abs(m) for m in delta.data.values())
            for _name, delta in stream.bulk(35)
        )
        assert total >= 35


class TestValidation:
    def test_bad_batch_size(self):
        with pytest.raises(DataError):
            UpdateStream(tiny_db(), {"R": factory}, batch_size=0)

    def test_bad_ratio(self):
        with pytest.raises(DataError):
            UpdateStream(tiny_db(), {"R": factory}, insert_ratio=1.5)

    def test_no_targets(self):
        with pytest.raises(DataError):
            UpdateStream(tiny_db(), {})

    def test_unknown_target(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            UpdateStream(tiny_db(), {"Nope": factory})

    def test_bad_factory_arity(self):
        stream = UpdateStream(
            tiny_db(), {"R": lambda rng: (1, 2, 3)}, batch_size=1, seed=0
        )
        with pytest.raises(DataError):
            stream.next_batch()
