"""The Figure-1 toy dataset."""

from repro.datasets import (
    toy_count_query,
    toy_covar_categorical_query,
    toy_covar_continuous_query,
    toy_database,
    toy_mi_query,
    toy_variable_order,
)


class TestToyDatabase:
    def test_contents_match_figure(self):
        db = toy_database()
        assert db.relation("R").data == {("a1", 1): 1, ("a2", 2): 1}
        assert db.relation("S").data == {
            ("a1", 1, 1): 1,
            ("a1", 2, 3): 1,
            ("a2", 2, 2): 1,
        }

    def test_fresh_copy_each_call(self):
        db1 = toy_database()
        db1.relation("R").data.clear()
        assert len(toy_database().relation("R").data) == 2

    def test_join_size_is_3(self):
        db = toy_database()
        assert db.relation("R").join(db.relation("S")).total() == 3


class TestToyQueries:
    def test_order_valid_for_all_scenarios(self):
        order = toy_variable_order()
        for query in (
            toy_count_query(),
            toy_covar_continuous_query(),
            toy_covar_categorical_query(),
            toy_mi_query(),
        ):
            order.validate(query)

    def test_spec_kinds(self):
        assert toy_count_query().build_plan().ring.name == "Z"
        assert toy_covar_continuous_query().build_plan().ring.degree == 3
        assert toy_mi_query().build_plan().ring.scalar.name == "Rel"
