"""Delta construction helpers."""

from repro.data import delta_of, deletes, inserts, split_delta


class TestInsertsDeletes:
    def test_inserts_accumulate(self):
        delta = inserts(("A",), [("x",), ("x",), ("y",)])
        assert delta.data == {("x",): 2, ("y",): 1}

    def test_deletes_are_negative(self):
        delta = deletes(("A",), [("x",)])
        assert delta.data == {("x",): -1}

    def test_mixed_delta_cancels(self):
        delta = delta_of(("A",), inserted=[("x",), ("y",)], deleted=[("x",)])
        assert delta.data == {("y",): 1}

    def test_split_delta(self):
        delta = delta_of(("A",), inserted=[("x",), ("x",)], deleted=[("y",)])
        ins, dels = split_delta(delta)
        assert ins.data == {("x",): 2}
        assert dels.data == {("y",): 1}

    def test_split_empty(self):
        ins, dels = split_delta(inserts(("A",), []))
        assert not ins.data and not dels.data
