"""Persistent relation indexes: consistency, probing, cancellation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro.data.relation as relation_module
from repro.data import IndexedRelation, Relation, RelationIndex
from repro.errors import DataError, SchemaError
from repro.rings.scalar import FloatRing, Z


def z_relation(schema, entries):
    relation = Relation(schema, Z)
    relation.data = dict(entries)
    return relation


def indexed(schema, entries, attrs):
    relation = IndexedRelation(schema, Z)
    relation.data = dict(entries)
    relation.add_index(attrs)
    return relation


class TestRelationIndex:
    def test_build_groups_by_hook(self):
        index = RelationIndex(("A", "B"), ("A",))
        index.build({("x", 1): 2, ("x", 2): 3, ("y", 1): 4})
        assert index.get("x") == {("x", 1): 2, ("x", 2): 3}
        assert index.get("y") == {("y", 1): 4}
        assert index.get("z") is None
        assert index.entry_count() == 3
        assert index.bucket_count() == 2

    def test_multi_attr_hook_is_tuple(self):
        index = RelationIndex(("A", "B", "C"), ("A", "B"))
        index.build({("x", 1, "p"): 5})
        assert index.get(("x", 1)) == {("x", 1, "p"): 5}

    def test_empty_attrs_single_bucket(self):
        index = RelationIndex(("A", "B"), ())
        index.build({("x", 1): 1, ("y", 2): 2})
        assert index.bucket_count() == 1
        assert index.get(()) == {("x", 1): 1, ("y", 2): 2}

    def test_unknown_attr_rejected(self):
        with pytest.raises(SchemaError):
            RelationIndex(("A", "B"), ("Z",))

    def test_discard_removes_empty_bucket(self):
        index = RelationIndex(("A", "B"), ("A",))
        index.build({("x", 1): 2})
        index.discard(("x", 1))
        assert index.get("x") is None
        assert index.bucket_count() == 0
        index.discard(("x", 1))  # idempotent on absent entries


class TestIndexedRelationMaintenance:
    def test_add_inplace_keeps_index_consistent(self):
        relation = indexed(("A", "B"), {("x", 1): 2}, ("A",))
        relation.add_inplace(z_relation(("A", "B"), {("x", 2): 3, ("y", 1): 1}))
        index = relation.index_on(("A",))
        assert index.get("x") == {("x", 1): 2, ("x", 2): 3}
        assert index.get("y") == {("y", 1): 1}
        assert index.entry_count() == len(relation)

    def test_insert_then_delete_empties_bucket(self):
        """Cancellation must drop index buckets, not leave dead ones."""
        relation = indexed(("A", "B"), {}, ("A",))
        relation.add_inplace(z_relation(("A", "B"), {("x", 1): 1, ("x", 2): 1}))
        relation.add_inplace(z_relation(("A", "B"), {("x", 1): -1}))
        index = relation.index_on(("A",))
        assert index.get("x") == {("x", 2): 1}
        relation.add_inplace(z_relation(("A", "B"), {("x", 2): -1}))
        assert index.get("x") is None
        assert index.bucket_count() == 0
        assert relation.data == {}

    def test_generic_path_maintains_index(self, monkeypatch):
        monkeypatch.setattr(relation_module, "SCALAR_FASTPATH", False)
        relation = indexed(("A", "B"), {("x", 1): 2}, ("A",))
        delta = Relation(("A", "B"), Z)
        delta.data = {("x", 1): -2, ("y", 3): 0, ("z", 4): 5}
        relation.add_inplace(delta)
        index = relation.index_on(("A",))
        assert index.get("x") is None  # cancelled
        assert index.get("y") is None  # ring-zero payload never parked
        assert index.get("z") == {("z", 4): 5}

    def test_tolerance_ring_drops_near_zero_from_index(self):
        ring = FloatRing(zero_tolerance=1e-9)
        relation = IndexedRelation(("A",), ring)
        relation.data = {("x",): 1.0}
        relation.add_index(("A",))
        delta = Relation(("A",), ring)
        delta.data = {("x",): -1.0 + 1e-12}
        relation.add_inplace(delta)
        assert relation.index_on(("A",)).entry_count() == 0

    def test_multiple_indexes_updated_together(self):
        relation = IndexedRelation(("A", "B"), Z)
        relation.add_index(("A",))
        relation.add_index(("B",))
        relation.add_inplace(z_relation(("A", "B"), {("x", 1): 1}))
        assert relation.index_on(("A",)).get("x") == {("x", 1): 1}
        assert relation.index_on(("B",)).get(1) == {("x", 1): 1}

    def test_add_index_is_idempotent(self):
        relation = indexed(("A", "B"), {("x", 1): 1}, ("A",))
        again = relation.add_index(("A",))
        assert again is relation.index_on(("A",))
        assert len(relation.indexes) == 1

    def test_index_on_missing_raises(self):
        relation = indexed(("A", "B"), {}, ("A",))
        with pytest.raises(DataError):
            relation.index_on(("B",))

    def test_from_relation_shares_entries(self):
        base = z_relation(("A",), {("x",): 1})
        wrapped = IndexedRelation.from_relation(base)
        assert wrapped.data is base.data
        assert wrapped.schema == base.schema


class TestJoinProbe:
    def probe_pair(self, left_entries, right_entries, attrs=("A",)):
        left = z_relation(("A", "B"), left_entries)
        right = indexed(("A", "C"), right_entries, attrs)
        return left, right

    def test_matches_join(self):
        left, right = self.probe_pair(
            {("x", 1): 2, ("y", 2): 3, ("w", 9): 1},
            {("x", 10): 5, ("x", 11): 7, ("y", 12): -3},
        )
        probed = left.join_probe(right, right.index_on(("A",)))
        assert probed == left.join(right)
        assert probed.schema == ("A", "B", "C")

    def test_matches_join_generic_path(self, monkeypatch):
        monkeypatch.setattr(relation_module, "SCALAR_FASTPATH", False)
        self.test_matches_join()

    def test_cartesian_probe(self):
        left = z_relation(("B",), {(1,): 2})
        right = IndexedRelation(("C",), Z)
        right.data = {(7,): 3, (8,): 4}
        right.add_index(())
        probed = left.join_probe(right, right.index_on(()))
        assert probed == left.join(right)
        assert len(probed) == 2

    def test_mismatched_index_rejected(self):
        left = z_relation(("A", "B"), {("x", 1): 1})
        right = IndexedRelation(("A", "C"), Z)
        right.data = {("x", 2): 1}
        stale = right.add_index(("C",))  # not the shared attributes
        with pytest.raises(DataError):
            left.join_probe(right, stale)

    def test_counters_advance(self):
        left, right = self.probe_pair(
            {("x", 1): 1, ("z", 2): 1}, {("x", 10): 1}
        )
        index = right.index_on(("A",))
        left.join_probe(right, index)
        assert index.probes == 2
        assert index.hits == 1

    def test_probe_after_maintenance_matches_fresh_join(self):
        left, right = self.probe_pair({("x", 1): 1}, {("x", 10): 1})
        right.add_inplace(z_relation(("A", "C"), {("x", 11): 4, ("x", 10): -1}))
        probed = left.join_probe(right, right.index_on(("A",)))
        assert probed == left.join(right)

    @given(
        st.dictionaries(
            st.tuples(st.integers(0, 5), st.integers(0, 3)),
            st.integers(-3, 3).filter(bool),
            max_size=12,
        ),
        st.dictionaries(
            st.tuples(st.integers(0, 5), st.integers(0, 3)),
            st.integers(-3, 3).filter(bool),
            max_size=12,
        ),
    )
    def test_probe_equals_join_on_random_inputs(self, left_entries, right_entries):
        left = z_relation(("A", "B"), left_entries)
        right = indexed(("A", "C"), right_entries, ("A",))
        assert left.join_probe(right, right.index_on(("A",))) == left.join(right)
