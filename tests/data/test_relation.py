"""Relations: join, marginalize, lift, union and deltas."""

import pytest
from hypothesis import given

from repro.data import Relation
from repro.errors import DataError, SchemaError
from repro.rings import CofactorLayout, FloatRing, NumericCofactorRing, Z

from tests.conftest import z_relation_strategy


@pytest.fixture
def r():
    return Relation.from_tuples(("A", "B"), [("a1", 1), ("a1", 1), ("a2", 2)])


class TestConstruction:
    def test_from_tuples_accumulates_multiplicity(self, r):
        assert r.data == {("a1", 1): 2, ("a2", 2): 1}

    def test_zero_payloads_dropped(self):
        relation = Relation(("A",), Z, {("x",): 0, ("y",): 2})
        assert relation.data == {("y",): 2}

    def test_bad_key_arity(self):
        with pytest.raises(DataError):
            Relation(("A",), Z, {("x", "y"): 1})
        with pytest.raises(DataError):
            Relation.from_tuples(("A",), [("x", "y")])

    def test_duplicate_schema(self):
        with pytest.raises(SchemaError):
            Relation(("A", "A"))

    def test_copy_is_shallow_but_independent(self, r):
        clone = r.copy()
        clone.data[("a3", 3)] = 1
        assert ("a3", 3) not in r.data

    def test_payload_default_zero(self, r):
        assert r.payload(("zzz", 9)) == 0
        assert r.payload(("a1", 1)) == 2

    def test_contains_and_len(self, r):
        assert ("a1", 1) in r
        assert len(r) == 2


class TestUnionAndNegation:
    def test_add(self, r):
        other = Relation(("A", "B"), Z, {("a1", 1): 1, ("a3", 3): 4})
        total = r.add(other)
        assert total.data == {("a1", 1): 3, ("a2", 2): 1, ("a3", 3): 4}
        # purity
        assert r.data[("a1", 1)] == 2

    def test_add_inplace_cancellation(self, r):
        r.add_inplace(Relation(("A", "B"), Z, {("a1", 1): -2}))
        assert ("a1", 1) not in r.data

    def test_add_schema_mismatch(self, r):
        with pytest.raises(SchemaError):
            r.add(Relation(("A", "C")))

    def test_neg(self, r):
        assert r.neg().data == {("a1", 1): -2, ("a2", 2): -1}

    def test_scale(self, r):
        assert r.scale(3).data == {("a1", 1): 6, ("a2", 2): 3}
        assert r.scale(0).data == {}

    def test_filter(self, r):
        kept = r.filter(lambda key: key[0] == "a1")
        assert kept.data == {("a1", 1): 2}


class TestJoin:
    def test_natural_join_multiplies_payloads(self):
        r = Relation(("A", "B"), Z, {("a1", "b1"): 2, ("a2", "b2"): 1})
        s = Relation(("A", "C"), Z, {("a1", "c1"): 3, ("a3", "c3"): 1})
        j = r.join(s)
        assert j.schema == ("A", "B", "C")
        assert j.data == {("a1", "b1", "c1"): 6}

    def test_join_without_shared_attrs_is_product(self):
        r = Relation(("A",), Z, {("a1",): 2})
        s = Relation(("B",), Z, {("b1",): 3, ("b2",): 1})
        j = r.join(s)
        assert j.data == {("a1", "b1"): 6, ("a1", "b2"): 2}

    def test_join_both_probe_directions_agree(self):
        # r smaller than s and vice versa exercise both code paths.
        r = Relation(("A", "B"), Z, {("a1", "b1"): 2})
        s = Relation(
            ("A", "C"), Z, {("a1", "c1"): 1, ("a1", "c2"): 4, ("a2", "c1"): 5}
        )
        forward = r.join(s)
        backward = s.join(r)
        assert forward.data.keys() == {("a1", "b1", "c1"), ("a1", "b1", "c2")}
        # same content modulo column order
        assert forward.marginalize(()).payload(()) == backward.marginalize(()).payload(())

    def test_join_empty(self):
        r = Relation(("A",), Z, {("a1",): 1})
        assert r.join(Relation(("A",))).data == {}

    def test_join_ring_mismatch(self):
        r = Relation(("A",), Z, {("a1",): 1})
        s = Relation(("A",), FloatRing(), {("a1",): 1.0})
        with pytest.raises(DataError):
            r.join(s)

    def test_join_negative_payload_cancellation(self):
        r = Relation(("A", "B"), Z, {("a1", "b1"): 1, ("a1", "b2"): -1})
        s = Relation(("A",), Z, {("a1",): 1})
        j = r.join(s).marginalize(("A",))
        assert j.data == {}


class TestMarginalize:
    def test_group_by_sums_payloads(self, r):
        m = r.marginalize(("A",))
        assert m.data == {("a1",): 2, ("a2",): 1}

    def test_full_aggregation(self, r):
        m = r.marginalize(())
        assert m.data == {(): 3}

    def test_lift_applied_to_marginalized_attr(self):
        ring = FloatRing()
        rel = Relation(("A", "B"), ring, {("a1", 2): 1.0, ("a1", 3): 1.0})
        m = rel.marginalize(("A",), {"B": lambda b: float(b) * 10})
        assert m.data == {("a1",): 50.0}

    def test_lifting_kept_attr_rejected(self, r):
        with pytest.raises(SchemaError):
            r.marginalize(("A",), {"A": lambda a: 1})

    def test_unknown_keep_attr(self, r):
        with pytest.raises(SchemaError):
            r.marginalize(("Z",))

    def test_project_alias(self, r):
        assert r.project(("A",)) == r.marginalize(("A",))

    def test_total(self, r):
        assert r.total() == 3


class TestLift:
    def test_lift_to_cofactor_ring(self):
        layout = CofactorLayout(("B",))
        ring = NumericCofactorRing(layout)
        base = Relation.from_tuples(("A", "B"), [("a1", 2), ("a1", 3), ("a2", 5)])
        lifted = base.lift(ring, ("A",), {"B": lambda b: ring.lift(0, float(b))})
        a1 = lifted.payload(("a1",))
        assert a1.c == 2.0
        assert a1.s[0] == 5.0
        assert a1.q[0, 0] == 13.0

    def test_lift_scales_by_multiplicity(self):
        ring = FloatRing()
        base = Relation(("A",), Z, {("a1",): 3})
        lifted = base.lift(ring, ("A",))
        assert lifted.payload(("a1",)) == 3.0

    def test_lift_negative_multiplicity(self):
        ring = FloatRing()
        base = Relation(("A",), Z, {("a1",): -2})
        lifted = base.lift(ring, ())
        assert lifted.payload(()) == -2.0

    def test_lift_cancellation_prunes(self):
        ring = FloatRing()
        base = Relation(("A", "B"), Z, {("a1", 1): 1, ("a1", -1): 1})
        lifted = base.lift(ring, ("A",), {"B": float})
        assert lifted.data == {}

    def test_lift_requires_z_payloads(self):
        rel = Relation(("A",), FloatRing(), {("a1",): 1.0})
        with pytest.raises(DataError):
            rel.lift(FloatRing(), ())


class TestComparison:
    def test_eq(self, r):
        assert r == r.copy()
        assert r != r.neg()

    def test_close_to_float(self):
        ring = FloatRing()
        a = Relation(("A",), ring, {("x",): 1.0})
        b = Relation(("A",), ring, {("x",): 1.0 + 1e-12})
        assert a.close_to(b)
        assert not a.close_to(Relation(("A",), ring, {("x",): 2.0}))

    def test_close_to_int_falls_back_to_eq(self, r):
        assert r.close_to(r.copy())


# ----------------------------------------------------------------------
# Algebraic properties of the relation operations
# ----------------------------------------------------------------------


@given(
    z_relation_strategy(("A", "B")),
    z_relation_strategy(("A", "C")),
)
def test_join_total_commutes(r, s):
    """Total aggregate of r ⋈ s is independent of operand order."""
    left = r.join(s).marginalize(()).payload(())
    right = s.join(r).marginalize(()).payload(())
    assert left == right


@given(
    z_relation_strategy(("A", "B")),
    z_relation_strategy(("A", "C")),
    z_relation_strategy(("C", "D")),
)
def test_join_associative_on_totals(r, s, t):
    left = r.join(s.join(t)).marginalize(()).payload(())
    right = r.join(s).join(t).marginalize(()).payload(())
    assert left == right


@given(z_relation_strategy(("A", "B")), z_relation_strategy(("A", "B")))
def test_join_distributes_over_union(r1, r2):
    """(r1 + r2) ⋈ s == r1 ⋈ s + r2 ⋈ s — the linearity delta processing
    relies on."""
    s = Relation(("A", "C"), Z, {(0, 1): 2, (1, 0): -1, (2, 2): 3})
    combined = r1.add(r2).join(s)
    separate = r1.join(s).add(r2.join(s))
    assert combined == separate


@given(z_relation_strategy(("A", "B")))
def test_marginalize_then_total_matches_direct_total(r):
    assert r.marginalize(("A",)).total() == r.total()


@given(z_relation_strategy(("A", "B")), z_relation_strategy(("A", "B")))
def test_lift_distributes_over_union(r1, r2):
    """lift(r1 + r2) == lift(r1) + lift(r2) — the leaf-level linearity
    that makes delta lifting correct for mixed insert/delete batches."""
    layout = CofactorLayout(("B",))
    ring = NumericCofactorRing(layout)
    lifts = {"B": lambda b: ring.lift(0, float(b))}
    combined = r1.add(r2).lift(ring, ("A",), lifts)
    separate = r1.lift(ring, ("A",), lifts).add(r2.lift(ring, ("A",), lifts))
    assert combined.close_to(separate, 1e-9)


class TestZeroDropRegression:
    """add_inplace must never park ring-zero payloads — cancelled updates
    in long streams would otherwise leak dead entries (issue #1)."""

    def test_zero_payload_for_absent_key_is_not_inserted(self):
        target = Relation(("A",), Z, {("x",): 1})
        other = Relation(("A",))
        other.data[("y",)] = 0  # bypass constructor pruning
        target.add_inplace(other)
        assert ("y",) not in target.data

    def test_zero_payload_skipped_on_generic_path_too(self, monkeypatch):
        import repro.data.relation as relation_module

        monkeypatch.setattr(relation_module, "SCALAR_FASTPATH", False)
        target = Relation(("A",), Z, {("x",): 1})
        other = Relation(("A",))
        other.data[("y",)] = 0
        target.add_inplace(other)
        assert ("y",) not in target.data

    def test_tolerance_ring_drops_near_zero_payloads(self):
        ring = FloatRing(zero_tolerance=1e-9)
        assert not ring.is_scalar  # tolerance forces the generic path
        target = Relation(("A",), ring, {("x",): 1.0})
        other = Relation(("A",), ring)
        other.data[("y",)] = 1e-12
        target.add_inplace(other)
        assert ("y",) not in target.data

    def test_cancellation_removes_key_on_both_paths(self, monkeypatch):
        import repro.data.relation as relation_module

        for fastpath in (True, False):
            monkeypatch.setattr(relation_module, "SCALAR_FASTPATH", fastpath)
            target = Relation(("A",), Z, {("x",): 2})
            other = Relation(("A",), Z, {("x",): -2})
            target.add_inplace(other)
            assert target.data == {}

    def test_scalar_fastpath_flag_is_on_by_default(self):
        import repro.data.relation as relation_module

        assert relation_module.SCALAR_FASTPATH is True
        assert Z.is_scalar and FloatRing().is_scalar
