"""ShardRouter: stable hashing, delta splitting, database partitioning."""

import pytest

from repro.data import Relation, ShardRouter, shard_hash
from repro.datasets import (
    RetailerConfig,
    generate_retailer,
    retailer_query,
    retailer_variable_order,
    toy_count_query,
    toy_variable_order,
)
from repro.errors import DataError, QueryError
from repro.rings import CountSpec
from repro.viewtree import build_shard_plan, build_view_tree

SCHEMAS = {
    "R": ("A", "B"),
    "S": ("A", "C", "D"),
    "T": ("C", "E"),
}


def make_router(shards=4, attrs=("A",)):
    return ShardRouter(SCHEMAS, attrs, shards)


class TestShardHash:
    def test_deterministic_across_calls(self):
        assert shard_hash(("a1", 3)) == shard_hash(("a1", 3))

    def test_value_types(self):
        # ints, floats and strings all hash without error, and by value.
        assert shard_hash((1,)) != shard_hash((2,))
        assert shard_hash((1.5,)) == shard_hash((1.5,))
        assert shard_hash(("x",)) == shard_hash(("x",))

    def test_equal_keys_hash_equal_across_types(self):
        # Relation dicts treat 1 and 1.0 as one key; routing must too,
        # or a delete carrying 1.0 misses the shard that holds 1.
        assert shard_hash((1,)) == shard_hash((1.0,))
        assert shard_hash((-3,)) == shard_hash((-3.0,))
        assert shard_hash((True,)) == shard_hash((1,))

    def test_sequential_ints_balance(self):
        shards = [shard_hash((i,)) % 4 for i in range(64)]
        counts = [shards.count(s) for s in range(4)]
        assert min(counts) > 0, f"unbalanced: {counts}"


class TestShardRouter:
    def test_routed_and_broadcast_sets(self):
        router = make_router()
        assert set(router.routed) == {"R", "S"}
        assert set(router.broadcast) == {"T"}

    def test_shard_of_is_row_content_only(self):
        router = make_router()
        # Same A value -> same shard regardless of the other attributes,
        # so a delete always follows its insert.
        assert router.shard_of("R", ("a1", 7)) == router.shard_of("R", ("a1", 99))
        assert router.shard_of("R", ("a1", 0)) == router.shard_of("S", ("a1", 1, 2))

    def test_broadcast_shard_is_none(self):
        router = make_router()
        assert router.shard_of("T", (3, 4)) is None
        assert not router.is_routed("T")

    def test_split_partitions_delta_exactly(self):
        router = make_router()
        delta = Relation(SCHEMAS["R"], name="R")
        delta.data = {(f"a{i}", i): (1 if i % 2 else -1) for i in range(20)}
        parts = router.split("R", delta)
        merged = {}
        for shard, sub in parts:
            assert 0 <= shard < router.shards
            for key, mult in sub.data.items():
                assert key not in merged, "key routed to two shards"
                assert router.shard_of("R", key) == shard
                merged[key] = mult
        assert merged == delta.data

    def test_split_broadcast_hits_every_shard(self):
        router = make_router()
        delta = Relation(SCHEMAS["T"], name="T")
        delta.data = {(1, 2): 1}
        parts = router.split("T", delta)
        assert [shard for shard, _ in parts] == [0, 1, 2, 3]
        assert all(sub.data == delta.data for _, sub in parts)

    def test_split_single_shard_short_circuit(self):
        router = make_router(shards=1)
        delta = Relation(SCHEMAS["R"], name="R")
        delta.data = {("a1", 1): 1}
        assert router.split("R", delta) == [(0, delta)]
        assert router.split("R", Relation(SCHEMAS["R"], name="R")) == []

    def test_partition_database_disjoint_union(self):
        config = RetailerConfig(
            locations=6, dates=8, items=20, inventory_rows=300, seed=3
        )
        database = generate_retailer(config)
        schemas = {rel.name: rel.schema for rel in database}
        router = ShardRouter(schemas, ("locn",), 3)
        partitions = router.partition_database(database)
        assert len(partitions) == 3
        for name in router.routed:
            merged = {}
            for part in partitions:
                slice_data = part.relation(name).data
                assert not (set(merged) & set(slice_data)), "overlapping slices"
                merged.update(slice_data)
            assert merged == database.relation(name).data
        for name in router.broadcast:
            original = database.relation(name)
            for part in partitions:
                replica = part.relation(name)
                assert replica.data == original.data
                assert replica.data is not original.data, "replica aliases original"

    def test_unknown_relation_raises(self):
        router = make_router()
        with pytest.raises(DataError):
            router.shard_of("Nope", (1,))

    def test_rejects_attrs_partitioning_nothing(self):
        with pytest.raises(DataError):
            ShardRouter(SCHEMAS, ("Z",), 2)

    def test_rejects_bad_shard_count(self):
        with pytest.raises(DataError):
            make_router(shards=0)


class TestBuildShardPlan:
    def test_retailer_plan_picks_locn(self):
        tree = build_view_tree(
            retailer_query(CountSpec()), order=retailer_variable_order()
        )
        plan = build_shard_plan(tree)
        assert plan.attrs == ("locn",)
        assert set(plan.routed) == {"Inventory", "Location", "Weather"}
        assert set(plan.broadcast) == {"Census", "Item"}

    def test_toy_plan_routes_both_relations(self):
        tree = build_view_tree(toy_count_query(), order=toy_variable_order())
        plan = build_shard_plan(tree)
        assert plan.attrs == ("A",)
        assert set(plan.routed) == {"R", "S"}
        assert plan.broadcast == ()

    def test_explicit_attrs_validated(self):
        tree = build_view_tree(toy_count_query(), order=toy_variable_order())
        plan = build_shard_plan(tree, attrs=("A",))
        assert plan.attrs == ("A",)
        with pytest.raises(QueryError):
            build_shard_plan(tree, attrs=("nope",))

    def test_explicit_attrs_must_partition_something(self):
        tree = build_view_tree(toy_count_query(), order=toy_variable_order())
        # B and C never co-occur in one relation.
        with pytest.raises(QueryError):
            build_shard_plan(tree, attrs=("B", "C"))
