"""Databases and delta application."""

import pytest

from repro.data import Database, Relation, deletes, inserts
from repro.errors import DataError, SchemaError


@pytest.fixture
def db():
    return Database(
        [
            Relation.from_tuples(("A", "B"), [("a1", 1)], name="R"),
            Relation.from_tuples(("A", "C"), [("a1", 2)], name="S"),
        ]
    )


class TestDatabase:
    def test_lookup(self, db):
        assert db.relation("R").schema == ("A", "B")
        assert "S" in db
        assert len(db) == 2
        with pytest.raises(SchemaError):
            db.relation("T")

    def test_unnamed_relation_rejected(self):
        with pytest.raises(SchemaError):
            Database([Relation(("A",))])

    def test_duplicate_name_rejected(self, db):
        with pytest.raises(SchemaError):
            db.add(Relation(("X",), name="R"))

    def test_from_dict_names_relations(self):
        db = Database.from_dict({"R": Relation(("A",))})
        assert db.relation("R").name == "R"

    def test_from_dict_name_conflict(self):
        with pytest.raises(SchemaError):
            Database.from_dict({"R": Relation(("A",), name="S")})

    def test_schema_property(self, db):
        schema = db.schema
        assert schema.schema("R").attributes == ("A", "B")

    def test_copy_independent(self, db):
        clone = db.copy()
        clone.relation("R").data[("a9", 9)] = 1
        assert ("a9", 9) not in db.relation("R").data

    def test_total_tuples(self, db):
        assert db.total_tuples() == 2


class TestApply:
    def test_insert(self, db):
        db.apply("R", inserts(("A", "B"), [("a2", 5)]))
        assert db.relation("R").data[("a2", 5)] == 1

    def test_delete(self, db):
        db.apply("R", deletes(("A", "B"), [("a1", 1)]))
        assert ("a1", 1) not in db.relation("R").data

    def test_schema_mismatch(self, db):
        with pytest.raises(SchemaError):
            db.apply("R", inserts(("A", "C"), [("a2", 5)]))

    def test_overdelete_detected(self, db):
        with pytest.raises(DataError):
            db.apply("R", deletes(("A", "B"), [("a1", 1), ("a1", 1)]))
