"""UpdateBatcher: coalescing semantics, flush policies, and the guarantee
that batched ingestion matches tuple-at-a-time ingestion on every engine."""

import pytest

from repro.data import Relation, UpdateBatcher, batch_events, single
from repro.datasets import (
    toy_covar_continuous_query,
    toy_database,
    toy_query,
    toy_variable_order,
)
from repro.engine import (
    FIVMEngine,
    FirstOrderEngine,
    NaiveEngine,
    PerAggregateEngine,
)
from repro.errors import DataError
from repro.rings import CountSpec, Feature

SCHEMAS = {"R": ("A", "B"), "S": ("A", "C", "D")}


@pytest.fixture
def batcher():
    return UpdateBatcher(SCHEMAS, batch_size=1000)


class TestCoalescing:
    def test_duplicate_keys_merge(self, batcher):
        for _ in range(3):
            batcher.add("R", ("a1", 1))
        batcher.add("R", ("a2", 2), -2)
        [(name, delta)] = batcher.flush()
        assert name == "R"
        assert delta.data == {("a1", 1): 3, ("a2", 2): -2}

    def test_insert_delete_pairs_cancel(self, batcher):
        batcher.add("R", ("a1", 1), +1)
        batcher.add("R", ("a1", 1), -1)
        assert batcher.pending_tuples == 0
        assert batcher.flush() == []
        assert batcher.batches_emitted == 0

    def test_cancelled_updates_still_count_toward_batch_size(self):
        batcher = UpdateBatcher(SCHEMAS, batch_size=2)
        assert batcher.add("R", ("a1", 1), +1) is None
        # The pair cancels, but two updates were absorbed: the flush fires
        # (and emits nothing), resetting the window.
        assert batcher.add("R", ("a1", 1), -1) is None
        assert batcher.pending_updates == 0

    def test_multiplicity_zero_is_a_noop(self, batcher):
        assert batcher.add("R", ("a1", 1), 0) is None
        assert batcher.pending_updates == 0

    def test_relations_flush_in_first_touched_order(self, batcher):
        batcher.add("S", ("a1", 1, 1))
        batcher.add("R", ("a1", 1))
        batcher.add("S", ("a2", 2, 2))
        names = [name for name, _delta in batcher.flush()]
        assert names == ["S", "R"]

    def test_add_delta_absorbs_whole_relations(self, batcher):
        delta = Relation(("A", "B"), data={("a1", 1): 2, ("a2", 2): -1})
        batcher.add_delta("R", delta)
        [(_, merged)] = batcher.flush()
        assert merged.data == delta.data
        assert batcher.updates_absorbed == 3


class TestFlushPolicies:
    def test_flush_on_size(self):
        batcher = UpdateBatcher(SCHEMAS, batch_size=3)
        assert batcher.add("R", ("a1", 1)) is None
        assert batcher.add("S", ("a1", 1, 1)) is None
        batch = batcher.add("R", ("a2", 2))
        assert batch is not None
        assert {name for name, _ in batch} == {"R", "S"}
        assert batcher.pending_updates == 0

    def test_manual_policy_never_autoflushes(self):
        batcher = UpdateBatcher(SCHEMAS, batch_size=1, flush_policy="manual")
        for i in range(5):
            assert batcher.add("R", ("a", i)) is None
        assert batcher.pending_tuples == 5

    def test_flush_on_close_via_context_manager(self):
        delivered = []
        with UpdateBatcher(
            SCHEMAS, batch_size=1000, on_flush=delivered.append
        ) as batcher:
            batcher.add("R", ("a1", 1))
        assert len(delivered) == 1
        [(name, delta)] = delivered[0]
        assert (name, delta.data) == ("R", {("a1", 1): 1})

    def test_on_flush_receives_size_triggered_batches(self):
        delivered = []
        batcher = UpdateBatcher(SCHEMAS, batch_size=2, on_flush=delivered.append)
        assert batcher.add("R", ("a1", 1)) is None
        assert batcher.add("R", ("a1", 1)) is None  # delivered, not returned
        assert len(delivered) == 1

    def test_close_returns_remainder_without_callback(self):
        batcher = UpdateBatcher(SCHEMAS, batch_size=1000)
        batcher.add("R", ("a1", 1))
        batch = batcher.close()
        assert batch is not None and batch[0][0] == "R"
        assert batcher.close() is None

    def test_exception_in_context_suppresses_final_flush(self):
        # A half-built batch must not reach the engine when the producing
        # block blew up: delivering it would apply an arbitrary prefix of
        # the failed iteration. The pending updates stay buffered so the
        # caller can recover (or drop the batcher) explicitly.
        delivered = []
        with pytest.raises(RuntimeError, match="mid-stream"):
            with UpdateBatcher(
                SCHEMAS, batch_size=1000, on_flush=delivered.append
            ) as batcher:
                batcher.add("R", ("a1", 1))
                raise RuntimeError("producer failed mid-stream")
        assert delivered == []
        assert batcher.pending_updates == 1
        # Recovery remains the caller's call: an explicit close still works.
        batcher.close()
        assert len(delivered) == 1

    def test_exception_before_any_add_flushes_nothing(self):
        delivered = []
        with pytest.raises(ValueError):
            with UpdateBatcher(
                SCHEMAS, batch_size=2, on_flush=delivered.append
            ) as batcher:
                raise ValueError("no events at all")
        assert delivered == []
        assert batcher.pending_updates == 0

    def test_batch_events_generator(self):
        events = [("R", ("a", i % 2), 1) for i in range(5)]
        batches = list(batch_events(events, SCHEMAS, batch_size=2))
        assert len(batches) == 3  # 2 + 2 + tail of 1
        total = sum(
            sum(delta.data.values()) for batch in batches for _n, delta in batch
        )
        assert total == 5


class TestValidation:
    def test_unknown_relation(self, batcher):
        with pytest.raises(DataError):
            batcher.add("T", ("x",))

    def test_arity_mismatch(self, batcher):
        with pytest.raises(DataError):
            batcher.add("R", ("a1", 1, 2))

    def test_bad_batch_size_and_policy(self):
        with pytest.raises(DataError):
            UpdateBatcher(SCHEMAS, batch_size=0)
        with pytest.raises(DataError):
            UpdateBatcher(SCHEMAS, flush_policy="sometimes")


# ----------------------------------------------------------------------
# Cross-engine equivalence: batched == tuple-at-a-time, all four engines.
# ----------------------------------------------------------------------

# Mixed stream over the toy database: duplicate inserts, deletes of live
# tuples, a cancelling +/- pair, and a delete/reinsert of the same row.
EVENTS = [
    ("R", ("a3", 3), +1),
    ("R", ("a3", 3), +1),
    ("S", ("a3", 1, 2), +1),
    ("R", ("a1", 1), -1),
    ("S", ("a1", 2, 3), -1),
    ("S", ("a2", 5, 5), +1),
    ("S", ("a2", 5, 5), -1),
    ("R", ("a2", 2), -1),
    ("R", ("a2", 2), +1),
    ("S", ("a3", 1, 2), +1),
    ("S", ("a3", 4, 4), +1),
]

TOY_FEATURES = (
    Feature.continuous("B"),
    Feature.continuous("C"),
    Feature.continuous("D"),
)


def engine_factories():
    count = toy_query(CountSpec())
    covar = toy_covar_continuous_query()
    order = toy_variable_order()
    return [
        ("naive", lambda: NaiveEngine(count, order=order)),
        ("first-order", lambda: FirstOrderEngine(count, order=order)),
        ("fivm", lambda: FIVMEngine(count, order=order)),
        (
            "per-aggregate",
            lambda: PerAggregateEngine(covar, TOY_FEATURES, order=order),
        ),
    ]


@pytest.mark.parametrize(
    "label,factory",
    engine_factories(),
    ids=[label for label, _ in engine_factories()],
)
@pytest.mark.parametrize("batch_size", [1, 4, 100])
def test_batched_matches_tuple_at_a_time(label, factory, batch_size):
    tuple_engine = factory()
    tuple_engine.initialize(toy_database())
    for name, row, multiplicity in EVENTS:
        tuple_engine.apply(name, single(SCHEMAS[name], row, multiplicity))

    batched_engine = factory()
    batched_engine.initialize(toy_database())
    batched_engine.apply_stream(iter(EVENTS), batch_size=batch_size)

    assert batched_engine.result().close_to(tuple_engine.result())


def test_apply_many_merges_same_relation_deltas():
    """apply_many coalesces per relation: one traversal per touched relation."""
    query = toy_query(CountSpec())
    reference = FIVMEngine(query, order=toy_variable_order())
    reference.initialize(toy_database())
    for name, row, multiplicity in EVENTS:
        reference.apply(name, single(SCHEMAS[name], row, multiplicity))

    engine = FIVMEngine(query, order=toy_variable_order())
    engine.initialize(toy_database())
    baseline_batches = engine.stats.batches_applied
    engine.apply_many(
        (name, single(SCHEMAS[name], row, multiplicity))
        for name, row, multiplicity in EVENTS
    )
    # 11 input deltas over 2 relations collapse into at most 2 applies.
    assert engine.stats.batches_applied - baseline_batches <= 2
    assert engine.result() == reference.result()


def test_long_stream_of_cancelling_updates_leaves_no_residue():
    """Insert/delete churn must not leak zero-payload entries into views."""
    query = toy_query(CountSpec())
    engine = FIVMEngine(query, order=toy_variable_order())
    engine.initialize(toy_database())
    baseline = engine.total_view_tuples()
    events = []
    for i in range(50):
        events.append(("R", (f"x{i}", i), +1))
        events.append(("S", (f"x{i}", i, i), +1))
    for i in range(50):
        events.append(("R", (f"x{i}", i), -1))
        events.append(("S", (f"x{i}", i, i), -1))
    engine.apply_stream(iter(events), batch_size=7)
    assert engine.total_view_tuples() == baseline
