"""CSV import/export round-trips."""

import pytest

from repro.data import Relation
from repro.data.csvio import load_database_dir, load_relation, save_relation
from repro.errors import DataError


@pytest.fixture
def relation():
    return Relation.from_tuples(
        ("A", "B"), [("a1", 1), ("a1", 1), ("a2", 2)], name="R"
    )


class TestRoundTrip:
    def test_save_then_load(self, relation, tmp_path):
        path = tmp_path / "r.csv"
        save_relation(relation, path)
        loaded = load_relation(path, ("A", "B"), types=[str, int], name="R")
        assert loaded == relation

    def test_header_written(self, relation, tmp_path):
        path = tmp_path / "r.csv"
        save_relation(relation, path)
        assert path.read_text().splitlines()[0] == "A,B"

    def test_negative_multiplicity_rejected_on_save(self, tmp_path):
        with pytest.raises(DataError):
            save_relation(
                Relation(("A",), data={("x",): -1}), tmp_path / "bad.csv"
            )


class TestLoad:
    def test_type_conversion_error(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("A,B\nx,notanint\n")
        with pytest.raises(DataError):
            load_relation(path, ("A", "B"), types=[str, int])

    def test_field_count_mismatch(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("A,B\nx\n")
        with pytest.raises(DataError):
            load_relation(path, ("A", "B"))

    def test_wrong_converter_count(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("A,B\nx,1\n")
        with pytest.raises(DataError):
            load_relation(path, ("A", "B"), types=[str])

    def test_no_header_mode(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("x,1\nx,1\n")
        loaded = load_relation(path, ("A", "B"), types=[str, int], header=False)
        assert loaded.data == {("x", 1): 2}

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("A,B\nx,1\n\n")
        loaded = load_relation(path, ("A", "B"), types=[str, int])
        assert loaded.data == {("x", 1): 1}

    def test_load_database_dir(self, relation, tmp_path):
        save_relation(relation, tmp_path / "R.csv")
        loaded = load_database_dir(
            tmp_path, {"R": ("A", "B")}, {"R": [str, int]}
        )
        assert loaded["R"] == relation
