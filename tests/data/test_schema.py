"""Relation and database schemas."""

import pytest

from repro.data import DatabaseSchema, RelationSchema
from repro.errors import SchemaError


class TestRelationSchema:
    def test_basics(self):
        schema = RelationSchema("R", ("A", "B"))
        assert schema.arity == 2
        assert schema.position("B") == 1
        assert "A" in schema
        assert list(schema) == ["A", "B"]

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("", ("A",))

    def test_no_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ())

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ("A", "A"))

    def test_unknown_position(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ("A",)).position("Z")


class TestDatabaseSchema:
    def setup_method(self):
        self.db = DatabaseSchema.of(
            [RelationSchema("R", ("A", "B")), RelationSchema("S", ("A", "C"))]
        )

    def test_lookup(self):
        assert self.db.schema("R").attributes == ("A", "B")
        assert "S" in self.db
        with pytest.raises(SchemaError):
            self.db.schema("T")

    def test_duplicate_rejected(self):
        with pytest.raises(SchemaError):
            self.db.add(RelationSchema("R", ("X",)))

    def test_attributes_first_seen_order(self):
        assert self.db.attributes == ("A", "B", "C")

    def test_relations_with(self):
        assert self.db.relations_with("A") == ("R", "S")
        assert self.db.relations_with("C") == ("S",)
        assert self.db.relations_with("Z") == ()

    def test_iteration(self):
        assert [schema.name for schema in self.db] == ["R", "S"]
