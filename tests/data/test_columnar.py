"""ColumnarDelta, Relation block construction/scatter, batcher emission."""

import pickle

import numpy as np
import pytest

from repro.data import ColumnarDelta, IndexedRelation, Relation, UpdateBatcher
from repro.data.delta import delta_of
from repro.errors import DataError
from repro.rings import CofactorLayout, FloatRing, NumericCofactorRing

SCHEMA = ("A", "B")


def sample_delta():
    return delta_of(
        SCHEMA, inserted=[(1, "a"), (2, "b"), (2, "b"), (7, "x")], deleted=[(3, "c")]
    )


class TestColumnarDelta:
    def test_from_relation_roundtrip(self):
        delta = sample_delta()
        columnar = ColumnarDelta.from_relation(delta)
        assert len(columnar) == len(delta.data)
        assert columnar.rows == list(delta.data.keys())
        assert columnar.columns == ([1, 2, 7, 3], ["a", "b", "x", "c"])
        assert columnar.counts.tolist() == [1, 2, 1, -1]
        assert columnar.update_count() == 5
        assert columnar.to_relation().data == delta.data

    def test_columns_and_rows_derive_each_other(self):
        from_rows = ColumnarDelta(SCHEMA, [1, 1], rows=[(1, "a"), (2, "b")])
        assert from_rows.columns == ([1, 2], ["a", "b"])
        from_columns = ColumnarDelta(SCHEMA, [1, 1], columns=([1, 2], ["a", "b"]))
        assert from_columns.rows == [(1, "a"), (2, "b")]
        assert from_columns.column(1) == ["a", "b"]

    def test_empty_delta(self):
        empty = ColumnarDelta(SCHEMA, [], rows=[])
        assert len(empty) == 0
        assert empty.columns == ([], [])
        assert empty.to_relation().data == {}

    def test_validation(self):
        with pytest.raises(DataError):
            ColumnarDelta(SCHEMA, [1])
        with pytest.raises(DataError):
            ColumnarDelta(SCHEMA, [1], columns=([1],))  # wrong column count
        with pytest.raises(DataError):
            ColumnarDelta(SCHEMA, [1, 1], columns=([1], ["a"]))  # short column
        with pytest.raises(DataError):
            ColumnarDelta(SCHEMA, [1, 1], rows=[(1, "a")])

    def test_to_relation_merges_duplicates_and_drops_zeros(self):
        columnar = ColumnarDelta(
            SCHEMA,
            [2, -1, 1, -1],
            rows=[(1, "a"), (2, "b"), (2, "b"), (1, "a")],
        )
        relation = columnar.to_relation()
        assert relation.data == {(1, "a"): 1}
        # A merged dict no longer matches the columns: no stale cache.
        assert relation._columnar is None

    def test_transport_is_picklable_and_compact(self):
        delta = sample_delta()
        schema, columns, counts = delta.columnar().transport()
        assert isinstance(counts, list)
        restored = ColumnarDelta(schema, counts, columns=columns)
        assert restored.to_relation().data == delta.data
        assert pickle.loads(pickle.dumps((schema, columns, counts)))


class TestRelationColumnarCache:
    def test_columnar_is_cached_until_mutation(self):
        delta = sample_delta()
        first = delta.columnar()
        assert delta.columnar() is first
        delta.add_inplace(delta_of(SCHEMA, inserted=[(9, "z")]))
        second = delta.columnar()
        assert second is not first
        assert second.to_relation().data == delta.data

    def test_copy_carries_the_cache(self):
        delta = sample_delta()
        cached = delta.columnar()
        assert delta.copy().columnar() is cached

    def test_from_columns_builds_and_caches(self):
        relation = Relation.from_columns(SCHEMA, ([1, 2], ["a", "b"]), [1, -2])
        assert relation.data == {(1, "a"): 1, (2, "b"): -2}
        assert relation._columnar is not None
        assert relation.columnar().rows == [(1, "a"), (2, "b")]


class TestAddBlockInplace:
    def test_matches_add_inplace_on_scalar_ring(self):
        ring = FloatRing()
        base = {(1,): 1.0, (2,): 2.0}
        via_block = Relation(("A",), ring, data=dict(base))
        via_dict = Relation(("A",), ring, data=dict(base))
        keys = [(1,), (2,), (3,), (4,)]
        values = [0.5, -2.0, 0.0, 3.0]
        via_block.add_block_inplace(keys, ring.make_block(values))
        other = Relation(("A",), ring)
        other.data = dict(zip(keys, values))
        via_dict.add_inplace(other)
        assert via_block == via_dict
        # (2,) cancelled to zero and (3,) was a parked zero: both absent.
        assert (2,) not in via_block.data and (3,) not in via_block.data

    def test_matches_add_inplace_on_cofactor_ring(self):
        ring = NumericCofactorRing(CofactorLayout(("x", "y")))
        keys = [(1,), (2,), (1,)]
        payloads = [ring.lift(0, 2.0), ring.lift(1, 3.0), ring.neg(ring.lift(0, 2.0))]
        target = Relation(("A",), ring)
        target.add_block_inplace(keys, ring.make_block(payloads))
        # (1,) received x and -x in one block: exact cancellation.
        assert list(target.data) == [(2,)]
        assert ring.eq(target.data[(2,)], payloads[1])

    def test_indexed_relation_keeps_built_indexes_consistent(self):
        ring = FloatRing()
        view = IndexedRelation(("A", "B"), ring, data={(1, "a"): 1.0})
        index = view.add_index(("A",))
        keys = [(1, "a"), (2, "b"), (2, "c")]
        view.add_block_inplace(keys, ring.make_block([-1.0, 4.0, 5.0]))
        assert view.data == {(2, "b"): 4.0, (2, "c"): 5.0}
        assert index.entry_count() == 2
        assert index.get(1) is None
        assert set(index.get(2)) == {(2, "b"), (2, "c")}

    def test_lazy_indexes_stay_pending_through_block_scatter(self):
        ring = FloatRing()
        view = IndexedRelation(("A",), ring)
        view.register_index(("A",))
        view.add_block_inplace([(1,)], ring.make_block([2.0]))
        assert view.pending == {("A",)} and not view.indexes
        index = view.ensure_index(("A",))
        assert index.entry_count() == 1
        assert not view.pending


class TestBatcherColumnarEmission:
    def test_flushed_deltas_expose_a_shared_columnar_form(self):
        batcher = UpdateBatcher({"R": SCHEMA}, batch_size=10)
        batcher.add("R", (1, "a"))
        batcher.add("R", (1, "a"))
        batcher.add("R", (2, "b"), -1)
        ((name, delta),) = batcher.flush()
        assert name == "R"
        # Built lazily — per-tuple consumers never pay for it — and at
        # most once: every columnar consumer shares the cached build.
        assert delta._columnar is None
        columnar = delta.columnar()
        assert delta.columnar() is columnar
        assert columnar.rows == [(1, "a"), (2, "b")]
        assert columnar.counts.tolist() == [2, -1]


def test_numpy_counts_accepted():
    columnar = ColumnarDelta(SCHEMA, np.array([1, 2]), rows=[(1, "a"), (2, "b")])
    assert columnar.counts.dtype == np.int64
