"""WindowSpec / RetractionScheduler / WindowedStream unit behavior."""

import pytest

from repro.data import (
    RetractionScheduler,
    WindowSpec,
    WindowedStream,
    live_window_events,
    timed_events,
)
from repro.errors import DataError


class TestWindowSpec:
    def test_parse_tumbling(self):
        spec = WindowSpec.parse("tumbling:100")
        assert spec.size == 100 and spec.slide == 100
        assert spec.kind == "tumbling"
        assert spec.describe() == "tumbling:100"

    def test_parse_sliding(self):
        spec = WindowSpec.parse("sliding:100/25")
        assert spec.size == 100 and spec.slide == 25
        assert spec.kind == "sliding"
        assert spec.describe() == "sliding:100/25"

    def test_parse_sliding_default_slide(self):
        spec = WindowSpec.parse("sliding:64")
        assert spec.size == 64 and spec.slide == 64

    @pytest.mark.parametrize(
        "text",
        ["", "100", "hopping:10", "tumbling:", "tumbling:ten", "sliding:8/x"],
    )
    def test_parse_rejects_garbage(self, text):
        with pytest.raises(DataError):
            WindowSpec.parse(text)

    def test_size_and_slide_validated(self):
        with pytest.raises(DataError, match="size"):
            WindowSpec(0, 1)
        with pytest.raises(DataError, match="slide"):
            WindowSpec(10, 0)
        with pytest.raises(DataError, match="gaps"):
            WindowSpec(10, 20)

    def test_expiry_is_first_boundary_excluding_time(self):
        spec = WindowSpec(100, 50)
        # Event at t expires at the first boundary b with b - 100 > t.
        for t in (0, 1, 49, 50, 99, 100):
            b = spec.expiry(t)
            assert b % 50 == 0
            low, _high = spec.bounds_at(b)
            assert low > t
            assert spec.bounds_at(b - 50)[0] <= t

    def test_bounds_at_boundary(self):
        spec = WindowSpec(100, 25)
        assert spec.bounds_at(200) == (100, 200)
        assert spec.boundary(214) == 200


class TestRetractionScheduler:
    def test_due_pops_prefix(self):
        sched = RetractionScheduler()
        sched.schedule(10, "R", ("a",), -1)
        sched.schedule(20, "R", ("b",), -1)
        assert list(sched.due(10)) == [("R", ("a",), -1)]
        assert len(sched) == 1
        assert list(sched.due(25)) == [("R", ("b",), -1)]

    def test_out_of_order_expiry_rejected(self):
        sched = RetractionScheduler()
        sched.schedule(20, "R", ("a",), -1)
        with pytest.raises(DataError, match="out of order"):
            sched.schedule(10, "R", ("b",), -1)

    def test_pending_is_a_copy(self):
        sched = RetractionScheduler()
        sched.schedule(10, "R", ("a",), -2)
        pending = sched.pending()
        assert pending == [("R", ("a",), -2, 10)]
        pending.clear()
        assert len(sched) == 1


class TestWindowedStream:
    def test_tumbling_emits_retractions_at_boundary(self):
        events = [("R", ("a",), 1), ("R", ("b",), 1), ("R", ("c",), 1)]
        # size=slide=1 with index times: event i expires at boundary i+2.
        out = list(WindowedStream(WindowSpec(1, 1), iter(events)))
        assert out == [
            ("R", ("a",), 1),
            ("R", ("b",), 1),
            ("R", ("a",), -1),  # boundary 2 fires before event at t=2
            ("R", ("c",), 1),
        ]

    def test_spec_string_accepted(self):
        stream = WindowedStream("tumbling:4", iter([]))
        assert stream.spec == WindowSpec(4, 4)

    def test_timed_events_drive_boundaries(self):
        events = [
            ("R", ("a",), 1, 0),
            ("R", ("b",), 1, 30),
            ("R", ("c",), 1, 30),  # equal times allowed
            ("R", ("d",), 1, 45),
        ]
        stream = WindowedStream(WindowSpec(20, 10), iter(events))
        out = list(stream)
        assert ("R", ("a",), -1) in out
        assert stream.current_bounds() == (20, 40)
        assert stream.last_time == 45

    def test_retraction_of_a_delete_is_an_insert(self):
        out = list(
            WindowedStream(
                WindowSpec(1, 1),
                iter([("R", ("a",), -1), ("R", ("b",), 1), ("R", ("c",), 1)]),
            )
        )
        assert ("R", ("a",), 1) in out  # the delete ages out: tuple returns

    def test_backwards_time_rejected(self):
        stream = WindowedStream(
            WindowSpec(10, 10),
            iter([("R", ("a",), 1, 5), ("R", ("b",), 1, 3)]),
        )
        with pytest.raises(DataError, match="backwards"):
            list(stream)

    def test_bad_arity_rejected(self):
        with pytest.raises(DataError, match="arity"):
            list(WindowedStream(WindowSpec(2, 2), iter([("R", ("a",))])))

    def test_non_int_time_rejected(self):
        with pytest.raises(DataError, match="time must be an int"):
            list(
                WindowedStream(
                    WindowSpec(2, 2), iter([("R", ("a",), 1, 1.5)])
                )
            )

    def test_advance_to_flushes_expired(self):
        stream = WindowedStream(
            WindowSpec(10, 10), iter([("R", ("a",), 1, 0)])
        )
        applied = list(stream)
        assert applied == [("R", ("a",), 1)]
        assert stream.pending_retractions() == 1
        late = list(stream.advance_to(100))
        assert late == [("R", ("a",), -1)]
        assert stream.pending_retractions() == 0
        assert stream.current_boundary == 100


class TestHelpers:
    def test_timed_events_stamps_index(self):
        assert list(timed_events([("R", ("a",), 1)], start=5)) == [
            ("R", ("a",), 1, 5)
        ]

    def test_live_window_filters_interval(self):
        timed = [("R", (i,), 1, i) for i in range(10)]
        live = live_window_events(timed, WindowSpec(4, 2), 8)
        assert [row[0] for _n, row, _s in live] == [4, 5, 6, 7]

    def test_live_window_upto_includes_unexpired_tail(self):
        timed = [("R", (i,), 1, i) for i in range(10)]
        live = live_window_events(timed, WindowSpec(4, 2), 8, upto=9)
        assert [row[0] for _n, row, _s in live] == [4, 5, 6, 7, 8, 9]

    def test_live_window_requires_timed(self):
        with pytest.raises(DataError, match="timed"):
            live_window_events([("R", ("a",), 1)], WindowSpec(4, 2), 4)
