"""The demo tabs end-to-end on the synthetic Retailer database."""

import numpy as np
import pytest

from repro.apps import (
    ChowLiuApp,
    MaintenanceStrategyApp,
    ModelSelectionApp,
    RegressionApp,
)
from repro.datasets import (
    RETAILER_SCHEMAS,
    UpdateStream,
    regression_features,
    retailer_query,
    retailer_row_factories,
    retailer_variable_order,
)
from repro.engine import NaiveEngine
from repro.errors import FIVMError
from repro.ml.discretize import binning_for_attribute
from repro.rings import CountSpec, Feature


@pytest.fixture(scope="module")
def mi_feature_subset(small_retailer_db_module):
    db = small_retailer_db_module
    return (
        Feature.categorical("subcategory"),
        Feature.categorical("category"),
        Feature(
            "prize", "continuous", binning_for_attribute(db.relation("Item"), "prize", 6)
        ),
        Feature(
            "inventoryunits",
            "continuous",
            binning_for_attribute(db.relation("Inventory"), "inventoryunits", 6),
        ),
        Feature.categorical("rain"),
    )


@pytest.fixture(scope="module")
def small_retailer_db_module(request):
    from repro.datasets import RetailerConfig, generate_retailer

    return generate_retailer(
        RetailerConfig(locations=6, dates=10, items=30, inventory_rows=400, seed=11)
    )


@pytest.fixture(scope="module")
def stream_factory(small_retailer_db_module):
    from repro.datasets import RetailerConfig

    config = RetailerConfig(locations=6, dates=10, items=30, inventory_rows=400, seed=11)

    def make(seed=5, batch_size=100):
        return UpdateStream(
            small_retailer_db_module,
            retailer_row_factories(config, small_retailer_db_module),
            targets=("Inventory",),
            batch_size=batch_size,
            insert_ratio=0.7,
            seed=seed,
        )

    return make


class TestModelSelectionApp:
    def test_planted_signal_ranked_first(self, small_retailer_db_module, mi_feature_subset):
        app = ModelSelectionApp(
            small_retailer_db_module,
            RETAILER_SCHEMAS,
            mi_feature_subset,
            label="inventoryunits",
            threshold=0.05,
            order=retailer_variable_order(),
        )
        ranking = app.ranking()
        ranked_attrs = [attr for attr, _ in ranking.ranked]
        # inventoryunits = f(price, subcategory, ...): those rank above rain
        assert ranked_attrs.index("subcategory") < ranked_attrs.index("rain")
        assert ranked_attrs.index("prize") < ranked_attrs.index("rain")
        assert "rain" not in app.selected_features()

    def test_refresh_under_updates(
        self, small_retailer_db_module, mi_feature_subset, stream_factory
    ):
        app = ModelSelectionApp(
            small_retailer_db_module,
            RETAILER_SCHEMAS,
            mi_feature_subset,
            label="inventoryunits",
            threshold=0.05,
            order=retailer_variable_order(),
        )
        report = app.process_bulk(stream_factory().batches(3))
        assert report.updates > 0
        ranking = app.ranking()
        assert len(ranking.ranked) == len(mi_feature_subset) - 1

    def test_label_must_be_feature(self, small_retailer_db_module, mi_feature_subset):
        with pytest.raises(FIVMError):
            ModelSelectionApp(
                small_retailer_db_module,
                RETAILER_SCHEMAS,
                mi_feature_subset,
                label="nope",
            )

    def test_render(self, small_retailer_db_module, mi_feature_subset):
        app = ModelSelectionApp(
            small_retailer_db_module,
            RETAILER_SCHEMAS,
            mi_feature_subset,
            label="inventoryunits",
            threshold=0.05,
            order=retailer_variable_order(),
        )
        assert "label: inventoryunits" in app.render()


STABLE_FEATURES = (
    Feature.continuous("prize"),
    Feature.categorical("subcategory"),
    Feature.continuous("inventoryunits"),
)


class TestRegressionApp:
    def test_model_recovers_planted_price_slope(self, small_retailer_db_module):
        # Within a subcategory, inventoryunits = ... - 0.8 * prize + noise;
        # the demo's full feature set includes per-item one-hots that absorb
        # the price effect, so the slope check uses the reduced model.
        app = RegressionApp(
            small_retailer_db_module,
            RETAILER_SCHEMAS,
            STABLE_FEATURES,
            "inventoryunits",
            regularization=1e-4,
            order=retailer_variable_order(),
        )
        model = app.refresh_model(max_iterations=20000)
        assert model.coefficients()["prize"] < 0
        assert model.training_rmse < 20.0

    def test_demo_feature_set_fits(self, small_retailer_db_module):
        features, label = regression_features()
        app = RegressionApp(
            small_retailer_db_module,
            RETAILER_SCHEMAS,
            features,
            label,
            order=retailer_variable_order(),
        )
        model = app.refresh_model()
        # one column per live ksn plus the category tree plus price
        assert len(model.feature_columns) > 10
        assert model.training_rmse < 20.0

    def test_warm_start_after_bulk(self, small_retailer_db_module, stream_factory):
        app = RegressionApp(
            small_retailer_db_module,
            RETAILER_SCHEMAS,
            STABLE_FEATURES,
            "inventoryunits",
            order=retailer_variable_order(),
        )
        first = app.refresh_model(max_iterations=4000)
        app.process_bulk(stream_factory(seed=9).batches(2))
        second = app.refresh_model(max_iterations=4000)
        if second.theta.shape == first.theta.shape:
            # warm start: parameters move but stay in the same region
            assert np.linalg.norm(second.theta - first.theta) < max(
                np.linalg.norm(first.theta), 1.0
            )
        assert np.isfinite(second.training_rmse)

    def test_session_consistent_with_naive(self, small_retailer_db_module, stream_factory):
        features, label = regression_features()
        app = RegressionApp(
            small_retailer_db_module,
            RETAILER_SCHEMAS,
            features,
            label,
            order=retailer_variable_order(),
        )
        app.process_bulk(stream_factory(seed=2).batches(2))
        naive = NaiveEngine(app.session.query, order=retailer_variable_order())
        naive.initialize(app.session.database)
        assert app.session.result().close_to(naive.result(), 1e-6)

    def test_render(self, small_retailer_db_module):
        features, label = regression_features()
        app = RegressionApp(
            small_retailer_db_module,
            RETAILER_SCHEMAS,
            features,
            label,
            order=retailer_variable_order(),
        )
        text = app.render()
        assert "intercept" in text and "prize" in text


class TestChowLiuApp:
    def test_tree_spans_all_features(self, small_retailer_db_module, mi_feature_subset):
        app = ChowLiuApp(
            small_retailer_db_module,
            RETAILER_SCHEMAS,
            mi_feature_subset,
            order=retailer_variable_order(),
        )
        tree = app.tree()
        assert len(tree.edges) == len(mi_feature_subset) - 1

    def test_correlated_attributes_adjacent(self, small_retailer_db_module, mi_feature_subset):
        app = ChowLiuApp(
            small_retailer_db_module,
            RETAILER_SCHEMAS,
            mi_feature_subset,
            order=retailer_variable_order(),
        )
        tree = app.tree()
        edges = {frozenset((u, v)) for u, v, _ in tree.edges}
        # category is a deterministic function of subcategory
        assert frozenset(("subcategory", "category")) in edges

    def test_refresh_under_updates(
        self, small_retailer_db_module, mi_feature_subset, stream_factory
    ):
        app = ChowLiuApp(
            small_retailer_db_module,
            RETAILER_SCHEMAS,
            mi_feature_subset,
            order=retailer_variable_order(),
        )
        app.process_bulk(stream_factory(seed=3).batches(2))
        assert len(app.tree().edges) == len(mi_feature_subset) - 1

    def test_render(self, small_retailer_db_module, mi_feature_subset):
        app = ChowLiuApp(
            small_retailer_db_module,
            RETAILER_SCHEMAS,
            mi_feature_subset,
            root="subcategory",
            order=retailer_variable_order(),
        )
        text = app.render()
        assert "subcategory" in text


class TestMaintenanceStrategyApp:
    def test_renders_tree_and_m3(self):
        app = MaintenanceStrategyApp(
            retailer_query(CountSpec()), order=retailer_variable_order()
        )
        text = app.render()
        assert "V@locn" in text
        assert "DECLARE MAP" in text

    def test_single_view_lookup(self):
        app = MaintenanceStrategyApp(
            retailer_query(CountSpec()), order=retailer_variable_order()
        )
        block = app.render_view("V@ksn")
        assert "V_ksn" in block

    def test_dot_output(self):
        app = MaintenanceStrategyApp(
            retailer_query(CountSpec()), order=retailer_variable_order()
        )
        assert app.render_dot().startswith("digraph")
