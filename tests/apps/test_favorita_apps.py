"""The demo tabs on the Favorita database (second demo dataset)."""

import pytest

from repro.apps import ChowLiuApp, ModelSelectionApp, RegressionApp
from repro.datasets import (
    FAVORITA_SCHEMAS,
    FavoritaConfig,
    UpdateStream,
    favorita_regression_features,
    favorita_row_factories,
    favorita_variable_order,
    generate_favorita,
)
from repro.engine import NaiveEngine
from repro.ml.discretize import binning_for_attribute
from repro.rings import Feature

CONFIG = FavoritaConfig(stores=6, dates=15, items=25, sales_rows=400, seed=19)


@pytest.fixture(scope="module")
def db():
    return generate_favorita(CONFIG)


@pytest.fixture(scope="module")
def mi_features(db):
    sales = db.relation("Sales")
    oil = db.relation("Oil")
    return (
        Feature.categorical("onpromotion"),
        Feature.categorical("family"),
        Feature.categorical("holidaytype"),
        Feature("oilprize", "continuous", binning_for_attribute(oil, "oilprize", 5)),
        Feature(
            "unitsales", "continuous", binning_for_attribute(sales, "unitsales", 6)
        ),
    )


def stream_for(app):
    return UpdateStream(
        app.session.database,
        favorita_row_factories(CONFIG, app.session.database),
        targets=("Sales",),
        batch_size=100,
        insert_ratio=0.7,
        seed=3,
    )


class TestModelSelection:
    def test_planted_signals_have_positive_mi(self, db, mi_features):
        # Every MI feature is a planted signal in the Favorita generator
        # (promotion +6 units, holidays +4, family and oil price smaller),
        # so all must carry measurable MI with the label.
        app = ModelSelectionApp(
            db,
            FAVORITA_SCHEMAS,
            mi_features,
            label="unitsales",
            threshold=0.01,
            order=favorita_variable_order(),
        )
        ranking = dict(app.ranking().ranked)
        assert ranking["onpromotion"] > 0.02
        assert all(mi > 0 for mi in ranking.values())

    def test_survives_bulk(self, db, mi_features):
        app = ModelSelectionApp(
            db,
            FAVORITA_SCHEMAS,
            mi_features,
            label="unitsales",
            order=favorita_variable_order(),
        )
        report = app.process_bulk(stream_for(app).batches(3))
        assert report.updates > 0
        assert len(app.ranking().ranked) == 4


class TestRegression:
    def test_promotion_lifts_prediction(self, db):
        features, label = favorita_regression_features()
        app = RegressionApp(
            db, FAVORITA_SCHEMAS, features, label, order=favorita_variable_order()
        )
        model = app.refresh_model()
        base = {"onpromotion": 0, "family": 1, "oilprize": 45.0, "holidaytype": 0}
        promoted = dict(base, onpromotion=1)
        assert model.predict(promoted) > model.predict(base)

    def test_consistent_with_naive_after_bulk(self, db):
        features, label = favorita_regression_features()
        app = RegressionApp(
            db, FAVORITA_SCHEMAS, features, label, order=favorita_variable_order()
        )
        app.process_bulk(stream_for(app).batches(3))
        naive = NaiveEngine(app.session.query, order=favorita_variable_order())
        naive.initialize(app.session.database)
        assert app.session.result().close_to(naive.result(), 1e-6)


class TestChowLiu:
    def test_spanning_tree(self, db, mi_features):
        app = ChowLiuApp(
            db, FAVORITA_SCHEMAS, mi_features, order=favorita_variable_order()
        )
        tree = app.tree()
        assert len(tree.edges) == len(mi_features) - 1
