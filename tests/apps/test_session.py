"""Maintenance sessions: processing bulks, reports, consistency."""

import pytest

from repro.apps import MaintenanceSession
from repro.data import RelationSchema, inserts
from repro.datasets import toy_count_query, toy_database, toy_variable_order
from repro.engine import FirstOrderEngine, NaiveEngine
from repro.errors import EngineError
from repro.query import Query
from repro.rings import CountSpec


@pytest.fixture
def session():
    return MaintenanceSession(
        toy_database(), toy_count_query(), order=toy_variable_order()
    )


class TestSession:
    def test_initial_result(self, session):
        assert session.root_payload() == 3

    def test_process_updates_engine_and_database(self, session):
        report = session.process(
            [("R", inserts(("A", "B"), [("a1", 1)]))]
        )
        assert report.batches == 1
        assert report.updates == 1
        assert session.root_payload() == 5
        assert session.database.relation("R").data[("a1", 1)] == 2

    def test_database_copy_at_construction(self):
        db = toy_database()
        session = MaintenanceSession(db, toy_count_query(), order=toy_variable_order())
        session.process([("R", inserts(("A", "B"), [("a9", 9)]))])
        assert ("a9", 9) not in db.relation("R").data

    def test_report_throughput(self, session):
        report = session.process(
            [("R", inserts(("A", "B"), [("a1", 1)]))]
        )
        assert report.throughput > 0

    def test_empty_bulk(self, session):
        report = session.process([])
        assert report.batches == 0
        assert report.updates == 0

    def test_bulks_counted(self, session):
        session.process([])
        session.process([])
        assert session.bulks_processed == 2

    def test_alternative_engine_factory(self):
        for factory in (FirstOrderEngine, NaiveEngine):
            session = MaintenanceSession(
                toy_database(),
                toy_count_query(),
                order=toy_variable_order(),
                engine_factory=factory,
            )
            assert session.root_payload() == 3

    def test_root_payload_requires_empty_key(self):
        query = Query(
            "Q",
            (RelationSchema("R", ("A", "B")), RelationSchema("S", ("A", "C", "D"))),
            spec=CountSpec(),
            free=("A",),
        )
        session = MaintenanceSession(toy_database(), query)
        with pytest.raises(EngineError):
            session.root_payload()
        assert session.result().payload(("a1",)) == 2
