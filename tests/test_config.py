"""EngineConfig: validation, factory, legacy-kwarg shim, CLI derivation."""

import warnings

import pytest

from repro import EngineConfig, create_engine
from repro.checkpoint import read_checkpoint_info, write_checkpoint
from repro.cli import build_parser
from repro.config import engine_config_from_args
from repro.datasets import toy_count_query, toy_database, toy_variable_order
from repro.engine import FIVMEngine, ShardedEngine
from repro.errors import EngineError


class TestEngineConfigValidation:
    def test_defaults_build(self):
        config = EngineConfig()
        assert config.shards == 1
        assert config.backend == "auto"
        assert config.transport == "auto"
        assert config.use_columnar == "auto"

    def test_shards_must_be_positive(self):
        with pytest.raises(EngineError, match="at least 1"):
            EngineConfig(shards=0)

    def test_shards_must_be_int(self):
        with pytest.raises(EngineError, match="shards must be an int"):
            EngineConfig(shards="many")

    def test_unknown_backend_rejected(self):
        with pytest.raises(EngineError, match="unknown shard backend"):
            EngineConfig(backend="threads")

    def test_unknown_transport_rejected(self):
        with pytest.raises(EngineError, match="unknown shard transport"):
            EngineConfig(transport="rdma")

    def test_use_columnar_tristate(self):
        for value in ("auto", True, False):
            assert EngineConfig(use_columnar=value).use_columnar == value
        with pytest.raises(EngineError, match="use_columnar"):
            EngineConfig(use_columnar="yes")

    def test_shard_attrs_normalized_to_tuple(self):
        config = EngineConfig(shard_attrs=["locn", "dateid"])
        assert config.shard_attrs == ("locn", "dateid")

    def test_replace_revalidates(self):
        config = EngineConfig(shards=2)
        assert config.replace(shards=4).shards == 4
        with pytest.raises(EngineError):
            config.replace(backend="bogus")

    def test_dict_round_trip(self):
        config = EngineConfig(
            shards=3, backend="serial", shard_attrs=("locn",), use_fused=False
        )
        data = config.to_dict()
        assert data["shard_attrs"] == ["locn"]  # primitives only
        assert EngineConfig.from_dict(data) == config

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(EngineError, match="unknown EngineConfig field"):
            EngineConfig.from_dict({"shards": 2, "turbo": True})

    def test_describe_mentions_topology(self):
        text = EngineConfig(shards=2, transport="shm").describe()
        assert "shards=2" in text and "transport=shm" in text

    def test_window_normalized_and_parsed(self):
        config = EngineConfig(window="sliding:100/25")
        assert config.window == "sliding:100/25"
        spec = config.window_spec()
        assert (spec.size, spec.slide) == (100, 25)
        assert EngineConfig(window="tumbling:50").window_spec().slide == 50
        assert EngineConfig().window_spec() is None

    def test_decay_normalized_and_parsed(self):
        config = EngineConfig(decay="0.99/1000")
        assert config.decay == "0.99/1000"
        spec = config.decay_spec()
        assert (spec.rate, spec.every) == (0.99, 1000)
        assert EngineConfig().decay_spec() is None

    def test_bad_window_and_decay_rejected_at_build(self):
        with pytest.raises(EngineError, match="window"):
            EngineConfig(window="hopping:10")
        with pytest.raises(EngineError, match="decay"):
            EngineConfig(decay="2.0/10")

    def test_window_and_decay_mutually_exclusive(self):
        with pytest.raises(EngineError, match="mutually exclusive"):
            EngineConfig(window="tumbling:50", decay="0.99/10")

    def test_describe_mentions_time_semantics(self):
        assert "window=sliding:64/16" in EngineConfig(
            window="sliding:64/16"
        ).describe()
        assert "decay=0.99/100" in EngineConfig(decay="0.99/100").describe()

    def test_window_and_decay_dict_round_trip(self):
        for config in (
            EngineConfig(window="sliding:64/16"),
            EngineConfig(decay="0.99/100"),
        ):
            assert EngineConfig.from_dict(config.to_dict()) == config


class TestCreateEngine:
    def test_unsharded_builds_fivm(self):
        engine = create_engine(toy_count_query(), config=EngineConfig())
        assert isinstance(engine, FIVMEngine)
        assert engine.config == EngineConfig()

    def test_sharded_builds_coordinator(self):
        engine = create_engine(
            toy_count_query(),
            config=EngineConfig(shards=2, backend="serial"),
            order=toy_variable_order(),
        )
        assert isinstance(engine, ShardedEngine)
        assert engine.shards == 2

    def test_none_config_is_defaults(self):
        assert isinstance(create_engine(toy_count_query()), FIVMEngine)

    def test_config_type_checked(self):
        with pytest.raises(EngineError, match="must be an EngineConfig"):
            create_engine(toy_count_query(), config={"shards": 2})


class TestLegacyKwargShim:
    def test_fivm_kwargs_warn_once_and_apply(self):
        with pytest.warns(DeprecationWarning, match="config=repro.EngineConfig"):
            engine = FIVMEngine(toy_count_query(), use_view_index=False)
        assert engine.config.use_view_index is False

    def test_sharded_kwargs_warn_and_keep_two_shard_default(self):
        with pytest.warns(DeprecationWarning):
            engine = ShardedEngine(toy_count_query(), backend="serial")
        assert engine.shards == 2  # historical ShardedEngine default

    def test_config_constructor_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            FIVMEngine(toy_count_query(), config=EngineConfig(use_fused=False))

    def test_config_plus_kwargs_rejected(self):
        with pytest.raises(EngineError, match="not both"):
            FIVMEngine(
                toy_count_query(), config=EngineConfig(), use_view_index=False
            )

    def test_unknown_kwarg_is_type_error(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            FIVMEngine(toy_count_query(), shards=2)

    def test_sharded_rejects_fivm_only_typo(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            ShardedEngine(toy_count_query(), profile_stages=True)


class TestCliDerivation:
    """Old and new flag spellings encode the same EngineConfig."""

    def _config(self, argv):
        return engine_config_from_args(build_parser().parse_args(argv))

    def test_bench_defaults(self):
        assert self._config(["bench"]) == EngineConfig()

    def test_old_and_new_spellings_agree(self):
        old = self._config(
            [
                "bench", "--shards", "2", "--shard-backend", "serial",
                "--no-view-index", "--no-columnar", "--no-fused", "--profile",
            ]
        )
        new = self._config(
            [
                "bench", "--engine-shards", "2", "--engine-backend", "serial",
                "--no-engine-view-index", "--no-engine-columnar",
                "--no-engine-fused", "--engine-profile",
            ]
        )
        assert old == new
        assert old.shards == 2 and old.backend == "serial"
        assert old.use_view_index is False and old.use_fused is False
        assert old.use_columnar is False and old.columnar_transport is False
        assert old.profile_stages is True

    def test_transport_and_shard_attrs_flags(self):
        config = self._config(
            [
                "bench", "--engine-transport", "pipe",
                "--engine-shard-attrs", "locn,dateid",
            ]
        )
        assert config.transport == "pipe"
        assert config.shard_attrs == ("locn", "dateid")

    def test_columnar_on_forces_columnar(self):
        config = self._config(["bench", "--columnar"])
        assert config.use_columnar is True and config.columnar_transport is True

    def test_serve_and_checkpoint_share_the_namespace(self):
        for argv in (
            ["serve", "--shards", "3"],
            ["checkpoint", "save", "x.fivm", "--shards", "3"],
            ["checkpoint", "load", "x.fivm", "--engine-shards", "3"],
        ):
            assert self._config(argv).shards == 3

    def test_window_and_decay_flags_shared_across_commands(self):
        for argv in (
            ["bench", "--engine-window", "sliding:400/200"],
            ["serve", "--engine-window", "sliding:400/200"],
            ["checkpoint", "save", "x.fivm", "--engine-window", "sliding:400/200"],
        ):
            assert self._config(argv).window == "sliding:400/200"
        for argv in (
            ["bench", "--engine-decay", "0.99/500"],
            ["serve", "--engine-decay", "0.99/500"],
            ["checkpoint", "load", "x.fivm", "--engine-decay", "0.99/500"],
        ):
            assert self._config(argv).decay == "0.99/500"

    def test_bad_window_flag_fails_config_derivation(self):
        with pytest.raises(EngineError, match="window"):
            self._config(["bench", "--engine-window", "spinning:9"])


class TestConfigProvenance:
    def test_export_state_records_config(self):
        engine = create_engine(
            toy_count_query(), config=EngineConfig(use_fused=False)
        )
        engine.initialize(toy_database())
        state = engine.export_state()
        assert state["config"]["use_fused"] is False
        assert EngineConfig.from_dict(state["config"]).use_fused is False

    def test_sharded_provenance_records_resolved_names(self):
        engine = create_engine(
            toy_count_query(),
            config=EngineConfig(shards=2, backend="serial"),
            order=toy_variable_order(),
        )
        with engine:
            engine.initialize(toy_database())
            config = engine.export_state()["config"]
        assert config["shards"] == 2
        assert config["backend"] == "serial"  # resolved, not "auto"

    def test_checkpoint_header_round_trips_config(self, tmp_path):
        path = str(tmp_path / "toy.fivm")
        engine = create_engine(
            toy_count_query(),
            config=EngineConfig(use_view_index=False, use_fused=False),
        )
        engine.initialize(toy_database())
        write_checkpoint(engine, path)
        info = read_checkpoint_info(path)
        assert info.config["use_view_index"] is False
        restored = EngineConfig.from_dict(info.config)
        assert restored.use_fused is False
