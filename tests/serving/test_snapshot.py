"""Epoch snapshots: publish contract, immutability, staleness, restore."""

import pytest

from repro.checkpoint import restore_checkpoint, write_checkpoint
from repro.datasets import (
    UpdateStream,
    toy_count_query,
    toy_covar_continuous_query,
    toy_database,
    toy_row_factories,
    toy_variable_order,
)
from repro.engine import (
    FIVMEngine,
    FirstOrderEngine,
    NaiveEngine,
    ShardedEngine,
    available_backends,
)
from repro.errors import EngineError
from repro.serving import SnapshotStore
from repro.config import EngineConfig


def toy_events(total=400, batch_size=40, seed=3):
    database = toy_database()
    stream = UpdateStream(
        database,
        toy_row_factories(),
        targets=("R", "S"),
        batch_size=batch_size,
        insert_ratio=0.7,
        seed=seed,
    )
    return database, list(stream.tuples(total))


def count_engine(database):
    engine = FIVMEngine(toy_count_query(), order=toy_variable_order())
    engine.initialize(database)
    return engine


class TestPublishContract:
    def test_publish_requires_initialize(self):
        engine = FIVMEngine(toy_count_query(), order=toy_variable_order())
        with pytest.raises(EngineError, match="initialize"):
            engine.publish()

    def test_no_snapshot_before_first_publish(self):
        database, _ = toy_events()
        engine = count_engine(database)
        assert engine.latest_snapshot() is None

    def test_first_publish_covers_current_result(self):
        database, events = toy_events()
        engine = count_engine(database)
        engine.apply_stream(iter(events), batch_size=50)
        snapshot = engine.publish(event_offset=len(events))
        assert snapshot.epoch == 1
        assert snapshot.event_offset == len(events)
        assert snapshot.query == engine.query.name
        assert snapshot.strategy == engine.strategy
        assert snapshot.result.data == engine.result().data
        # Zero-copy with an owned key dict: same payloads, distinct dict.
        assert snapshot.result.data is not engine.result().data
        assert engine.latest_snapshot() is snapshot

    def test_epochs_are_monotonic(self):
        database, _ = toy_events()
        engine = count_engine(database)
        epochs = [engine.publish().epoch for _ in range(3)]
        assert epochs == [1, 2, 3]
        assert engine.latest_snapshot().epoch == 3

    def test_default_event_offset_is_updates_applied(self):
        database, events = toy_events(total=120)
        engine = count_engine(database)
        engine.apply_stream(iter(events), batch_size=30)
        assert engine.publish().event_offset == engine.stats.updates_applied

    def test_negative_event_offset_rejected(self):
        database, _ = toy_events()
        engine = count_engine(database)
        with pytest.raises(EngineError, match="event_offset"):
            engine.publish(event_offset=-1)

    @pytest.mark.parametrize("engine_cls", [FIVMEngine, NaiveEngine, FirstOrderEngine])
    def test_every_engine_publishes_the_same_view(self, engine_cls):
        database, events = toy_events(total=200)
        reference = count_engine(database)
        reference.apply_stream(iter(events), batch_size=50)
        expected = reference.publish(event_offset=len(events))

        engine = engine_cls(toy_count_query(), order=toy_variable_order())
        engine.initialize(database)
        engine.apply_stream(iter(events), batch_size=50)
        snapshot = engine.publish(event_offset=len(events))
        assert snapshot.result.data == expected.result.data
        assert snapshot.strategy == engine.strategy

    def test_sharded_merge_on_publish_matches_unsharded(self):
        database, events = toy_events(total=300)
        reference = count_engine(database)
        reference.apply_stream(iter(events), batch_size=50)
        expected = reference.publish(event_offset=len(events))

        engine = ShardedEngine(
            toy_count_query(),
            order=toy_variable_order(),
            config=EngineConfig(shards=2, backend="serial"),
        )
        with engine:
            engine.initialize(database)
            engine.apply_stream(iter(events), batch_size=50)
            snapshot = engine.publish(event_offset=len(events))
            assert snapshot.result.data == expected.result.data
            assert snapshot.event_offset == expected.event_offset


class TestSnapshotImmutability:
    def test_published_snapshot_survives_further_maintenance(self):
        database, events = toy_events(total=400)
        engine = count_engine(database)
        engine.apply_stream(iter(events[:200]), batch_size=50)
        snapshot = engine.publish(event_offset=200)
        frozen = dict(snapshot.result.data)

        engine.apply_stream(iter(events[200:]), batch_size=50)
        assert snapshot.result.data == frozen
        assert engine.result().data != frozen
        # The live engine moved on; a fresh publish sees the new state.
        assert engine.publish(event_offset=400).result.data == engine.result().data

    def test_store_swap_is_all_or_nothing(self):
        store = SnapshotStore()
        assert store.latest is None and store.epoch == 0
        database, _ = toy_events()
        engine = count_engine(database)
        first = store.publish(
            engine.result().copy(),
            query="Q",
            strategy="fivm",
            event_offset=10,
        )
        assert store.latest is first
        second = store.publish(
            engine.result().copy(),
            query="Q",
            strategy="fivm",
            event_offset=20,
        )
        assert store.latest is second
        assert (second.epoch, second.event_offset) == (2, 20)


class TestStalenessBounds:
    def test_staleness_is_clamped_nonnegative(self):
        database, _ = toy_events()
        engine = count_engine(database)
        snapshot = engine.publish(event_offset=100)
        assert snapshot.staleness(250) == 150
        assert snapshot.staleness(100) == 0
        assert snapshot.staleness(40) == 0  # never negative

    def test_publish_batches_lag_never_exceeds_one_batch(self):
        database, events = toy_events(total=330)
        engine = count_engine(database)
        offsets = []
        original = engine.publish

        def recording(event_offset=None, window=None):
            offsets.append(event_offset)
            return original(event_offset=event_offset, window=window)

        engine.publish = recording
        engine.apply_stream(iter(events), batch_size=50, publish_batches=True)
        assert offsets[-1] == len(events)
        assert all(b - a <= 50 for a, b in zip(offsets, offsets[1:]))
        assert engine.latest_snapshot().event_offset == len(events)

    def test_staleness_zero_at_checkpoint_boundaries(self):
        database, events = toy_events(total=300)
        engine = count_engine(database)
        boundaries = []

        def on_checkpoint(checkpointed, count):
            snapshot = checkpointed.latest_snapshot()
            # The publish at the boundary covers exactly the checkpointed
            # position, and the snapshot equals the fully applied state.
            assert snapshot.event_offset == count
            assert snapshot.staleness(count) == 0
            assert snapshot.result.data == checkpointed.result().data
            boundaries.append(count)

        engine.apply_stream(
            iter(events),
            batch_size=40,
            checkpoint_every=90,
            on_checkpoint=on_checkpoint,
            publish_batches=True,
        )
        assert boundaries == [90, 180, 270]


class TestServingStateRoundTrip:
    def make_covar_engine(self, database):
        engine = FIVMEngine(toy_covar_continuous_query(), order=toy_variable_order())
        engine.initialize(database)
        return engine

    def test_export_import_preserves_published_epoch(self):
        database, events = toy_events(total=150)
        engine = self.make_covar_engine(database)
        engine.apply_stream(iter(events), batch_size=50, publish_batches=True)
        exported = engine.latest_snapshot()
        state = engine.export_state()
        assert state["serving"] == {
            "epoch": exported.epoch,
            "event_offset": exported.event_offset,
            "published_at": exported.published_at,
        }

        restored = FIVMEngine(toy_covar_continuous_query(), order=toy_variable_order())
        restored.import_state(state)
        snapshot = restored.latest_snapshot()
        assert snapshot is not None
        assert snapshot.epoch == exported.epoch
        assert snapshot.event_offset == exported.event_offset
        assert snapshot.published_at == exported.published_at
        assert snapshot.result.data == exported.result.data
        # The epoch sequence continues from the restored epoch.
        assert restored.publish().epoch == exported.epoch + 1

    def test_unpublished_engine_exports_no_serving_header(self):
        database, events = toy_events(total=100)
        engine = self.make_covar_engine(database)
        engine.apply_stream(iter(events), batch_size=50)
        state = engine.export_state()
        assert "serving" not in state

        restored = FIVMEngine(toy_covar_continuous_query(), order=toy_variable_order())
        restored.import_state(state)
        assert restored.latest_snapshot() is None

    def test_checkpoint_file_round_trip_keeps_snapshot(self, tmp_path):
        database, events = toy_events(total=150)
        engine = self.make_covar_engine(database)
        engine.apply_stream(iter(events), batch_size=50, publish_batches=True)
        exported = engine.latest_snapshot()
        path = str(tmp_path / "serving.ckpt")
        write_checkpoint(engine, path)

        restored = FIVMEngine(toy_covar_continuous_query(), order=toy_variable_order())
        restore_checkpoint(restored, path)
        snapshot = restored.latest_snapshot()
        assert (snapshot.epoch, snapshot.event_offset) == (
            exported.epoch,
            exported.event_offset,
        )
        assert snapshot.published_at == exported.published_at
        assert snapshot.result.data == exported.result.data


class TestShardedPublishFailurePaths:
    def make_engine(self, backend, shards=2):
        engine = ShardedEngine(
            toy_count_query(),
            order=toy_variable_order(),
            config=EngineConfig(shards=shards, backend=backend),
        )
        engine.initialize(toy_database())
        return engine

    def test_closed_engine_publish_is_descriptive(self):
        engine = self.make_engine("serial")
        engine.close()
        with pytest.raises(EngineError, match="closed"):
            engine.publish()
        with pytest.raises(EngineError, match="closed"):
            engine.export_state()

    @pytest.mark.skipif(
        "process" not in available_backends(), reason="process backend unavailable"
    )
    def test_failed_worker_surfaces_publish_context(self):
        engine = self.make_engine("process")
        try:
            # Inject a failing command directly into shard 1's pipe: the
            # next gather must name the shard *and* the publish path.
            engine._backend.connections[1].send(("apply", "NoSuchRelation", {}))
            with pytest.raises(EngineError, match="publish failed"):
                engine.publish()
        finally:
            engine.close()

    @pytest.mark.skipif(
        "process" not in available_backends(), reason="process backend unavailable"
    )
    def test_failed_worker_surfaces_export_context(self):
        engine = self.make_engine("process")
        try:
            engine._backend.connections[1].send(("apply", "NoSuchRelation", {}))
            with pytest.raises(EngineError, match="export_state failed"):
                engine.export_state()
        finally:
            engine.close()

    @pytest.mark.skipif(
        "process" not in available_backends(), reason="process backend unavailable"
    )
    def test_dead_worker_then_closed(self):
        engine = self.make_engine("process")
        try:
            engine._backend.processes[0].terminate()
            engine._backend.processes[0].join(timeout=5.0)
            with pytest.raises(EngineError, match="publish failed"):
                engine.publish()
            # The backend shut down on the dead worker; later publishes
            # report the closed engine, not a raw pipe error.
            with pytest.raises(EngineError, match="closed"):
                engine.publish()
        finally:
            engine.close()
