"""Degraded serving: a dead writer never takes reads down.

The serving contract under faults: ``/healthz`` and ``/stats`` answer
200 throughout — flipping to ``degraded: true`` with a reason when the
ingest writer has failed or the engine is mid-recovery — and the data
endpoints keep answering from the last *published* snapshot.
"""

import threading

from repro.serving import IngestThread, ServingApp, build_serving_scenario


def scenario_engine(payload="covar", apply_events=120):
    scenario = build_serving_scenario("toy", payload)
    engine = scenario.engine()
    if apply_events:
        events = scenario.stream(batch_size=40).tuples(apply_events)
        engine.apply_stream(events, batch_size=40)
    engine.publish(event_offset=apply_events)
    return scenario, engine


class TestDegradedEndpoints:
    def test_healthz_flags_degraded_but_stays_200(self):
        _, engine = scenario_engine()
        reason = [None]
        app = ServingApp(engine, degraded_source=lambda: reason[0])
        status, body = app.handle("/healthz")
        assert (status, body["status"], body["degraded"]) == (200, "ok", False)

        reason[0] = "ingest writer failed: boom"
        status, body = app.handle("/healthz")
        assert status == 200
        assert body["status"] == "degraded"
        assert body["degraded"] is True
        assert body["degraded_reason"] == "ingest writer failed: boom"

    def test_stats_carries_reason_and_engine_health(self):
        _, engine = scenario_engine()
        app = ServingApp(engine, degraded_source=lambda: "writer dead")
        status, body = app.handle("/stats")
        assert status == 200
        assert body["degraded"] is True
        assert body["degraded_reason"] == "writer dead"
        assert body["health"]["status"] == "ok"
        assert body["health"]["supervised"] is False

    def test_data_endpoints_keep_serving_last_snapshot(self):
        # The core graceful-degradation property: reads answer from the
        # published epoch even while the app reports itself degraded.
        _, engine = scenario_engine()
        snapshot = engine.latest_snapshot()
        app = ServingApp(engine, degraded_source=lambda: "writer dead")
        for path in ("/covar", "/result"):
            status, body = app.handle(path)
            assert status == 200, path
            assert body["epoch"] == snapshot.epoch

    def test_broken_degraded_probe_degrades_instead_of_erroring(self):
        _, engine = scenario_engine()

        def explode():
            raise RuntimeError("probe bug")

        app = ServingApp(engine, degraded_source=explode)
        status, body = app.handle("/healthz")
        assert status == 200
        assert body["degraded"] is True
        assert "probe bug" in body["degraded_reason"]


class TestWriterFailure:
    def test_ingest_error_surfaces_while_reads_continue(self):
        scenario, engine = scenario_engine(apply_events=0)

        def events_then_crash():
            for i, event in enumerate(
                scenario.stream(batch_size=20).tuples(200)
            ):
                if i == 100:
                    raise RuntimeError("simulated writer death")
                yield event

        ingest = IngestThread(engine, events_then_crash(), batch_size=20)

        def degraded_reason():
            if ingest.error is not None:
                return f"ingest writer failed: {ingest.error}"
            return None

        app = ServingApp(
            engine,
            position_source=lambda: ingest.consumed,
            degraded_source=degraded_reason,
        )
        ingest.start()
        ingest.join(timeout=30.0)
        assert isinstance(ingest.error, RuntimeError)
        status, body = app.handle("/healthz")
        assert status == 200
        assert body["degraded"] is True
        assert "simulated writer death" in body["degraded_reason"]
        # Reads still answer from the epochs published before the death.
        status, body = app.handle("/result")
        assert status == 200
        assert body["epoch"] >= 1


class TestGracefulStop:
    def test_stop_drains_at_event_boundary(self):
        scenario, engine = scenario_engine(apply_events=0)
        release = threading.Event()

        def gated_events():
            for i, event in enumerate(
                scenario.stream(batch_size=10).tuples(100000)
            ):
                if i == 50:
                    release.wait(timeout=30.0)
                yield event

        ingest = IngestThread(engine, gated_events(), batch_size=10)
        ingest.start()
        ingest.stop()
        assert ingest.stopping
        release.set()
        ingest.join(timeout=30.0)
        assert not ingest.is_alive()
        assert ingest.error is None
        # Drained mid-stream: far short of the requested events, and the
        # engine still answers consistently from what was applied.
        assert 0 < ingest.consumed < 100000
        assert engine.result() is not None

    def test_checkpoint_callback_rides_ingest(self):
        scenario, engine = scenario_engine(apply_events=0)
        positions = []
        ingest = IngestThread(
            engine,
            scenario.stream(batch_size=20).tuples(200),
            batch_size=20,
            checkpoint_every=100,
            on_checkpoint=lambda eng, pos: positions.append(pos),
        )
        ingest.start()
        ingest.join(timeout=30.0)
        assert ingest.error is None
        assert positions and positions == sorted(positions)
        assert all(pos % 100 == 0 for pos in positions)
