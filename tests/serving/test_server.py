"""Serving front end: endpoints, HTTP transport, concurrency, restore."""

import http.client
import json
import threading

import pytest

from repro.datasets import UpdateStream, toy_database, toy_row_factories
from repro.engine import FIVMEngine
from repro.ml.covar import covar_from_payload
from repro.ml.mi import mutual_information_matrix
from repro.ml.model_selection import rank_features
from repro.ml.regression import RidgeRegression
from repro.serving import IngestThread, ServerThread, ServingApp, build_serving_scenario

VOLATILE = ("published_at",)


def strip_volatile(body):
    return {k: v for k, v in body.items() if k not in VOLATILE}


def scenario_app(payload, apply_events=0, publish=True):
    """An initialized toy engine + app, optionally warmed with updates."""
    scenario = build_serving_scenario("toy", payload)
    engine = scenario.engine()
    if apply_events:
        events = scenario.stream(batch_size=50).tuples(apply_events)
        engine.apply_stream(events, batch_size=50)
    if publish:
        engine.publish(event_offset=apply_events)
    app = ServingApp(
        engine,
        regression_label=scenario.regression_label,
        mi_label=scenario.mi_label,
        metadata=scenario.provenance(batch_size=50, insert_ratio=0.7),
    )
    return scenario, engine, app


class TestServingAppEndpoints:
    def test_data_endpoints_503_before_first_publish(self):
        _, _, app = scenario_app("covar", publish=False)
        for path in ("/covar", "/model", "/predict", "/result", "/topk"):
            status, body = app.handle(path)
            assert status == 503, path
            assert body["epoch"] == 0
        status, body = app.handle("/healthz")
        assert status == 200
        assert body["status"] == "warming"

    def test_unknown_endpoint_404(self):
        _, _, app = scenario_app("covar")
        status, body = app.handle("/nope")
        assert status == 404
        assert "unknown endpoint" in body["error"]

    def test_covar_payload_serves_matrix_model_prediction(self):
        _, engine, app = scenario_app("covar", apply_events=150)
        snapshot = engine.latest_snapshot()

        status, covar_body = app.handle("/covar")
        assert status == 200
        assert covar_body["epoch"] == snapshot.epoch
        assert covar_body["event_offset"] == 150
        expected = covar_from_payload(snapshot.result.payload(()), engine.plan)
        assert covar_body["count"] == expected.count
        assert covar_body["sums"] == expected.sums.tolist()
        assert covar_body["moments"] == expected.moments.tolist()

        status, model_body = app.handle("/model")
        assert status == 200
        solver = RidgeRegression(("B", "C"), "D")
        reference = solver.fit_closed_form(expected)
        assert model_body["label"] == "D"
        assert model_body["intercept"] == reference.intercept
        assert model_body["coefficients"] == reference.coefficients()

        status, prediction = app.handle("/predict", {"B": "2", "C": "3"})
        assert status == 200
        assert prediction["prediction"] == reference.predict({"B": 2, "C": 3})
        assert prediction["row"] == {"B": 2, "C": 3}

    def test_predict_missing_features_400(self):
        _, _, app = scenario_app("covar", apply_events=60)
        status, body = app.handle("/predict", {"B": "2"})
        assert status == 400
        assert "C" in body["error"]
        assert body["features"] == ["B", "C"]

    def test_topk_on_covar_payload_409(self):
        _, _, app = scenario_app("covar")
        status, body = app.handle("/topk")
        assert status == 409
        assert "MI" in body["error"]

    def test_model_endpoints_on_count_payload_409(self):
        _, _, app = scenario_app("count", apply_events=60)
        for path in ("/covar", "/model", "/predict"):
            status, body = app.handle(path)
            assert status == 409, path
            assert "COVAR" in body["error"]
        # /result works for any payload.
        status, body = app.handle("/result")
        assert status == 200
        assert body["schema"] == []

    def test_mi_payload_ranks_features(self):
        _, engine, app = scenario_app("mi", apply_events=120)
        snapshot = engine.latest_snapshot()
        mi = mutual_information_matrix(snapshot.result.payload(()), engine.plan)
        expected = rank_features(mi, "B")

        status, body = app.handle("/topk")
        assert status == 200
        assert body["label"] == "B"
        assert body["ranking"] == [list(pair) for pair in expected.ranked]

        status, top1 = app.handle("/topk", {"k": "1"})
        assert status == 200
        assert top1["k"] == 1
        assert top1["ranking"] == [list(expected.ranked[0])]

    @pytest.mark.parametrize("bad_k", ["0", "-3", "two"])
    def test_topk_rejects_bad_k(self, bad_k):
        _, _, app = scenario_app("mi", apply_events=60)
        status, body = app.handle("/topk", {"k": bad_k})
        assert status == 400
        assert "k must be" in body["error"]

    def test_stats_echoes_provenance_and_counts_reads(self):
        scenario, _, app = scenario_app("covar", apply_events=60)
        app.handle("/covar")
        app.handle("/covar")
        app.handle("/nope")
        status, body = app.handle("/stats")
        assert status == 200
        assert body["metadata"] == scenario.provenance(batch_size=50, insert_ratio=0.7)
        assert body["serving"]["reads"] == 4
        assert body["serving"]["errors"] == 1
        assert body["serving"]["by_endpoint"]["/covar"] == 2
        assert body["engine"] == dict(app.engine.latest_snapshot().stats)

    def test_healthz_reports_staleness_against_position(self):
        _, engine, app = scenario_app("covar", apply_events=100)
        app.position_source = lambda: 130
        status, body = app.handle("/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["epoch"] == engine.latest_snapshot().epoch
        assert body["position"] == 130
        assert body["staleness"] == 30
        assert body["age_s"] >= 0


class TestHTTPTransport:
    def start(self, app):
        server = ServerThread(app, port=0)
        server.start()
        return server

    def get(self, server, path, method="GET"):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            conn.request(method, path)
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def test_http_responses_match_direct_dispatch(self):
        _, _, app = scenario_app("covar", apply_events=100)
        server = self.start(app)
        try:
            for path in ("/covar", "/model", "/result"):
                http_status, http_body = self.get(server, path)
                direct_status, direct_body = app.handle(path)
                assert (http_status, http_body) == (direct_status, direct_body)
            status, body = self.get(server, "/predict?B=2&C=3")
            assert status == 200
            assert body["row"] == {"B": 2, "C": 3}
            assert self.get(server, "/nope")[0] == 404
        finally:
            server.stop()

    def test_keep_alive_serves_many_requests_per_connection(self):
        _, _, app = scenario_app("covar", apply_events=60)
        server = self.start(app)
        try:
            conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
            try:
                epochs = []
                for _ in range(5):
                    conn.request("GET", "/covar")
                    response = conn.getresponse()
                    assert response.status == 200
                    epochs.append(json.loads(response.read())["epoch"])
                assert epochs == [1] * 5
            finally:
                conn.close()
        finally:
            server.stop()

    def test_non_get_methods_405(self):
        _, _, app = scenario_app("covar", apply_events=60)
        server = self.start(app)
        try:
            status, body = self.get(server, "/covar", method="POST")
            assert status == 405
            assert "GET only" in body["error"]
        finally:
            server.stop()


def count_engine():
    scenario = build_serving_scenario("toy", "count")
    return scenario, scenario.engine()


def expected_bodies_by_offset(events, batch_size):
    """offset -> /result body, replayed on a fresh engine post hoc."""
    _, engine = count_engine()
    app = ServingApp(engine)
    expected = {}
    original = engine.publish

    def recording(event_offset=None, window=None):
        snapshot = original(event_offset=event_offset, window=window)
        expected[event_offset] = strip_volatile(app.handle("/result")[1])
        return snapshot

    engine.publish = recording
    engine.publish(event_offset=0)
    engine.apply_stream(iter(events), batch_size=batch_size, publish_batches=True)
    return expected


class TestConcurrentReaders:
    def test_readers_observe_only_fully_published_epochs(self):
        """No torn reads: every concurrent /result body equals the batch
        evaluation replayed at exactly the served event offset."""
        scenario, engine = count_engine()
        batch_size = 50
        events = list(scenario.stream(batch_size=batch_size).tuples(2000))
        expected = expected_bodies_by_offset(events, batch_size)

        engine.publish(event_offset=0)
        ingest = IngestThread(engine, iter(events), batch_size=batch_size)
        app = ServingApp(engine, position_source=lambda: ingest.consumed)
        observations = [[] for _ in range(4)]
        stop = threading.Event()

        def reader(slot):
            while not stop.is_set():
                status, body = app.handle("/result")
                observations[slot].append((status, strip_volatile(body)))

        readers = [
            threading.Thread(target=reader, args=(slot,), daemon=True)
            for slot in range(len(observations))
        ]
        for thread in readers:
            thread.start()
        ingest.start()
        ingest.join(timeout=60)
        stop.set()
        for thread in readers:
            thread.join(timeout=10)

        assert ingest.error is None
        assert ingest.consumed == len(events)
        assert engine.latest_snapshot().event_offset == len(events)
        for recorded in observations:
            assert recorded, "reader thread made no reads"
            offsets = []
            for status, body in recorded:
                assert status == 200
                offset = body["event_offset"]
                # Exactly a published boundary, never an intermediate state.
                assert body == expected[offset]
                offsets.append(offset)
            assert offsets == sorted(offsets), "epochs went backwards"

    def test_healthz_staleness_bounded_by_one_batch_after_ingest(self):
        scenario, engine = count_engine()
        events = list(scenario.stream(batch_size=40).tuples(500))
        engine.publish(event_offset=0)
        ingest = IngestThread(engine, iter(events), batch_size=40)
        app = ServingApp(engine, position_source=lambda: ingest.consumed)
        ingest.start()
        ingest.join(timeout=60)
        assert ingest.error is None
        status, body = app.handle("/healthz")
        assert status == 200
        # consumed counts behind apply_stream's batching, so the final
        # published offset covers every consumed event: staleness 0.
        assert body["staleness"] == 0
        assert body["event_offset"] == len(events)


class TestServeAfterRestore:
    def test_restored_engine_serves_identical_bodies(self):
        scenario = build_serving_scenario("toy", "covar")
        engine = scenario.engine()
        events = scenario.stream(batch_size=50).tuples(200)
        engine.apply_stream(events, batch_size=50, publish_batches=True)
        app = ServingApp(engine, regression_label=scenario.regression_label)
        before = {path: app.handle(path) for path in ("/covar", "/model", "/result")}

        restored = FIVMEngine(scenario.query, order=scenario.order)
        restored.import_state(engine.export_state())
        restored_app = ServingApp(
            restored, regression_label=scenario.regression_label
        )
        # No new publish needed: the restored engine serves immediately,
        # and published_at survives, so bodies match bit for bit.
        for path, (status, body) in before.items():
            assert restored_app.handle(path) == (status, body), path

    def test_restore_mid_stream_then_resume_publishing(self):
        scenario = build_serving_scenario("toy", "count")
        engine = scenario.engine()
        events = list(scenario.stream(batch_size=50).tuples(400))
        engine.apply_stream(iter(events[:200]), batch_size=50, publish_batches=True)

        restored = FIVMEngine(scenario.query, order=scenario.order)
        restored.import_state(engine.export_state())
        resumed_epoch = restored.latest_snapshot().epoch
        restored.apply_stream(iter(events[200:]), batch_size=50, publish_batches=True)

        # Continues the epoch sequence and converges to the full-stream state.
        assert restored.latest_snapshot().epoch > resumed_epoch
        reference = scenario.engine()
        reference.apply_stream(iter(events), batch_size=50)
        assert restored.result().data == reference.result().data


class TestTimeAwareServing:
    """The serve wiring end to end: --engine-* argv -> EngineConfig ->
    windowed/decayed ingest -> /stats round trip."""

    def _serve_config(self, *extra):
        from repro.cli import build_parser
        from repro.config import engine_config_from_args

        return engine_config_from_args(
            build_parser().parse_args(["serve", *extra])
        )

    def test_window_argv_reaches_stats_envelope(self):
        from repro.data import WindowedStream

        config = self._serve_config("--engine-window", "sliding:40/20")
        assert config.window == "sliding:40/20"
        scenario = build_serving_scenario("toy", "count")
        engine = scenario.engine(config=config)
        engine.publish(event_offset=0)
        events = WindowedStream(
            config.window_spec(), scenario.stream(batch_size=25).tuples(100)
        )
        ingest = IngestThread(engine, events, batch_size=25)
        ingest.start()
        ingest.join(timeout=30)
        assert ingest.error is None
        app = ServingApp(engine, position_source=lambda: ingest.consumed)
        for path in ("/stats", "/healthz", "/result"):
            status, body = app.handle(path)
            assert status == 200, path
            low, high = body["window"]
            assert high - low <= config.window_spec().size
            assert high >= 100 - 1  # bounds track the consumed stream
        # The engine's provenance records the argv-derived config.
        assert engine.export_state()["config"]["window"] == "sliding:40/20"

    def test_decay_argv_reaches_engine_stats(self):
        config = self._serve_config("--engine-decay", "0.95/25")
        assert config.decay == "0.95/25"
        scenario = build_serving_scenario("toy", "covar")
        engine = scenario.engine(config=config)
        engine.publish(event_offset=0)
        ingest = IngestThread(
            engine, scenario.stream(batch_size=25).tuples(100), batch_size=25
        )
        ingest.start()
        ingest.join(timeout=30)
        assert ingest.error is None
        app = ServingApp(engine, regression_label=scenario.regression_label)
        status, body = app.handle("/stats")
        assert status == 200
        assert body["engine"]["decay_ticks"] == 100 // 25
        assert "window" not in body  # decay is not a window
        assert engine.export_state()["config"]["decay"] == "0.95/25"

    def test_unwindowed_serving_carries_no_window_key(self):
        _, engine, app = scenario_app("count", apply_events=50)
        for path in ("/stats", "/result"):
            _status, body = app.handle(path)
            assert "window" not in body


def test_toy_stream_prefix_is_deterministic():
    """The replay contract: same (factories, seed, batch) -> same events,
    and a shorter prefix is a prefix of a longer one."""
    database = toy_database()

    def stream(total):
        return list(
            UpdateStream(
                database,
                toy_row_factories(),
                targets=("R", "S"),
                batch_size=50,
                insert_ratio=0.7,
                seed=9,
            ).tuples(total)
        )

    long = stream(300)
    assert stream(300) == long
    # tuples(N) rounds up to a batch boundary, but the event sequence is
    # independent of N: a shorter request is a prefix of a longer one.
    short = stream(120)
    assert len(short) >= 120
    assert short == long[: len(short)]
