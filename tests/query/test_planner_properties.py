"""Planner property: every random query gets a valid variable order."""

from hypothesis import given
from hypothesis import strategies as st

from repro.data import RelationSchema
from repro.query import Query, plan_variable_order
from repro.rings import CountSpec

ATTRS = ("A", "B", "C", "D", "E", "F")


def queries():
    """Random multi-relation queries over a small attribute pool."""
    schema = st.lists(
        st.sampled_from(ATTRS), min_size=1, max_size=4, unique=True
    )

    def build(schemas_and_free):
        schemas, free_seed = schemas_and_free
        relations = tuple(
            RelationSchema(f"R{i}", tuple(attrs))
            for i, attrs in enumerate(schemas)
        )
        attrs = []
        for rel in relations:
            attrs.extend(rel.attributes)
        free = tuple(sorted({attrs[i % len(attrs)] for i in free_seed}))
        return Query("Q", relations, spec=CountSpec(), free=free)

    return st.tuples(
        st.lists(schema, min_size=1, max_size=4),
        st.lists(st.integers(0, 10), max_size=2),
    ).map(build)


@given(queries())
def test_planner_output_is_valid(query):
    order = plan_variable_order(query)
    order.validate(query)  # raises on any violation


@given(queries())
def test_planner_covers_required_variables(query):
    order = plan_variable_order(query)
    variables = set(order.variables)
    assert set(query.join_attributes) <= variables
    assert set(query.free) <= variables


@given(queries())
def test_planner_anchors_every_relation(query):
    order = plan_variable_order(query)
    for name in query.relation_names:
        order.anchor_of(name)  # raises if unanchored


@given(queries())
def test_planned_tree_evaluates(query):
    """The planned order must produce a buildable view tree whose root is
    keyed exactly by the free variables."""
    from repro.viewtree import build_view_tree

    tree = build_view_tree(query, plan_variable_order(query))
    assert set(tree.root.key) == set(query.free)
