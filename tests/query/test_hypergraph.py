"""Join hypergraphs: connectivity and GYO acyclicity."""

from repro.query import Hypergraph


def triangle():
    return Hypergraph({"R": ("A", "B"), "S": ("B", "C"), "T": ("C", "A")})


def path3():
    return Hypergraph({"R": ("A", "B"), "S": ("B", "C"), "T": ("C", "D")})


class TestBasics:
    def test_vertices_and_degree(self):
        g = path3()
        assert g.vertices == {"A", "B", "C", "D"}
        assert g.vertex_degree("B") == 2
        assert g.vertex_degree("A") == 1

    def test_edges_with(self):
        assert set(path3().edges_with("C")) == {"S", "T"}

    def test_shared_vertices(self):
        assert path3().shared_vertices() == {"B", "C"}


class TestComponents:
    def test_connected_graph_single_component(self):
        g = path3()
        comps = g.components(g.vertices, g.edges)
        assert len(comps) == 1
        assert comps[0][0] == {"A", "B", "C", "D"}

    def test_removal_splits(self):
        g = path3()
        comps = g.components({"A", "C", "D"}, g.edges)
        # removing B separates R's side from S/T's side
        vertex_sets = sorted(frozenset(vs) for vs, _ in comps)
        assert frozenset({"A"}) in vertex_sets
        assert frozenset({"C", "D"}) in vertex_sets

    def test_edge_only_component(self):
        g = path3()
        comps = g.components(set(), g.edges)
        assert all(not vs for vs, _ in comps)
        assert sum(len(es) for _, es in comps) == 3

    def test_disconnected(self):
        g = Hypergraph({"R": ("A",), "S": ("B",)})
        assert not g.is_connected()
        assert g.components(g.vertices, g.edges)[0][1] in (["R"], ["S"])

    def test_is_connected_true(self):
        assert path3().is_connected()


class TestGYO:
    def test_path_is_acyclic(self):
        assert path3().is_acyclic()

    def test_triangle_is_cyclic(self):
        assert not triangle().is_acyclic()

    def test_star_is_acyclic(self):
        g = Hypergraph(
            {"F": ("A", "B", "C"), "R": ("A",), "S": ("B",), "T": ("C",)}
        )
        assert g.is_acyclic()

    def test_single_edge_acyclic(self):
        assert Hypergraph({"R": ("A", "B")}).is_acyclic()

    def test_contained_edges_acyclic(self):
        g = Hypergraph({"R": ("A", "B", "C"), "S": ("A", "B")})
        assert g.is_acyclic()

    def test_retailer_shape_acyclic(self):
        g = Hypergraph(
            {
                "Inventory": ("locn", "dateid", "ksn"),
                "Location": ("locn", "zip"),
                "Census": ("zip",),
                "Item": ("ksn",),
                "Weather": ("locn", "dateid"),
            }
        )
        assert g.is_acyclic()

    def test_cycle_through_hyperedges(self):
        g = Hypergraph(
            {"R": ("A", "B"), "S": ("B", "C"), "T": ("C", "D"), "U": ("D", "A")}
        )
        assert not g.is_acyclic()
