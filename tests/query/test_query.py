"""Query objects."""

import pytest

from repro.data import RelationSchema
from repro.errors import QueryError
from repro.query import Query
from repro.rings import CountSpec, CovarSpec, Feature

R = RelationSchema("R", ("A", "B"))
S = RelationSchema("S", ("A", "C", "D"))


class TestQuery:
    def test_attributes_in_first_seen_order(self):
        q = Query("Q", (R, S))
        assert q.attributes == ("A", "B", "C", "D")

    def test_join_attributes(self):
        q = Query("Q", (R, S))
        assert q.join_attributes == ("A",)

    def test_relation_names(self):
        assert Query("Q", (R, S)).relation_names == ("R", "S")

    def test_schema_of(self):
        q = Query("Q", (R, S))
        assert q.schema_of("S").attributes == ("A", "C", "D")
        with pytest.raises(QueryError):
            q.schema_of("T")

    def test_no_relations_rejected(self):
        with pytest.raises(QueryError):
            Query("Q", ())

    def test_duplicate_relation_rejected(self):
        with pytest.raises(QueryError):
            Query("Q", (R, R))

    def test_unknown_free_var_rejected(self):
        with pytest.raises(QueryError):
            Query("Q", (R, S), free=("Z",))

    def test_unknown_lifted_attr_rejected(self):
        spec = CovarSpec((Feature.continuous("Z"),))
        with pytest.raises(QueryError):
            Query("Q", (R, S), spec=spec)

    def test_acyclic(self):
        assert Query("Q", (R, S)).is_acyclic()
        cyclic = Query(
            "C",
            (
                RelationSchema("R", ("A", "B")),
                RelationSchema("S", ("B", "C")),
                RelationSchema("T", ("C", "A")),
            ),
        )
        assert not cyclic.is_acyclic()

    def test_build_plan(self):
        plan = Query("Q", (R, S), spec=CountSpec()).build_plan()
        assert plan.ring.name == "Z"
