"""Variable orders: structure, validation and dependency sets."""

import pytest

from repro.data import RelationSchema
from repro.errors import QueryError
from repro.query import Query, VONode, VariableOrder

R = RelationSchema("R", ("A", "B"))
S = RelationSchema("S", ("A", "C", "D"))
QUERY = Query("Q", (R, S))


def figure1_order():
    return VariableOrder([VONode("A", relations=("R", "S"))])


def deep_order():
    # A -> B [R], A -> C -> D [S]
    return VariableOrder(
        [
            VONode(
                "A",
                children=(
                    VONode("B", relations=("R",)),
                    VONode("C", children=(VONode("D", relations=("S",)),)),
                ),
            )
        ]
    )


class TestStructure:
    def test_variables_preorder(self):
        assert deep_order().variables == ("A", "B", "C", "D")

    def test_parent_and_ancestors(self):
        order = deep_order()
        assert order.parent("A") is None
        assert order.parent("D") == "C"
        assert order.ancestors("D") == ("A", "C")
        assert order.path_to_root("D") == ("D", "C", "A")

    def test_anchor_of(self):
        order = deep_order()
        assert order.anchor_of("R") == "B"
        assert order.anchor_of("S") == "D"
        with pytest.raises(QueryError):
            order.anchor_of("T")

    def test_root_relations(self):
        order = VariableOrder([], root_relations=("R",))
        assert order.anchor_of("R") is None

    def test_subtree_accessors(self):
        order = deep_order()
        assert order.subtree_variables("C") == ("C", "D")
        assert order.subtree_relations("C") == ("S",)
        assert set(order.subtree_relations("A")) == {"R", "S"}

    def test_duplicate_variable_rejected(self):
        with pytest.raises(QueryError):
            VariableOrder([VONode("A", children=(VONode("A"),))])

    def test_duplicate_anchor_rejected(self):
        with pytest.raises(QueryError):
            VariableOrder(
                [VONode("A", relations=("R",), children=(VONode("B", relations=("R",)),))]
            )

    def test_unknown_variable_rejected(self):
        with pytest.raises(QueryError):
            deep_order().node("Z")


class TestValidation:
    def test_figure1_order_valid(self):
        figure1_order().validate(QUERY)

    def test_deep_order_valid(self):
        deep_order().validate(QUERY)

    def test_missing_anchor(self):
        order = VariableOrder([VONode("A", relations=("R",))])
        with pytest.raises(QueryError):
            order.validate(QUERY)

    def test_variable_not_in_query(self):
        order = VariableOrder([VONode("Z", relations=("R", "S"))])
        with pytest.raises(QueryError):
            order.validate(QUERY)

    def test_shared_attr_must_be_variable(self):
        # B-only order: A (shared) is not a variable -> invalid.
        order = VariableOrder([VONode("B", relations=("R", "S"))])
        with pytest.raises(QueryError):
            order.validate(QUERY)

    def test_relation_variables_off_path(self):
        # D anchored under B: S's variables {A, C, D} not on B's path.
        order = VariableOrder(
            [
                VONode(
                    "A",
                    children=(
                        VONode("B", relations=("R", "S")),
                        VONode("C", children=(VONode("D"),)),
                    ),
                )
            ]
        )
        with pytest.raises(QueryError):
            order.validate(QUERY)

    def test_free_var_must_be_variable(self):
        query = Query("Q", (R, S), free=("B",))
        figure1_order().validate(Query("Q", (R, S)))
        with pytest.raises(QueryError):
            figure1_order().validate(query)


class TestDependencySets:
    def test_root_has_empty_dep(self):
        assert deep_order().dependency_set(QUERY, "A") == ()

    def test_leaf_variable_deps(self):
        order = deep_order()
        assert order.dependency_set(QUERY, "B") == ("A",)
        assert order.dependency_set(QUERY, "C") == ("A",)
        assert order.dependency_set(QUERY, "D") == ("A", "C")

    def test_dep_ordering_follows_path(self):
        # dep(D) must be (A, C) in root-first order, not (C, A).
        assert deep_order().dependency_set(QUERY, "D")[0] == "A"

    def test_free_below(self):
        query = Query("Q", (R, S), free=("C",))
        order = deep_order()
        assert order.free_below(query, "A") == ("C",)
        assert order.free_below(query, "C") == ("C",)
        assert order.free_below(query, "B") == ()


class TestChainConstructor:
    def test_chain_valid_for_any_query(self):
        order = VariableOrder.chain(
            ("A", "B", "C", "D"), {"R": "B", "S": "D"}
        )
        order.validate(QUERY)
        assert order.variables == ("A", "B", "C", "D")
        assert order.anchor_of("S") == "D"

    def test_empty_chain(self):
        order = VariableOrder.chain((), {}, root_relations=("R",))
        assert order.variables == ()
        assert order.anchor_of("R") is None

    def test_render_contains_structure(self):
        text = deep_order().render()
        assert "A" in text and "[R]" in text
