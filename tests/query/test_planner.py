"""The greedy variable-order planner."""

import pytest

from repro.data import RelationSchema
from repro.datasets import RETAILER_SCHEMAS
from repro.errors import QueryError
from repro.query import Query, plan_variable_order, required_variables
from repro.rings import CountSpec


def query_of(*schemas, free=()):
    return Query("Q", tuple(schemas), spec=CountSpec(), free=tuple(free))


class TestRequiredVariables:
    def test_shared_and_free(self):
        q = query_of(
            RelationSchema("R", ("A", "B")),
            RelationSchema("S", ("A", "C")),
            free=("C",),
        )
        assert set(required_variables(q)) == {"A", "C"}


class TestPlanner:
    def test_figure1_query(self):
        q = query_of(
            RelationSchema("R", ("A", "B")), RelationSchema("S", ("A", "C", "D"))
        )
        order = plan_variable_order(q)
        order.validate(q)
        # only A is shared; B, C, D stay leaf-aggregated
        assert order.variables == ("A",)
        assert order.anchor_of("R") == "A"
        assert order.anchor_of("S") == "A"

    def test_retailer_query_matches_figure2d_shape(self):
        q = Query("Retailer", RETAILER_SCHEMAS, spec=CountSpec())
        order = plan_variable_order(q)
        order.validate(q)
        root = order.roots[0]
        assert root.variable == "locn"
        child_vars = {child.variable for child in root.children}
        assert child_vars == {"dateid", "zip"}
        assert order.anchor_of("Census") == "zip"
        assert order.anchor_of("Item") == "ksn"
        assert order.anchor_of("Weather") == "dateid"
        assert order.dependency_set(q, "ksn") == ("locn", "dateid")

    def test_extra_variables_become_nodes(self):
        q = query_of(
            RelationSchema("R", ("A", "B")), RelationSchema("S", ("A", "C"))
        )
        order = plan_variable_order(q, extra_variables=("B",))
        assert "B" in order.variables
        order.validate(q)

    def test_unknown_extra_variable(self):
        q = query_of(RelationSchema("R", ("A", "B")))
        with pytest.raises(QueryError):
            plan_variable_order(q, extra_variables=("Z",))

    def test_cyclic_query_still_plannable(self):
        q = query_of(
            RelationSchema("R", ("A", "B")),
            RelationSchema("S", ("B", "C")),
            RelationSchema("T", ("C", "A")),
        )
        order = plan_variable_order(q)
        order.validate(q)
        assert set(order.variables) == {"A", "B", "C"}

    def test_disconnected_query_forest(self):
        q = query_of(
            RelationSchema("R", ("A", "B")),
            RelationSchema("S", ("A", "C")),
            RelationSchema("T", ("X", "Y")),
            RelationSchema("U", ("X", "Z")),
        )
        order = plan_variable_order(q)
        order.validate(q)
        assert len(order.roots) == 2

    def test_single_relation_no_variables(self):
        q = query_of(RelationSchema("R", ("A", "B")))
        order = plan_variable_order(q)
        order.validate(q)
        assert order.variables == ()
        assert order.root_relations == ("R",)

    def test_free_variables_rise_to_top(self):
        q = query_of(
            RelationSchema("R", ("A", "B")),
            RelationSchema("S", ("B", "C")),
            free=("C",),
        )
        order = plan_variable_order(q)
        order.validate(q)
        assert order.roots[0].variable == "C"

    def test_deterministic(self):
        q = Query("Retailer", RETAILER_SCHEMAS, spec=CountSpec())
        first = plan_variable_order(q).render()
        second = plan_variable_order(q).render()
        assert first == second
