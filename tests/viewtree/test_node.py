"""View node descriptions (used by plans and the maintenance tab)."""

from repro.viewtree.node import View


def leaf(**kwargs):
    defaults = dict(name="V_R", key=("A",), relation="R")
    defaults.update(kwargs)
    return View(**defaults)


class TestDescribe:
    def test_leaf_plain(self):
        assert leaf().describe() == "V_R[A] = R"

    def test_leaf_with_lifts(self):
        text = leaf(lifted=("B", "C")).describe()
        assert text == "V_R[A] = R lifting (B, C)"

    def test_inner_marginalizing(self):
        child = leaf()
        view = View(
            name="V@A",
            key=(),
            variable="A",
            children=(child,),
            marginalized=("A",),
        )
        assert view.describe() == "V@A[] = Σ_A V_R"

    def test_inner_with_lifted_variable(self):
        child = leaf()
        view = View(
            name="V@A",
            key=(),
            variable="A",
            children=(child,),
            lifted=("A",),
            marginalized=("A",),
        )
        assert "g_A" in view.describe()

    def test_free_variable_keeps_key(self):
        child = leaf()
        view = View(
            name="V@A",
            key=("A",),
            variable="A",
            children=(child,),
            is_free=True,
        )
        assert view.describe() == "V@A[A] = V_R"

    def test_join_of_children(self):
        view = View(
            name="V@A",
            key=(),
            variable="A",
            children=(leaf(), leaf(name="V_S", relation="S")),
            marginalized=("A",),
        )
        assert "V_R ⋈ V_S" in view.describe()

    def test_is_leaf(self):
        assert leaf().is_leaf
        assert not View(name="V@A", key=(), variable="A", children=(leaf(),)).is_leaf
