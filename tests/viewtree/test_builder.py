"""View-tree construction (τ)."""

import pytest

from repro.data import RelationSchema
from repro.datasets import (
    RETAILER_SCHEMAS,
    retailer_variable_order,
    toy_count_query,
    toy_variable_order,
)
from repro.errors import QueryError
from repro.query import Query, VONode, VariableOrder
from repro.rings import CountSpec, CovarSpec, Feature, SumSpec
from repro.viewtree import build_view_tree

R = RelationSchema("R", ("A", "B"))
S = RelationSchema("S", ("A", "C", "D"))


class TestToyTree:
    def test_shape_matches_figure1(self):
        tree = build_view_tree(toy_count_query(), toy_variable_order())
        root = tree.root
        assert root.name == "V@A"
        assert root.key == ()
        assert root.variable == "A"
        assert {child.name for child in root.children} == {"V_R", "V_S"}
        assert tree.leaf_of["R"].key == ("A",)
        assert tree.leaf_of["S"].key == ("A",)

    def test_leaf_lifted_attributes(self):
        query = Query(
            "Q",
            (R, S),
            spec=CovarSpec(
                (
                    Feature.continuous("B"),
                    Feature.continuous("C"),
                    Feature.continuous("D"),
                )
            ),
        )
        tree = build_view_tree(query, toy_variable_order())
        assert tree.leaf_of["R"].lifted == ("B",)
        assert set(tree.leaf_of["S"].lifted) == {"C", "D"}

    def test_path_to_root(self):
        tree = build_view_tree(toy_count_query(), toy_variable_order())
        path = tree.path_to_root("R")
        assert [view.name for view in path] == ["V_R", "V@A"]
        with pytest.raises(QueryError):
            tree.path_to_root("T")

    def test_all_views_bottom_up(self):
        tree = build_view_tree(toy_count_query(), toy_variable_order())
        names = [view.name for view in tree.all_views()]
        assert names[-1] == "V@A"
        assert set(names) == {"V_R", "V_S", "V@A"}


class TestRetailerTree:
    def test_figure2d_keys(self):
        query = Query("Retailer", RETAILER_SCHEMAS, spec=CountSpec())
        tree = build_view_tree(query, retailer_variable_order())
        assert tree.views["V@locn"].key == ()
        assert tree.views["V@dateid"].key == ("locn",)
        assert tree.views["V@zip"].key == ("locn",)
        assert tree.views["V@ksn"].key == ("locn", "dateid")
        assert tree.leaf_of["Inventory"].key == ("locn", "dateid", "ksn")
        assert tree.leaf_of["Item"].key == ("ksn",)
        assert tree.leaf_of["Census"].key == ("zip",)

    def test_inventory_path(self):
        query = Query("Retailer", RETAILER_SCHEMAS, spec=CountSpec())
        tree = build_view_tree(query, retailer_variable_order())
        path = [view.name for view in tree.path_to_root("Inventory")]
        assert path == ["V_Inventory", "V@ksn", "V@dateid", "V@locn"]


class TestLiftedJoinVariable:
    def test_lift_applies_at_variable_node(self):
        # A is shared *and* lifted: the lift must appear at V@A, not leaves.
        query = Query("Q", (R, S), spec=SumSpec("A"))
        tree = build_view_tree(query, toy_variable_order())
        assert tree.root.lifted == ("A",)
        assert tree.leaf_of["R"].lifted == ()


class TestFreeVariables:
    def test_free_variable_stays_key(self):
        query = Query("Q", (R, S), free=("A",))
        order = toy_variable_order()
        tree = build_view_tree(query, order)
        assert tree.root.key == ("A",)
        assert tree.root.is_free
        assert tree.root.marginalized == ()

    def test_lifting_free_variable_rejected(self):
        query = Query("Q", (R, S), spec=SumSpec("A"), free=("A",))
        with pytest.raises(QueryError):
            build_view_tree(query, toy_variable_order())


class TestVirtualRoot:
    def test_disconnected_query_gets_wrapper(self):
        query = Query(
            "Q",
            (RelationSchema("R", ("A",)), RelationSchema("S", ("B",))),
            spec=CountSpec(),
        )
        tree = build_view_tree(query)
        assert tree.root.name == "V_Q"
        assert len(tree.root.children) == 2
        assert tree.root.key == ()

    def test_single_relation_query(self):
        query = Query("Q", (RelationSchema("R", ("A", "B")),), spec=CountSpec())
        tree = build_view_tree(query)
        # no variables: the leaf view is the root
        assert tree.root.is_leaf
        assert tree.root.key == ()


class TestDefaults:
    def test_order_defaults_to_planner(self):
        tree = build_view_tree(toy_count_query())
        assert tree.root.key == ()

    def test_invalid_order_rejected(self):
        order = VariableOrder([VONode("A", relations=("R",))])  # S missing
        with pytest.raises(QueryError):
            build_view_tree(toy_count_query(), order)

    def test_render_mentions_all_views(self):
        tree = build_view_tree(toy_count_query(), toy_variable_order())
        text = tree.render()
        assert "V@A" in text and "V_R" in text and "V_S" in text
