"""M3 and DOT rendering of view trees (Figure 2d)."""

from repro.data import RelationSchema
from repro.datasets import RETAILER_SCHEMAS, retailer_variable_order, toy_variable_order
from repro.query import Query
from repro.rings import CountSpec, CovarSpec, Feature, MISpec, SumSpec
from repro.viewtree import (
    build_view_tree,
    render_tree_dot,
    render_tree_m3,
    render_view_m3,
    ring_type_name,
)

R = RelationSchema("R", ("A", "B"))
S = RelationSchema("S", ("A", "C", "D"))


def covar_query():
    return Query(
        "Q",
        (R, S),
        spec=CovarSpec(
            (Feature.continuous("B"), Feature.continuous("C"), Feature.continuous("D"))
        ),
    )


class TestRingTypeNames:
    def test_count_is_long(self):
        tree = build_view_tree(Query("Q", (R, S), spec=CountSpec()))
        assert ring_type_name(tree.plan) == "long"

    def test_sum_is_double(self):
        tree = build_view_tree(Query("Q", (R, S), spec=SumSpec("B")))
        assert ring_type_name(tree.plan) == "double"

    def test_numeric_cofactor(self):
        tree = build_view_tree(covar_query())
        assert ring_type_name(tree.plan) == "RingCofactor<double, 3>"

    def test_relational_cofactor(self):
        spec = MISpec((Feature.categorical("B"), Feature.categorical("C")))
        tree = build_view_tree(Query("Q", (R, S), spec=spec))
        assert ring_type_name(tree.plan) == "RingCofactor<RingRelation, 2>"


class TestM3Rendering:
    def test_declare_map_per_view(self):
        tree = build_view_tree(covar_query(), toy_variable_order())
        text = render_tree_m3(tree)
        assert text.count("DECLARE MAP") == 3
        assert "AggSum" in text

    def test_leaf_view_lifts(self):
        tree = build_view_tree(covar_query(), toy_variable_order())
        block = render_view_m3(tree, tree.leaf_of["S"])
        assert "S[][A, C, D]<Local>" in block
        assert "[lift<1>: RingCofactor<double, 3>](C)" in block
        assert "[lift<2>: RingCofactor<double, 3>](D)" in block

    def test_inner_view_joins_children(self):
        tree = build_view_tree(covar_query(), toy_variable_order())
        block = render_view_m3(tree, tree.root)
        assert "V_R[][A]<Local> * V_S[][A]<Local>" in block

    def test_retailer_m3_mentions_figure2d_views(self):
        query = Query("Retailer", RETAILER_SCHEMAS, spec=CountSpec())
        tree = build_view_tree(query, retailer_variable_order())
        text = render_tree_m3(tree)
        assert "DECLARE MAP V_ksn(long)[][locn: key, dateid: key]" in text
        assert "V_Inventory" in text and "V_Census" in text


class TestDotRendering:
    def test_digraph_with_relations_and_views(self):
        tree = build_view_tree(covar_query(), toy_variable_order())
        dot = render_tree_dot(tree)
        assert dot.startswith("digraph viewtree {")
        assert 'rel_R [label="R(A, B)", shape=ellipse];' in dot
        assert "V_R -> V_A;" in dot
        assert dot.rstrip().endswith("}")
