"""Serving scenarios: one recipe shared by the server, bench and tests.

`repro serve` boots an engine over a dataset and streams seeded updates
into it; the load generator (and the CI smoke job) must be able to
rebuild *exactly* that engine and stream to verify served reads against
a post-hoc batch evaluation. :func:`build_serving_scenario` is that
shared recipe: dataset x payload -> (database, query, order, stream
factories, model labels), fully determined by ``(dataset, payload,
scale, seed)``. The server advertises those four values (plus the batch
size and insert ratio) under ``/stats``, which is all a verifier needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.data.database import Database
from repro.datasets import (
    FavoritaConfig,
    RetailerConfig,
    UpdateStream,
    favorita_query,
    favorita_regression_features,
    favorita_row_factories,
    favorita_variable_order,
    generate_favorita,
    generate_retailer,
    regression_features,
    retailer_query,
    retailer_row_factories,
    retailer_variable_order,
    toy_covar_continuous_query,
    toy_database,
    toy_mi_query,
    toy_query,
    toy_row_factories,
    toy_variable_order,
)
from repro.config import EngineConfig, create_engine
from repro.engine.base import MaintenanceEngine
from repro.errors import EngineError
from repro.ml.discretize import binning_for_attribute
from repro.query.query import Query
from repro.query.variable_order import VariableOrder
from repro.rings import CountSpec, CovarSpec, Feature, MISpec

__all__ = ["ServingScenario", "build_serving_scenario"]

DATASETS = ("toy", "retailer", "favorita")
PAYLOADS = ("count", "covar", "mi")


@dataclass
class ServingScenario:
    """Everything needed to serve — or to re-derive what was served."""

    dataset: str
    payload: str
    scale: int
    seed: int
    database: Database
    query: Query
    order: VariableOrder
    factories: Dict[str, Callable]
    targets: Tuple[str, ...]
    #: Label attribute for ``/predict``/``/model`` (COVAR) or ``/topk`` (MI).
    regression_label: Optional[str] = None
    mi_label: Optional[str] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def stream(
        self,
        batch_size: int = 500,
        insert_ratio: float = 0.7,
        seed: Optional[int] = None,
    ) -> UpdateStream:
        """A fresh seeded update stream (same arguments -> same events)."""
        return UpdateStream(
            self.database,
            self.factories,
            targets=self.targets,
            batch_size=batch_size,
            insert_ratio=insert_ratio,
            seed=self.seed if seed is None else seed,
        )

    def engine(
        self,
        shards: int = 1,
        backend: str = "auto",
        config: Optional[EngineConfig] = None,
    ) -> MaintenanceEngine:
        """An initialized engine maintaining the scenario's query.

        ``config`` wins when given; the ``shards``/``backend`` shorthand
        builds an equivalent :class:`EngineConfig` (no deprecation — the
        scenario is the convenience layer).
        """
        if config is None:
            config = EngineConfig(shards=shards, backend=backend)
        built = create_engine(self.query, config=config, order=self.order)
        built.initialize(self.database)
        return built

    def provenance(self, batch_size: int, insert_ratio: float) -> Dict[str, Any]:
        """The ``/stats`` metadata a verifier needs to replay the stream."""
        return {
            "dataset": self.dataset,
            "payload": self.payload,
            "scale": self.scale,
            "seed": self.seed,
            "batch_size": batch_size,
            "insert_ratio": insert_ratio,
        }


def _toy_scenario(payload: str, scale: int, seed: int) -> ServingScenario:
    database = toy_database()
    if payload == "covar":
        query = toy_covar_continuous_query()
        regression_label, mi_label = "D", None
    elif payload == "mi":
        query = toy_mi_query()
        regression_label, mi_label = None, "B"
    else:
        query = toy_query(CountSpec(), name="Q_count")
        regression_label = mi_label = None
    return ServingScenario(
        dataset="toy",
        payload=payload,
        scale=scale,
        seed=seed,
        database=database,
        query=query,
        order=toy_variable_order(),
        factories=toy_row_factories(),
        targets=("R", "S"),
        regression_label=regression_label,
        mi_label=mi_label,
    )


def _retailer_scenario(payload: str, scale: int, seed: int) -> ServingScenario:
    config = RetailerConfig(
        locations=scale * 8,
        dates=scale * 15,
        items=scale * 60,
        inventory_rows=scale * 1200,
        seed=seed,
    )
    database = generate_retailer(config)
    regression_label = mi_label = None
    if payload == "covar":
        features, regression_label = regression_features()
        query = retailer_query(CovarSpec(features))
    elif payload == "mi":
        # The CLI's Model Selection feature set (binned continuous attrs).
        item = database.relation("Item")
        inventory = database.relation("Inventory")
        features = (
            Feature.categorical("ksn"),
            Feature.categorical("subcategory"),
            Feature.categorical("category"),
            Feature.categorical("categoryCluster"),
            Feature("prize", "continuous", binning_for_attribute(item, "prize", 8)),
            Feature(
                "inventoryunits",
                "continuous",
                binning_for_attribute(inventory, "inventoryunits", 8),
            ),
            Feature.categorical("rain"),
        )
        mi_label = "inventoryunits"
        query = retailer_query(MISpec(features))
    else:
        query = retailer_query(CountSpec())
    return ServingScenario(
        dataset="retailer",
        payload=payload,
        scale=scale,
        seed=seed,
        database=database,
        query=query,
        order=retailer_variable_order(),
        factories=retailer_row_factories(config, database),
        targets=("Inventory",),
        regression_label=regression_label,
        mi_label=mi_label,
    )


def _favorita_scenario(payload: str, scale: int, seed: int) -> ServingScenario:
    config = FavoritaConfig(
        stores=scale * 8,
        dates=scale * 20,
        items=scale * 50,
        sales_rows=scale * 1000,
        seed=seed,
    )
    database = generate_favorita(config)
    regression_label = mi_label = None
    if payload == "covar":
        features, regression_label = favorita_regression_features()
        query = favorita_query(CovarSpec(features))
    elif payload == "mi":
        sales = database.relation("Sales")
        oil = database.relation("Oil")
        features = (
            Feature.categorical("onpromotion"),
            Feature.categorical("family"),
            Feature.categorical("holidaytype"),
            Feature("oilprize", "continuous", binning_for_attribute(oil, "oilprize", 6)),
            Feature(
                "unitsales", "continuous", binning_for_attribute(sales, "unitsales", 8)
            ),
        )
        mi_label = "unitsales"
        query = favorita_query(MISpec(features))
    else:
        query = favorita_query(CountSpec())
    return ServingScenario(
        dataset="favorita",
        payload=payload,
        scale=scale,
        seed=seed,
        database=database,
        query=query,
        order=favorita_variable_order(),
        factories=favorita_row_factories(config, database),
        targets=("Sales",),
        regression_label=regression_label,
        mi_label=mi_label,
    )


def build_serving_scenario(
    dataset: str, payload: str, scale: int = 1, seed: int = 1
) -> ServingScenario:
    """Deterministic serving recipe for ``(dataset, payload, scale, seed)``."""
    if dataset not in DATASETS:
        raise EngineError(f"unknown serving dataset {dataset!r} (one of {DATASETS})")
    if payload not in PAYLOADS:
        raise EngineError(f"unknown serving payload {payload!r} (one of {PAYLOADS})")
    if dataset == "toy":
        return _toy_scenario(payload, scale, seed)
    if dataset == "retailer":
        return _retailer_scenario(payload, scale, seed)
    return _favorita_scenario(payload, scale, seed)
