"""Serving tier: epoch-snapshot reads under concurrent ingestion.

Everything below :mod:`repro.engine` optimizes the *write* path — this
package adds the read path that turns the engine into a system: engines
publish immutable root-view versions at batch boundaries
(:mod:`repro.serving.snapshot`), and an asyncio HTTP front end
(:mod:`repro.serving.server`) serves model outputs — COVAR matrices,
regression predictions, top-k feature rankings — to many concurrent
readers with bounded staleness while a single writer keeps ingesting.

The server and scenario modules import the engine layer, and the engine
layer imports :mod:`repro.serving.snapshot` (every engine owns a
snapshot store) — so those two are loaded lazily on first attribute
access to keep the package import acyclic.
"""

from importlib import import_module

from repro.serving.snapshot import EngineSnapshot, SnapshotStore

__all__ = [
    "EngineSnapshot",
    "SnapshotStore",
    "ServingApp",
    "SnapshotServer",
    "ServerThread",
    "IngestThread",
    "ServingScenario",
    "build_serving_scenario",
]

_LAZY = {
    "ServingApp": "repro.serving.server",
    "SnapshotServer": "repro.serving.server",
    "ServerThread": "repro.serving.server",
    "IngestThread": "repro.serving.server",
    "ServingScenario": "repro.serving.scenario",
    "build_serving_scenario": "repro.serving.scenario",
}


def __getattr__(name):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(target), name)
    globals()[name] = value  # cache: subsequent lookups skip __getattr__
    return value
