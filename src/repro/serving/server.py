"""Asyncio HTTP front end over engine snapshots (many readers, one writer).

The demo paper's web UI reads models *while* updates stream in; this
module is that read path as a service. One writer thread ingests updates
and publishes epochs (:meth:`MaintenanceEngine.publish`); an asyncio
event loop serves any number of concurrent readers from
:meth:`MaintenanceEngine.latest_snapshot` — a lock-free pointer read —
so read latency is independent of ingest activity and readers never
observe a torn state.

Layers, separable on purpose:

- :class:`ServingApp` — transport-free request handling: maps
  ``(path, params)`` to ``(status, JSON body)`` against the engine's
  latest snapshot, with per-epoch caches for the derived read models
  (COVAR matrix, ridge fit, MI ranking). Tests can drive it directly.
- :class:`SnapshotServer` — a minimal HTTP/1.1 server (stdlib asyncio,
  keep-alive) around a :class:`ServingApp`.
- :class:`ServerThread` / :class:`IngestThread` — run the event loop and
  the writer in daemon threads, for ``repro serve``, the load generator
  and the concurrency tests.

Endpoints (all ``GET``, all JSON):

- ``/covar`` — the expanded COVAR matrix (COVAR payloads);
- ``/predict?attr=value&...`` — ridge prediction for one row;
- ``/model`` — the fitted ridge model's coefficients and fit stats;
- ``/topk?k=N`` — top-k features by mutual information (MI payloads);
- ``/result`` — the raw root view entries (any payload);
- ``/healthz`` — liveness + staleness (epoch, event offset, age);
- ``/stats`` — read counters, engine counters, stream provenance.

Data endpoints return 503 before the first publish, 409 when the
engine's payload ring does not carry the requested model, 400 on bad
arguments and 404 on unknown paths. Every data response carries the
serving ``epoch`` and ``event_offset`` so a reader can verify it against
a batch evaluation at exactly that stream position.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.engine.base import MaintenanceEngine
from repro.errors import EngineError, FIVMError
from repro.ml.covar import CovarMatrix, covar_from_payload
from repro.ml.mi import mutual_information_matrix
from repro.ml.model_selection import FeatureRanking, rank_features
from repro.ml.regression import RidgeModel, RidgeRegression
from repro.rings.specs import CovarSpec, MISpec
from repro.serving.snapshot import EngineSnapshot

__all__ = ["ServingApp", "SnapshotServer", "ServerThread", "IngestThread"]


def _coerce(text: str) -> Any:
    """Query-string value -> int, float or string (best effort)."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _json_scalar(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


class ServingApp:
    """Transport-free request handler over one engine's snapshots.

    The app never touches live engine state: every read goes through
    :meth:`MaintenanceEngine.latest_snapshot`, so it is safe to call
    from any thread while a single writer ingests and publishes.
    Derived read models are cached per epoch — one COVAR expansion /
    ridge fit / MI ranking per published version, shared by all readers
    of that epoch.

    Parameters
    ----------
    engine:
        The maintained engine; the writer publishes into it.
    regression_label:
        Label attribute for ``/predict`` and ``/model`` (COVAR payloads).
    mi_label:
        Label attribute for ``/topk`` rankings (MI payloads).
    position_source:
        Zero-argument callable returning the live stream position
        (consumed events); staleness in ``/healthz`` is computed against
        it. ``None`` leaves staleness unreported.
    metadata:
        Provenance dict echoed under ``/stats`` — ``repro serve`` puts
        the dataset/seed/batch-size recipe here so an external reader
        can rebuild the exact stream and verify served results.
    degraded_source:
        Zero-argument callable returning a human-readable reason when
        serving is *degraded* — the writer died or the engine is mid
        recovery — and ``None`` when healthy. Degraded serving stays up:
        data endpoints keep answering from the last published snapshot
        and ``/healthz``/``/stats`` report ``degraded: true`` with the
        reason and staleness instead of failing, so load balancers see a
        live-but-stale replica, not an outage.
    """

    def __init__(
        self,
        engine: MaintenanceEngine,
        regression_label: Optional[str] = None,
        mi_label: Optional[str] = None,
        position_source: Optional[Callable[[], int]] = None,
        metadata: Optional[Mapping[str, Any]] = None,
        degraded_source: Optional[Callable[[], Optional[str]]] = None,
    ):
        self.engine = engine
        self.regression_label = regression_label
        self.mi_label = mi_label
        self.position_source = position_source
        self.degraded_source = degraded_source
        self.metadata = dict(metadata or {})
        spec = engine.query.spec
        self._is_covar = isinstance(spec, CovarSpec)
        self._is_mi = isinstance(spec, MISpec)
        self._plan = getattr(engine, "plan", None)
        if self._plan is None:
            self._plan = engine.tree.plan
        # Per-epoch caches: (epoch, value). Single-writer-per-epoch is
        # not required — recomputation is idempotent — so a benign race
        # between reader threads at worst derives the model twice.
        self._covar_cache: Tuple[int, Optional[CovarMatrix]] = (0, None)
        self._model_cache: Tuple[int, Optional[RidgeModel]] = (0, None)
        self._ranking_cache: Tuple[int, Optional[FeatureRanking]] = (0, None)
        self.reads = 0
        self.errors = 0
        self.reads_by_endpoint: Dict[str, int] = {}
        self._started_at = time.time()

    # ------------------------------------------------------------------
    # Derived read models (cached per epoch)
    # ------------------------------------------------------------------

    def _root_payload(self, snapshot: EngineSnapshot):
        result = snapshot.result
        if result.schema != ():
            raise FIVMError(
                f"root view keyed by {result.schema!r}; model endpoints "
                "need a fully aggregated query"
            )
        return result.payload(())

    def _covar(self, snapshot: EngineSnapshot) -> CovarMatrix:
        epoch, cached = self._covar_cache
        if cached is not None and epoch == snapshot.epoch:
            return cached
        covar = covar_from_payload(self._root_payload(snapshot), self._plan)
        self._covar_cache = (snapshot.epoch, covar)
        return covar

    def _model(self, snapshot: EngineSnapshot) -> RidgeModel:
        epoch, cached = self._model_cache
        if cached is not None and epoch == snapshot.epoch:
            return cached
        covar = self._covar(snapshot)
        features = tuple(
            feature.name
            for feature in self._plan.features
            if feature.name != self.regression_label
        )
        solver = RidgeRegression(features, self.regression_label)
        # Closed-form solve, not warm-started gradient descent: under
        # epoch churn every read can land on a fresh epoch, and a
        # multi-millisecond iterative fit per epoch would dominate read
        # latency. The normal-equations solve is exact and costs
        # microseconds at serving dimensionalities.
        model = solver.fit_closed_form(covar)
        self._model_cache = (snapshot.epoch, model)
        return model

    def _ranking(self, snapshot: EngineSnapshot) -> FeatureRanking:
        epoch, cached = self._ranking_cache
        if cached is not None and epoch == snapshot.epoch:
            return cached
        mi = mutual_information_matrix(self._root_payload(snapshot), self._plan)
        ranking = rank_features(mi, self.mi_label)
        self._ranking_cache = (snapshot.epoch, ranking)
        return ranking

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    @staticmethod
    def _envelope(snapshot: EngineSnapshot) -> Dict[str, Any]:
        body = {
            "epoch": snapshot.epoch,
            "event_offset": snapshot.event_offset,
            "published_at": snapshot.published_at,
        }
        if snapshot.window is not None:
            # Windowed ingest: the live event-time interval this epoch
            # answers for.
            body["window"] = list(snapshot.window)
        return body

    def _position(self) -> Optional[int]:
        if self.position_source is None:
            return None
        return int(self.position_source())

    def _degraded_reason(self) -> Optional[str]:
        if self.degraded_source is None:
            return None
        try:
            reason = self.degraded_source()
        except Exception as exc:  # pragma: no cover - defensive
            return f"degraded-source probe failed: {exc!r}"
        return None if reason is None else str(reason)

    def handle(
        self, path: str, params: Optional[Mapping[str, str]] = None
    ) -> Tuple[int, Dict[str, Any]]:
        """Serve one request; returns ``(http_status, body)``."""
        params = dict(params or {})
        self.reads += 1
        self.reads_by_endpoint[path] = self.reads_by_endpoint.get(path, 0) + 1
        try:
            status, body = self._dispatch(path, params)
        except (EngineError, FIVMError) as exc:
            status, body = 500, {"error": str(exc)}
        if status >= 400:
            self.errors += 1
        return status, body

    def _dispatch(
        self, path: str, params: Dict[str, str]
    ) -> Tuple[int, Dict[str, Any]]:
        if path == "/healthz":
            return self._healthz()
        if path == "/stats":
            return self._stats()
        if path not in ("/covar", "/predict", "/model", "/topk", "/result"):
            return 404, {"error": f"unknown endpoint {path!r}"}
        snapshot = self.engine.latest_snapshot()
        if snapshot is None:
            return 503, {"error": "no snapshot published yet", "epoch": 0}
        if path == "/result":
            return self._result(snapshot)
        if path == "/topk":
            if not self._is_mi or self.mi_label is None:
                return 409, {
                    "error": "payload carries no MI model (serve --payload mi)"
                }
            return self._topk(snapshot, params)
        if not self._is_covar:
            return 409, {
                "error": "payload carries no COVAR matrix (serve --payload covar)"
            }
        if path == "/covar":
            return self._covar_endpoint(snapshot)
        if self.regression_label is None:
            return 409, {"error": "no regression label configured"}
        if path == "/model":
            return self._model_endpoint(snapshot)
        return self._predict(snapshot, params)

    def _healthz(self) -> Tuple[int, Dict[str, Any]]:
        snapshot = self.engine.latest_snapshot()
        reason = self._degraded_reason()
        body: Dict[str, Any] = {
            # Degraded is still 200: the replica answers reads from its
            # last snapshot, which is exactly what it advertises here.
            "status": (
                "degraded" if reason is not None
                else "ok" if snapshot is not None else "warming"
            ),
            "degraded": reason is not None,
            "strategy": self.engine.strategy,
            "query": self.engine.query.name,
        }
        if reason is not None:
            body["degraded_reason"] = reason
        position = self._position()
        if position is not None:
            body["position"] = position
        if snapshot is not None:
            body.update(self._envelope(snapshot))
            body["age_s"] = round(snapshot.age(), 6)
            if position is not None:
                body["staleness"] = snapshot.staleness(position)
        return 200, body

    def _stats(self) -> Tuple[int, Dict[str, Any]]:
        snapshot = self.engine.latest_snapshot()
        reason = self._degraded_reason()
        body: Dict[str, Any] = {
            "serving": {
                "reads": self.reads,
                "errors": self.errors,
                "by_endpoint": dict(self.reads_by_endpoint),
                "uptime_s": round(time.time() - self._started_at, 3),
            },
            "degraded": reason is not None,
            "metadata": dict(self.metadata),
        }
        if reason is not None:
            body["degraded_reason"] = reason
        try:
            body["health"] = self.engine.health()
        except Exception:  # pragma: no cover - defensive
            pass
        position = self._position()
        if position is not None:
            body["position"] = position
        if snapshot is not None:
            body.update(self._envelope(snapshot))
            body["engine"] = dict(snapshot.stats)
        return 200, body

    def _result(self, snapshot: EngineSnapshot) -> Tuple[int, Dict[str, Any]]:
        entries = [
            {"key": [_json_scalar(part) for part in key], "payload": _json_scalar(payload)}
            for key, payload in sorted(
                snapshot.result.data.items(), key=lambda item: repr(item[0])
            )
        ]
        body = self._envelope(snapshot)
        body["schema"] = list(snapshot.result.schema)
        body["entries"] = entries
        return 200, body

    def _covar_endpoint(self, snapshot: EngineSnapshot) -> Tuple[int, Dict[str, Any]]:
        covar = self._covar(snapshot)
        body = self._envelope(snapshot)
        body.update(
            {
                "count": covar.count,
                "columns": [column.label for column in covar.columns],
                "sums": covar.sums.tolist(),
                "moments": covar.moments.tolist(),
            }
        )
        return 200, body

    def _model_endpoint(self, snapshot: EngineSnapshot) -> Tuple[int, Dict[str, Any]]:
        model = self._model(snapshot)
        body = self._envelope(snapshot)
        body.update(
            {
                "label": model.label,
                "intercept": model.intercept,
                "coefficients": model.coefficients(),
                "iterations": model.iterations,
                "converged": model.converged,
                "training_rmse": model.training_rmse,
            }
        )
        return 200, body

    def _predict(
        self, snapshot: EngineSnapshot, params: Dict[str, str]
    ) -> Tuple[int, Dict[str, Any]]:
        model = self._model(snapshot)
        row = {name: _coerce(value) for name, value in params.items()}
        needed = {column.attribute for column in model.feature_columns}
        missing = sorted(needed - set(row))
        if missing:
            return 400, {
                "error": f"missing feature parameters {missing}",
                "features": sorted(needed),
            }
        body = self._envelope(snapshot)
        body["prediction"] = model.predict(row)
        body["label"] = model.label
        body["row"] = {name: _json_scalar(value) for name, value in row.items()}
        return 200, body

    def _topk(
        self, snapshot: EngineSnapshot, params: Dict[str, str]
    ) -> Tuple[int, Dict[str, Any]]:
        ranking = self._ranking(snapshot)
        k = len(ranking.ranked)
        if "k" in params:
            try:
                k = int(params["k"])
            except ValueError:
                return 400, {"error": f"k must be an integer, got {params['k']!r}"}
            if k < 1:
                return 400, {"error": "k must be at least 1"}
        body = self._envelope(snapshot)
        body["label"] = ranking.label
        body["k"] = min(k, len(ranking.ranked))
        body["ranking"] = [
            [attribute, score] for attribute, score in ranking.ranked[:k]
        ]
        return 200, body


# ----------------------------------------------------------------------
# HTTP transport
# ----------------------------------------------------------------------


class SnapshotServer:
    """Minimal asyncio HTTP/1.1 server around a :class:`ServingApp`.

    GET-only, JSON-only, keep-alive by default (HTTP/1.1 semantics) —
    enough for the load generator's persistent reader connections
    without pulling in any dependency beyond the standard library.
    """

    def __init__(self, app: ServingApp, host: str = "127.0.0.1", port: int = 0):
        self.app = app
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                try:
                    method, target, version = (
                        request_line.decode("latin-1").strip().split(" ", 2)
                    )
                except ValueError:
                    await self._respond(
                        writer, 400, {"error": "malformed request line"}, close=True
                    )
                    break
                close = version.upper() == "HTTP/1.0"
                while True:  # drain headers; honor Connection: close
                    header = await reader.readline()
                    if header in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = header.decode("latin-1").partition(":")
                    if name.strip().lower() == "connection":
                        token = value.strip().lower()
                        close = token == "close" or (
                            version.upper() == "HTTP/1.0" and token != "keep-alive"
                        )
                if method.upper() != "GET":
                    await self._respond(
                        writer,
                        405,
                        {"error": f"method {method} not allowed (GET only)"},
                        close=close,
                    )
                    if close:
                        break
                    continue
                split = urlsplit(target)
                params = dict(parse_qsl(split.query))
                status, body = self.app.handle(split.path, params)
                await self._respond(writer, status, body, close=close)
                if close:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop teardown cancels idle keep-alive handlers; finish the
            # task normally so shutdown stays quiet.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    _REASONS = {
        200: "OK",
        400: "Bad Request",
        404: "Not Found",
        405: "Method Not Allowed",
        409: "Conflict",
        500: "Internal Server Error",
        503: "Service Unavailable",
    }

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: Dict[str, Any],
        close: bool,
    ) -> None:
        payload = json.dumps(body).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {self._REASONS.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + payload)
        await writer.drain()


class ServerThread:
    """A :class:`SnapshotServer` on its own event loop in a daemon thread.

    ``start()`` blocks until the listening socket is bound, so ``port``
    (0 = ephemeral) is always the real port after it returns. ``stop()``
    shuts the loop down and joins the thread.
    """

    def __init__(self, app: ServingApp, host: str = "127.0.0.1", port: int = 0):
        self.app = app
        self.host = host
        self.port = port
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self.error: Optional[BaseException] = None

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise EngineError("serving thread failed to bind within timeout")
        if self.error is not None:
            raise EngineError(f"serving thread failed to start: {self.error}")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced via .error
            self.error = exc
            self._ready.set()

    async def _main(self) -> None:
        server = SnapshotServer(self.app, host=self.host, port=self.port)
        await server.start()
        self.port = server.port
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._ready.set()
        await self._stop.wait()
        await server.stop()

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"


# ----------------------------------------------------------------------
# The writer
# ----------------------------------------------------------------------


class IngestThread(threading.Thread):
    """The single writer: streams events into the engine, publishing
    every flushed batch.

    Exposes a monotonically increasing :attr:`consumed` counter for
    staleness reporting (readers may poll it from other threads) and the
    ingest wall-clock so the load generator can report writer throughput
    under concurrent readers.

    ``pace`` sleeps that many seconds after every ``batch_size`` consumed
    events. The default (0.0) still calls ``time.sleep(0)`` at batch
    boundaries: maintenance holds the GIL in long C-level stretches, and
    on small machines an unpaced writer starves the reader event loop —
    one explicit yield per batch keeps read tail latency bounded without
    measurably slowing ingest. Pass ``pace=None`` to never yield.

    ``checkpoint_every``/``on_checkpoint`` pass straight through to
    :meth:`~repro.engine.base.MaintenanceEngine.apply_stream` — the
    serving writer can persist periodic snapshots exactly as the batch
    CLI does. :meth:`stop` requests a graceful drain: the stream cuts
    off at the next event boundary (already-consumed events stay
    applied), so signal handlers can stop ingest, flush a final
    checkpoint and close the engine deterministically.
    """

    def __init__(
        self,
        engine: MaintenanceEngine,
        events: Iterable[Tuple[str, Tuple, int]],
        batch_size: int = 500,
        pace: Optional[float] = 0.0,
        name: str = "repro-ingest",
        checkpoint_every: int = 0,
        on_checkpoint: Optional[Callable[[MaintenanceEngine, int], None]] = None,
    ):
        super().__init__(name=name, daemon=True)
        self.engine = engine
        self.events = events
        self.batch_size = batch_size
        self.pace = pace
        self.checkpoint_every = checkpoint_every
        self.on_checkpoint = on_checkpoint
        self.consumed = 0
        self.seconds = 0.0
        self.error: Optional[BaseException] = None
        self._stop_requested = threading.Event()

    def stop(self) -> None:
        """Ask the writer to drain at the next event boundary."""
        self._stop_requested.set()

    @property
    def stopping(self) -> bool:
        return self._stop_requested.is_set()

    def _counted(self) -> Iterable[Tuple[str, Tuple, int]]:
        for event in self.events:
            if self._stop_requested.is_set():
                return
            yield event
            # After the yield: apply_stream has batched (and possibly
            # flushed + published) the event by the time we count it, so
            # `consumed` never runs ahead of the published offset and
            # reported staleness is never negative.
            self.consumed += 1
            if self.pace is not None and self.consumed % self.batch_size == 0:
                time.sleep(self.pace)

    def run(self) -> None:
        started = time.perf_counter()
        try:
            self.engine.apply_stream(
                self._counted(),
                batch_size=self.batch_size,
                checkpoint_every=self.checkpoint_every,
                on_checkpoint=self.on_checkpoint,
                publish_batches=True,
                # _counted() hides the stream object, so forward its
                # window-bounds hook (if any) for snapshot provenance.
                window_bounds=getattr(self.events, "current_bounds", None),
            )
        except BaseException as exc:  # noqa: BLE001 - surfaced via .error
            self.error = exc
        finally:
            self.seconds = time.perf_counter() - started

    @property
    def throughput(self) -> float:
        """Consumed events per second of ingest wall-clock."""
        return self.consumed / self.seconds if self.seconds > 0 else 0.0
