"""Epoch-based snapshots: the many-readers/one-writer read path.

F-IVM's materialized root view is the entire queryable state, so serving
reads under continuous ingestion reduces to *versioning* that one view:
at every batch boundary the writer publishes an immutable
:class:`EngineSnapshot` — the root view's entries behind a fresh dict,
payload objects shared with the live view (zero-copy: maintenance never
mutates a stored payload in place, it replaces entries through the ring's
pure ``add``) — and swaps it into a :class:`SnapshotStore` with a single
attribute assignment, which is atomic under the interpreter lock.
Readers grab :attr:`SnapshotStore.latest` with no locks, no copies and no
coordination with the writer; they observe a fully published epoch or the
previous one, never a torn intermediate state.

Staleness is bounded and *observable*: every snapshot carries its epoch
id, the event offset it covers (how many stream events were applied when
it was published) and its publish timestamp, so a reader — or an SLO
monitor — can compute exactly how far behind the live stream its view of
the data is. With publish-per-batch ingestion the lag never exceeds one
batch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.data.relation import Relation
from repro.errors import EngineError

__all__ = ["EngineSnapshot", "SnapshotStore"]


@dataclass(frozen=True)
class EngineSnapshot:
    """One immutable published version of a maintained query result.

    ``result`` owns its key dict but shares payload objects with the
    engine's live view — safe because maintenance replaces payloads
    instead of mutating them. Treat it (and everything reachable from it)
    as read-only.
    """

    #: Monotonically increasing publication id (1 = first publish).
    epoch: int
    #: Stream events applied when this snapshot was published. The writer
    #: passes the exact consumed-event count when it has one (e.g.
    #: ``apply_stream``); the fallback is the engine's ``updates_applied``
    #: counter, which coalescing may undercount (cancelled pairs vanish).
    event_offset: int
    #: ``time.time()`` at publication.
    published_at: float
    #: Provenance: the query name and engine strategy that produced this.
    query: str
    strategy: str
    #: The published root view (immutable; payloads shared, keys owned).
    result: Relation
    #: Maintenance-counter snapshot at publication time.
    stats: Mapping[str, int] = field(default_factory=dict)
    #: Live event-time window ``(start, end)`` the snapshot covers, when
    #: the producing stream was windowed (``None`` for full history).
    window: Optional[Tuple[int, int]] = None

    def age(self, now: Optional[float] = None) -> float:
        """Seconds since publication."""
        return (time.time() if now is None else now) - self.published_at

    def staleness(self, position: int) -> int:
        """Events the snapshot is behind a live stream at ``position``."""
        return max(0, int(position) - self.event_offset)

    def describe(self) -> str:
        base = (
            f"epoch {self.epoch} of {self.query!r} ({self.strategy}): "
            f"{len(self.result)} result entries at event offset "
            f"{self.event_offset}"
        )
        if self.window is not None:
            base += f", window [{self.window[0]}, {self.window[1]})"
        return base


class SnapshotStore:
    """Atomic holder of the latest published snapshot (one writer).

    The store assumes a single publishing writer; any number of readers
    may call :attr:`latest` concurrently. The swap is one attribute
    assignment, so a reader sees either the previous snapshot or the new
    one — never a partially constructed object.
    """

    __slots__ = ("_latest",)

    def __init__(self) -> None:
        self._latest: Optional[EngineSnapshot] = None

    @property
    def latest(self) -> Optional[EngineSnapshot]:
        """The most recently published snapshot (``None`` before the first)."""
        return self._latest

    @property
    def epoch(self) -> int:
        """Epoch of the latest snapshot (0 before the first publish)."""
        latest = self._latest
        return 0 if latest is None else latest.epoch

    def publish(
        self,
        result: Relation,
        *,
        query: str,
        strategy: str,
        event_offset: int,
        stats: Optional[Mapping[str, int]] = None,
        epoch: Optional[int] = None,
        published_at: Optional[float] = None,
        window: Optional[Tuple[int, int]] = None,
    ) -> EngineSnapshot:
        """Build the next snapshot and swap it in atomically.

        ``epoch``/``published_at`` default to "next epoch, now"; checkpoint
        restore passes the recorded values so a republished snapshot keeps
        the provenance of the one that was exported. ``window`` is the
        live event-time bounds when the producing stream is windowed.
        """
        if event_offset < 0:
            raise EngineError("snapshot event_offset must be >= 0")
        if window is not None:
            window = (int(window[0]), int(window[1]))
        snapshot = EngineSnapshot(
            epoch=self.epoch + 1 if epoch is None else int(epoch),
            event_offset=int(event_offset),
            published_at=time.time() if published_at is None else float(published_at),
            query=query,
            strategy=strategy,
            result=result,
            stats=dict(stats or {}),
            window=window,
        )
        self._latest = snapshot  # the atomic pointer swap
        return snapshot

    def export_metadata(self) -> Optional[Dict[str, Any]]:
        """Serving header carried through engine checkpoints (or ``None``)."""
        latest = self._latest
        if latest is None:
            return None
        meta: Dict[str, Any] = {
            "epoch": latest.epoch,
            "event_offset": latest.event_offset,
            "published_at": latest.published_at,
        }
        if latest.window is not None:
            meta["window"] = list(latest.window)
        return meta
