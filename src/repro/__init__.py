"""F-IVM: Learning over Fast-Evolving Relational Data (SIGMOD 2020).

A reproduction of the F-IVM system: incremental maintenance of compound
aggregate batches — counts, COVAR matrices, mutual-information counts —
over natural-join queries under inserts and deletes, with the
data-intensive computation captured by application-specific rings.

Quickstart::

    from repro import (
        Database, Relation, Query, RelationSchema,
        CovarSpec, Feature, FIVMEngine, inserts,
    )

    r = Relation.from_tuples(("A", "B"), [("a1", 1), ("a2", 2)], name="R")
    s = Relation.from_tuples(("A", "C", "D"),
                             [("a1", 1, 1), ("a1", 2, 3), ("a2", 2, 2)],
                             name="S")
    query = Query(
        "Q",
        (RelationSchema("R", ("A", "B")), RelationSchema("S", ("A", "C", "D"))),
        spec=CovarSpec((Feature.continuous("B"),
                        Feature.continuous("C"),
                        Feature.continuous("D"))),
    )
    engine = FIVMEngine(query)
    engine.initialize(Database([r, s]))
    engine.apply("R", inserts(("A", "B"), [("a1", 3)]))
    payload = engine.result().payload(())   # (c, s, Q) — the COVAR matrix

See ``examples/`` for the demo applications (model selection, ridge
regression, Chow-Liu trees) and ``DESIGN.md`` for the system inventory.
"""

from repro.apps import (
    BulkReport,
    ChowLiuApp,
    MaintenanceSession,
    MaintenanceStrategyApp,
    ModelSelectionApp,
    RegressionApp,
)
from repro.config import EngineConfig, create_engine
from repro.checkpoint import (
    CheckpointInfo,
    checkpoint_sink,
    read_checkpoint,
    read_checkpoint_info,
    restore_checkpoint,
    write_checkpoint,
)
from repro.data import (
    Database,
    DatabaseSchema,
    Relation,
    RelationSchema,
    delta_of,
    deletes,
    inserts,
    split_delta,
)
from repro.engine import (
    FIVMEngine,
    FirstOrderEngine,
    MaintenanceEngine,
    NaiveEngine,
    PerAggregateEngine,
    PipeTransport,
    ShardTransport,
    ShardedEngine,
    SharedMemoryTransport,
    available_backends,
    available_transports,
    evaluate_tree,
)
from repro.errors import (
    CheckpointError,
    DataError,
    EngineError,
    FIVMError,
    QueryError,
    RingError,
    SchemaError,
)
from repro.ml import (
    ChowLiuTree,
    Column,
    CovarMatrix,
    FeatureRanking,
    MIMatrix,
    RidgeModel,
    RidgeRegression,
    chow_liu_tree,
    covar_from_payload,
    mutual_information_matrix,
    rank_features,
    select_features,
)
from repro.query import Query, VariableOrder, VONode, plan_variable_order
from repro.serving import (
    EngineSnapshot,
    IngestThread,
    ServerThread,
    ServingApp,
    ServingScenario,
    SnapshotServer,
    SnapshotStore,
    build_serving_scenario,
)
from repro.rings import (
    Binning,
    BoolRing,
    CofactorLayout,
    CountSpec,
    CovarSpec,
    Feature,
    FloatRing,
    GeneralCofactorRing,
    IntegerRing,
    MinPlusRing,
    MISpec,
    NumericCofactorRing,
    PayloadPlan,
    PayloadSpec,
    RelationRing,
    RelationValue,
    Ring,
    SumProductSpec,
    SumSpec,
    Z,
)
from repro.viewtree import ViewTree, build_view_tree, render_tree_dot, render_tree_m3

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "FIVMError",
    "RingError",
    "SchemaError",
    "DataError",
    "QueryError",
    "EngineError",
    "CheckpointError",
    # checkpointing
    "CheckpointInfo",
    "write_checkpoint",
    "read_checkpoint",
    "read_checkpoint_info",
    "restore_checkpoint",
    "checkpoint_sink",
    # data
    "Relation",
    "Database",
    "RelationSchema",
    "DatabaseSchema",
    "inserts",
    "deletes",
    "delta_of",
    "split_delta",
    # rings
    "Ring",
    "Z",
    "IntegerRing",
    "FloatRing",
    "BoolRing",
    "MinPlusRing",
    "RelationRing",
    "RelationValue",
    "CofactorLayout",
    "NumericCofactorRing",
    "GeneralCofactorRing",
    "Binning",
    "Feature",
    "PayloadPlan",
    "PayloadSpec",
    "CountSpec",
    "SumSpec",
    "SumProductSpec",
    "CovarSpec",
    "MISpec",
    # query & view tree
    "Query",
    "VariableOrder",
    "VONode",
    "plan_variable_order",
    "ViewTree",
    "build_view_tree",
    "render_tree_m3",
    "render_tree_dot",
    # engines
    "MaintenanceEngine",
    "FIVMEngine",
    "FirstOrderEngine",
    "NaiveEngine",
    "PerAggregateEngine",
    "ShardedEngine",
    "evaluate_tree",
    # engine construction & transports
    "EngineConfig",
    "create_engine",
    "available_backends",
    "available_transports",
    "ShardTransport",
    "PipeTransport",
    "SharedMemoryTransport",
    # serving
    "EngineSnapshot",
    "SnapshotStore",
    "ServingApp",
    "SnapshotServer",
    "ServerThread",
    "IngestThread",
    "ServingScenario",
    "build_serving_scenario",
    # ml
    "Column",
    "CovarMatrix",
    "covar_from_payload",
    "RidgeRegression",
    "RidgeModel",
    "MIMatrix",
    "mutual_information_matrix",
    "rank_features",
    "select_features",
    "FeatureRanking",
    "ChowLiuTree",
    "chow_liu_tree",
    # apps
    "MaintenanceSession",
    "BulkReport",
    "ModelSelectionApp",
    "RegressionApp",
    "ChowLiuApp",
    "MaintenanceStrategyApp",
]
