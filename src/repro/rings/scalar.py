"""Scalar rings and semirings: Z, floats, booleans, min-plus.

The **Z ring** is the workhorse of classical IVM: payloads are tuple
multiplicities, inserts add positive and deletes add negative multiplicities
(Koch-style delta processing, which the paper builds on). The **float ring**
plays the same role for continuous aggregates and serves as the scalar ring
inside the numeric cofactor ring.

:class:`BoolRing` and :class:`MinPlusRing` demonstrate the paper's point
that the maintenance machinery is ring-generic: swapping in the boolean
semiring turns the count query into set-semantics existence, and the
tropical semiring turns it into a min-cost aggregate. Both lack additive
inverses, so they support insert-only streams (``has_negation = False``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import RingError
from repro.rings.base import Ring

__all__ = ["IntegerRing", "FloatRing", "BoolRing", "MinPlusRing", "Z", "R_FLOAT"]


class _ArrayBlockKernels:
    """Bulk kernels over 1-d numpy blocks, shared by the scalar rings.

    Blocks are plain arrays of ``_block_dtype``; :meth:`block_payloads`
    converts back to native Python scalars (via ``tolist``) so payloads
    scattered into relations are indistinguishable from the per-element
    path's. The Z block dtype is ``int64`` — far beyond any realistic
    multiplicity, but unlike Python ints not arbitrary-precision.
    """

    _block_dtype: type = np.float64

    def make_block(self, payloads):
        return np.array(list(payloads), dtype=self._block_dtype)

    def zero_block(self, n):
        return np.zeros(n, dtype=self._block_dtype)

    def block_size(self, block):
        return len(block)

    def block_payloads(self, block):
        return iter(block.tolist())

    def take(self, block, indices):
        return block[np.asarray(indices, dtype=np.intp)]

    def add_many(self, a, b):
        return a + b

    def mul_many(self, a, b):
        return a * b

    def neg_many(self, a):
        return -a

    def scale_many(self, block, counts):
        return block * np.asarray(counts, dtype=self._block_dtype)

    def from_int_many(self, counts):
        return np.asarray(counts, dtype=self._block_dtype)

    def is_zero_many(self, block):
        return block == 0

    def sum_segments(self, block, segment_ids, count):
        # np.add.at is an exact unordered scatter-add for both dtypes
        # (bincount would round-trip int64 through float64).
        totals = np.zeros(count, dtype=self._block_dtype)
        np.add.at(totals, np.asarray(segment_ids, dtype=np.intp), block)
        return totals


class IntegerRing(_ArrayBlockKernels, Ring):
    """The ring of integers Z; payloads are plain ``int``."""

    name = "Z"
    is_scalar = True
    has_bulk_kernels = True
    _block_dtype = np.int64

    def zero(self) -> int:
        return 0

    def one(self) -> int:
        return 1

    def add(self, a: int, b: int) -> int:
        return a + b

    def mul(self, a: int, b: int) -> int:
        return a * b

    def neg(self, a: int) -> int:
        return -a

    def from_int(self, n: int) -> int:
        return n

    def scale(self, a: int, n: int) -> int:
        return a * n

    def is_zero(self, a: int) -> bool:
        return a == 0


class FloatRing(_ArrayBlockKernels, Ring):
    """The field of (floating point) reals; payloads are ``float``.

    Equality is exact by default; :meth:`close` offers a tolerance-based
    comparison for tests that accumulate rounding error.
    """

    name = "R"
    has_bulk_kernels = True
    _block_dtype = np.float64

    def __init__(self, zero_tolerance: float = 0.0):
        #: Magnitudes at or below this are considered zero when pruning.
        self.zero_tolerance = zero_tolerance

    def is_zero_many(self, block):
        if self.zero_tolerance == 0.0:
            return block == 0.0
        return np.abs(block) <= self.zero_tolerance

    @property
    def is_scalar(self) -> bool:
        # Truthiness-based zero pruning in the fast paths only matches
        # is_zero when the tolerance is exactly 0.
        return self.zero_tolerance == 0.0

    def zero(self) -> float:
        return 0.0

    def one(self) -> float:
        return 1.0

    def add(self, a: float, b: float) -> float:
        return a + b

    def mul(self, a: float, b: float) -> float:
        return a * b

    def neg(self, a: float) -> float:
        return -a

    def from_int(self, n: int) -> float:
        return float(n)

    def scale(self, a: float, n: int) -> float:
        return a * n

    has_float_scaling = True

    def scale_float(self, a: float, factor: float) -> float:
        return a * factor

    def scale_float_many(self, block, factor: float):
        return block * factor

    def is_zero(self, a: float) -> bool:
        return abs(a) <= self.zero_tolerance

    def close(self, a: float, b: float, tol: float = 1e-9) -> bool:
        """Tolerant comparison for accumulated floating-point payloads."""
        return math.isclose(a, b, rel_tol=tol, abs_tol=tol)


class BoolRing(Ring):
    """Boolean semiring (or, and): set-semantics query evaluation.

    Supports insert-only maintenance; deletes would require the full
    provenance the Z ring keeps, which is exactly the paper's argument for
    running on Z and deriving set semantics at the end.
    """

    name = "B"
    has_negation = False

    def zero(self) -> bool:
        return False

    def one(self) -> bool:
        return True

    def add(self, a: bool, b: bool) -> bool:
        return a or b

    def mul(self, a: bool, b: bool) -> bool:
        return a and b

    def neg(self, a: bool) -> bool:
        raise RingError("the boolean semiring has no additive inverses")

    def from_int(self, n: int) -> bool:
        if n < 0:
            raise RingError("the boolean semiring cannot encode deletes")
        return n > 0

    def scale(self, a: bool, n: int) -> bool:
        if n < 0:
            raise RingError("the boolean semiring cannot encode deletes")
        return a and n > 0


class MinPlusRing(Ring):
    """Tropical (min, +) semiring: minimum-cost aggregates over joins.

    ``zero`` is +infinity and ``one`` is 0.0. Insert-only, like
    :class:`BoolRing`.
    """

    name = "MinPlus"
    has_negation = False

    def zero(self) -> float:
        return math.inf

    def one(self) -> float:
        return 0.0

    def add(self, a: float, b: float) -> float:
        return a if a <= b else b

    def mul(self, a: float, b: float) -> float:
        return a + b

    def neg(self, a: float) -> float:
        raise RingError("the tropical semiring has no additive inverses")

    def from_int(self, n: int) -> float:
        if n < 0:
            raise RingError("the tropical semiring cannot encode deletes")
        return math.inf if n == 0 else 0.0

    def scale(self, a: float, n: int) -> float:
        if n < 0:
            raise RingError("the tropical semiring cannot encode deletes")
        return math.inf if n == 0 else a

    def is_zero(self, a: float) -> bool:
        return a == math.inf


#: Shared singleton instances — the rings are stateless.
Z = IntegerRing()
R_FLOAT = FloatRing()
