"""Attribute (lifting) functions g_X and feature descriptions.

Each attribute X of interest has a function g_X mapping attribute values
into the payload ring (Section 2). This module defines:

- :class:`Feature` — an attribute plus how it enters the model (continuous
  or categorical, with optional discretization into bins);
- :class:`Binning` — equi-width discretization used to compute mutual
  information over continuous attributes;
- factories producing the concrete ``value -> ring element`` callables for
  every ring implemented in this package.

Attributes that carry no feature (pure join keys) are lifted through
:func:`constant_lift`, i.e. they contribute the multiplicative identity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import RingError
from repro.rings.base import Ring
from repro.rings.cofactor import GeneralCofactorRing, NumericCofactorRing
from repro.rings.relational import RelationRing, RelationValue
from repro.rings.scalar import FloatRing, IntegerRing

__all__ = [
    "CONTINUOUS",
    "CATEGORICAL",
    "Binning",
    "Feature",
    "LiftFunction",
    "constant_lift",
    "numeric_cofactor_lift",
    "general_cofactor_lift",
]

CONTINUOUS = "continuous"
CATEGORICAL = "categorical"

#: A lifting function maps an attribute value to a payload-ring element.
LiftFunction = Callable[[Any], Any]


@dataclass(frozen=True)
class Binning:
    """Equi-width discretization of a continuous domain into ``count`` bins.

    Values outside ``[low, high)`` clamp to the first/last bin, so update
    streams that drift outside the configured domain stay well-defined.
    """

    low: float
    high: float
    count: int

    def __post_init__(self):
        if self.count < 1:
            raise RingError("binning needs at least one bin")
        if not self.high > self.low:
            raise RingError("binning needs high > low")

    def bin(self, value: float) -> int:
        """Bin index of ``value`` in ``0 .. count-1``."""
        if value != value:  # NaN guard: math.isnan without the import cost
            raise RingError("cannot bin NaN")
        width = (self.high - self.low) / self.count
        index = math.floor((value - self.low) / width)
        if index < 0:
            return 0
        if index >= self.count:
            return self.count - 1
        return int(index)


@dataclass(frozen=True)
class Feature:
    """An attribute participating in the compound aggregate.

    ``kind`` decides the lift: continuous attributes contribute their value
    (and its square) as scalars; categorical attributes contribute one-hot
    indicator relations. A continuous feature with a :class:`Binning` is
    treated as categorical over bin indices (used by the MI pipeline).
    """

    name: str
    kind: str = CONTINUOUS
    binning: Optional[Binning] = None

    def __post_init__(self):
        if self.kind not in (CONTINUOUS, CATEGORICAL):
            raise RingError(f"unknown feature kind {self.kind!r}")

    @property
    def is_categorical(self) -> bool:
        return self.kind == CATEGORICAL or self.binning is not None

    @classmethod
    def continuous(cls, name: str) -> "Feature":
        return cls(name, CONTINUOUS)

    @classmethod
    def categorical(cls, name: str) -> "Feature":
        return cls(name, CATEGORICAL)

    @classmethod
    def binned(cls, name: str, low: float, high: float, count: int) -> "Feature":
        return cls(name, CONTINUOUS, Binning(low, high, count))


def constant_lift(ring: Ring) -> LiftFunction:
    """Lift of a non-feature attribute: every value maps to ring one."""
    one = ring.one()
    return lambda _value: one


def numeric_cofactor_lift(ring: NumericCofactorRing, feature: Feature) -> LiftFunction:
    """Lift into the numeric cofactor ring (continuous features only)."""
    if feature.is_categorical:
        raise RingError(
            f"feature {feature.name!r} is categorical; the numeric cofactor "
            "ring handles continuous features only — use the generalized "
            "ring with relational values"
        )
    index = ring.layout.index(feature.name)

    def lift(value):
        return ring.lift(index, float(value))

    # Bulk metadata: the columnar maintenance path recognizes these and
    # vectorizes whole value columns through ``ring.lift_many`` instead of
    # calling the closure per tuple (see repro.data.columnar.lift_column).
    lift.bulk_slot = index
    lift.bulk_transform = float
    return lift


def general_cofactor_lift(ring: GeneralCofactorRing, feature: Feature) -> LiftFunction:
    """Lift into the generalized cofactor ring.

    The embedding of attribute values into the scalar ring depends on the
    scalar ring and the feature kind:

    - relational scalar, categorical feature: ``s = Q = {value -> 1}``;
    - relational scalar, continuous feature: ``s = {() -> x}``,
      ``Q = {() -> x^2}``;
    - float scalar (cross-validation backend), continuous feature:
      ``s = x``, ``Q = x^2``.
    """
    index = ring.layout.index(feature.name)
    scalar = ring.scalar
    if isinstance(scalar, RelationRing):
        if feature.binning is not None:
            binning = binning_local = feature.binning
            name = feature.name

            def lift_binned(value, _ring=ring, _index=index, _name=name, _binning=binning_local):
                indicator = RelationValue.indicator(_name, _binning.bin(float(value)))
                return _ring.lift(_index, indicator, indicator)

            return lift_binned
        if feature.is_categorical:
            name = feature.name

            def lift_categorical(value, _ring=ring, _index=index, _name=name):
                indicator = RelationValue.indicator(_name, value)
                return _ring.lift(_index, indicator, indicator)

            return lift_categorical

        def lift_continuous(value, _ring=ring, _index=index):
            x = float(value)
            return _ring.lift(_index, RelationValue.scalar(x), RelationValue.scalar(x * x))

        return lift_continuous
    if isinstance(scalar, (FloatRing, IntegerRing)):
        if feature.is_categorical:
            raise RingError(
                f"feature {feature.name!r} is categorical; the "
                f"{scalar.name}-scalar cofactor ring handles continuous "
                "features only"
            )
        if isinstance(scalar, FloatRing):

            def lift_float(value, _ring=ring, _index=index):
                x = float(value)
                return _ring.lift(_index, x, x * x)

            return lift_float

        # Integer scalar ring: exact arithmetic for integer-valued data.
        def lift_int(value, _ring=ring, _index=index):
            return _ring.lift(_index, value, value * value)

        return lift_int
    raise RingError(
        f"no lift known for scalar ring {scalar.name!r} in the generalized cofactor ring"
    )
