"""Degree-m matrix (cofactor) rings.

The paper maintains the COVAR matrix — the batch of ``SUM(1)``, ``SUM(X)``
and ``SUM(X*Y)`` aggregates over all attributes X, Y of interest — as one
*compound* payload ``(c, s, Q)``: a scalar count, an m-vector of linear
aggregates, and an m x m symmetric matrix of quadratic aggregates. The ring
operations (Section 2) are::

    a +R b = (ca + cb,  sa + sb,  Qa + Qb)
    a *R b = (ca*cb,  cb*sa + ca*sb,  cb*Qa + ca*Qb + sa sb^T + sb sa^T)

This module provides two interchangeable implementations:

- :class:`NumericCofactorRing` — entries are floats, backed by numpy; the
  fast path for all-continuous attributes;
- :class:`GeneralCofactorRing` — entries come from an arbitrary scalar
  :class:`~repro.rings.base.Ring`; instantiated with the
  :class:`~repro.rings.relational.RelationRing` it becomes the paper's
  generalized ring with relational values, which uniformly handles
  categorical attributes (one-hot group-bys) and the mutual-information
  counts. Instantiated with :class:`~repro.rings.scalar.FloatRing` it is a
  slow but independent re-implementation of the numeric ring, which the
  test-suite uses for cross-validation.

Both store only what is needed: the numeric ring keeps the full symmetric
matrix in one contiguous array; the general ring keeps sparse upper-triangle
maps because lifted values start with a single non-zero slot.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from repro.errors import RingError
from repro.rings.base import Ring

__all__ = [
    "CofactorLayout",
    "NumericCofactor",
    "NumericCofactorBlock",
    "NumericCofactorRing",
    "GeneralCofactor",
    "GeneralCofactorRing",
]


class CofactorLayout:
    """Assignment of attribute names to cofactor vector/matrix indices.

    The rings themselves are positional; the layout is the bridge between
    attribute names used by queries and slot indices used by payloads.
    """

    __slots__ = ("attributes", "_index")

    def __init__(self, attributes: Tuple[str, ...]):
        if len(set(attributes)) != len(attributes):
            raise RingError(f"duplicate attribute in cofactor layout: {attributes!r}")
        self.attributes = tuple(attributes)
        self._index = {attr: i for i, attr in enumerate(self.attributes)}

    @property
    def degree(self) -> int:
        return len(self.attributes)

    def index(self, attr: str) -> int:
        try:
            return self._index[attr]
        except KeyError:
            raise RingError(f"attribute {attr!r} not in cofactor layout") from None

    def __contains__(self, attr: str) -> bool:
        return attr in self._index

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CofactorLayout({', '.join(self.attributes)})"


# ----------------------------------------------------------------------
# Numeric (numpy) implementation
# ----------------------------------------------------------------------


class NumericCofactor:
    """Payload of the numeric degree-m ring: ``(c, s, Q)`` over floats."""

    __slots__ = ("c", "s", "q")

    def __init__(self, c: float, s: np.ndarray, q: np.ndarray):
        self.c = c
        self.s = s
        self.q = q

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NumericCofactor(c={self.c}, s={self.s.tolist()}, q={self.q.tolist()})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, NumericCofactor):
            return NotImplemented
        return (
            self.c == other.c
            and np.array_equal(self.s, other.s)
            and np.array_equal(self.q, other.q)
        )


class NumericCofactorBlock:
    """Column block of n numeric cofactor payloads: ``c[n], s[n,m], q[n,m,m]``.

    The bulk kernels below operate on these contiguous arrays, so one
    numpy call covers a whole delta batch where the per-element path pays
    an allocation and dispatch per tuple. Row ``i`` viewed through
    :meth:`NumericCofactorRing.block_payloads` aliases the block arrays;
    rows are disjoint, so mutating one scattered payload in place never
    affects another.
    """

    __slots__ = ("c", "s", "q")

    def __init__(self, c: np.ndarray, s: np.ndarray, q: np.ndarray):
        self.c = c
        self.s = s
        self.q = q

    def __len__(self) -> int:
        return len(self.c)


class NumericCofactorRing(Ring):
    """Degree-m matrix ring over floats, numpy-backed.

    ``m`` is the number of attributes in the compound aggregate; payloads
    carry ``1 + m + m*m`` scalar aggregates maintained together.
    """

    has_bulk_kernels = True

    def __init__(self, layout: CofactorLayout):
        self.layout = layout
        self.degree = layout.degree
        self.name = f"Cofactor<{self.degree}>"

    def zero(self) -> NumericCofactor:
        m = self.degree
        return NumericCofactor(0.0, np.zeros(m), np.zeros((m, m)))

    def one(self) -> NumericCofactor:
        m = self.degree
        return NumericCofactor(1.0, np.zeros(m), np.zeros((m, m)))

    def add(self, a: NumericCofactor, b: NumericCofactor) -> NumericCofactor:
        return NumericCofactor(a.c + b.c, a.s + b.s, a.q + b.q)

    def add_inplace(self, a: NumericCofactor, b: NumericCofactor) -> NumericCofactor:
        a.c += b.c
        a.s += b.s
        a.q += b.q
        return a

    def copy(self, a: NumericCofactor) -> NumericCofactor:
        return NumericCofactor(a.c, a.s.copy(), a.q.copy())

    def mul(self, a: NumericCofactor, b: NumericCofactor) -> NumericCofactor:
        cross = np.outer(a.s, b.s)
        return NumericCofactor(
            a.c * b.c,
            b.c * a.s + a.c * b.s,
            b.c * a.q + a.c * b.q + cross + cross.T,
        )

    def neg(self, a: NumericCofactor) -> NumericCofactor:
        return NumericCofactor(-a.c, -a.s, -a.q)

    def scale(self, a: NumericCofactor, n: int) -> NumericCofactor:
        return NumericCofactor(a.c * n, a.s * n, a.q * n)

    has_float_scaling = True

    def scale_float(self, a: NumericCofactor, factor: float) -> NumericCofactor:
        return NumericCofactor(a.c * factor, a.s * factor, a.q * factor)

    def from_int(self, n: int) -> NumericCofactor:
        m = self.degree
        return NumericCofactor(float(n), np.zeros(m), np.zeros((m, m)))

    def eq(self, a: NumericCofactor, b: NumericCofactor) -> bool:
        return a == b

    def close(self, a: NumericCofactor, b: NumericCofactor, tol: float = 1e-8) -> bool:
        """Tolerant comparison for payloads with accumulated float error."""
        return (
            abs(a.c - b.c) <= tol * max(1.0, abs(a.c), abs(b.c))
            and np.allclose(a.s, b.s, rtol=tol, atol=tol)
            and np.allclose(a.q, b.q, rtol=tol, atol=tol)
        )

    def is_zero(self, a: NumericCofactor) -> bool:
        return a.c == 0.0 and not a.s.any() and not a.q.any()

    def lift(self, index: int, x: float) -> NumericCofactor:
        """The attribute function g for a continuous attribute at ``index``:
        ``g(x) = (1, e_index * x, E_(index,index) * x^2)``."""
        m = self.degree
        s = np.zeros(m)
        s[index] = x
        q = np.zeros((m, m))
        q[index, index] = x * x
        return NumericCofactor(1.0, s, q)

    # ------------------------------------------------------------------
    # Bulk kernels (contiguous column blocks; see NumericCofactorBlock)
    # ------------------------------------------------------------------

    def make_block(self, payloads) -> NumericCofactorBlock:
        payloads = list(payloads)
        if not payloads:
            return self.zero_block(0)
        m = self.degree
        # One C-level pass per component beats per-row slice assignment
        # roughly 3x; the list comprehensions only collect references.
        c = np.array([payload.c for payload in payloads], dtype=np.float64)
        s = np.array([payload.s for payload in payloads], dtype=np.float64)
        q = np.array([payload.q for payload in payloads], dtype=np.float64)
        if s.ndim != 2:  # degree-0 layouts keep their (n, 0) shapes
            s = s.reshape(len(payloads), m)
            q = q.reshape(len(payloads), m, m)
        return NumericCofactorBlock(c, s, q)

    def zero_block(self, n: int) -> NumericCofactorBlock:
        m = self.degree
        return NumericCofactorBlock(np.zeros(n), np.zeros((n, m)), np.zeros((n, m, m)))

    def block_size(self, block: NumericCofactorBlock) -> int:
        return len(block.c)

    def block_payloads(self, block: NumericCofactorBlock):
        # tolist()/list() split the block into rows in one C pass each;
        # map() then drives the trivial constructor without a Python frame
        # per row.
        return map(NumericCofactor, block.c.tolist(), list(block.s), list(block.q))

    def take(self, block: NumericCofactorBlock, indices) -> NumericCofactorBlock:
        idx = np.asarray(indices, dtype=np.intp)
        return NumericCofactorBlock(block.c[idx], block.s[idx], block.q[idx])

    def add_many(
        self, a: NumericCofactorBlock, b: NumericCofactorBlock
    ) -> NumericCofactorBlock:
        return NumericCofactorBlock(a.c + b.c, a.s + b.s, a.q + b.q)

    def mul_many(
        self, a: NumericCofactorBlock, b: NumericCofactorBlock
    ) -> NumericCofactorBlock:
        ac = a.c[:, None]
        bc = b.c[:, None]
        cross = a.s[:, :, None] * b.s[:, None, :]
        return NumericCofactorBlock(
            a.c * b.c,
            bc * a.s + ac * b.s,
            bc[:, :, None] * a.q + ac[:, :, None] * b.q
            + cross
            + cross.transpose(0, 2, 1),
        )

    def neg_many(self, a: NumericCofactorBlock) -> NumericCofactorBlock:
        return NumericCofactorBlock(-a.c, -a.s, -a.q)

    def scale_many(self, block: NumericCofactorBlock, counts) -> NumericCofactorBlock:
        n = np.asarray(counts, dtype=np.float64)
        return NumericCofactorBlock(
            block.c * n, block.s * n[:, None], block.q * n[:, None, None]
        )

    def scale_float_many(
        self, block: NumericCofactorBlock, factor: float
    ) -> NumericCofactorBlock:
        return NumericCofactorBlock(
            block.c * factor, block.s * factor, block.q * factor
        )

    def from_int_many(self, counts) -> NumericCofactorBlock:
        c = np.asarray(counts, dtype=np.float64)
        n, m = len(c), self.degree
        return NumericCofactorBlock(c, np.zeros((n, m)), np.zeros((n, m, m)))

    def lift_many(self, index: int, values) -> NumericCofactorBlock:
        x = np.asarray(values, dtype=np.float64)
        n, m = len(x), self.degree
        s = np.zeros((n, m))
        s[:, index] = x
        q = np.zeros((n, m, m))
        q[:, index, index] = x * x
        return NumericCofactorBlock(np.ones(n), s, q)

    def is_zero_many(self, block: NumericCofactorBlock) -> np.ndarray:
        return (
            (block.c == 0.0)
            & (block.s == 0.0).all(axis=1)
            & (block.q == 0.0).all(axis=(1, 2))
        )

    def sum_segments(
        self, block: NumericCofactorBlock, segment_ids, count: int
    ) -> NumericCofactorBlock:
        m = self.degree
        c = np.zeros(count)
        s = np.zeros((count, m))
        q = np.zeros((count, m, m))
        ids = np.asarray(segment_ids, dtype=np.intp)
        if len(ids):
            order = np.argsort(ids, kind="stable")
            sorted_ids = ids[order]
            starts = np.flatnonzero(
                np.r_[True, sorted_ids[1:] != sorted_ids[:-1]]
            )
            present = sorted_ids[starts]
            c[present] = np.add.reduceat(block.c[order], starts)
            s[present] = np.add.reduceat(block.s[order], starts, axis=0)
            q[present] = np.add.reduceat(block.q[order], starts, axis=0)
        return NumericCofactorBlock(c, s, q)


# ----------------------------------------------------------------------
# Generalized implementation over an arbitrary scalar ring
# ----------------------------------------------------------------------


class GeneralCofactor:
    """Payload of the generalized degree-m ring.

    ``c`` is a scalar-ring value, ``s`` a sparse map ``index -> value`` and
    ``q`` a sparse upper-triangle map ``(i, j) -> value`` with ``i <= j``
    (the paper's Figure 1 likewise omits the symmetric lower triangle).
    """

    __slots__ = ("c", "s", "q")

    def __init__(self, c: Any, s: Dict[int, Any], q: Dict[Tuple[int, int], Any]):
        self.c = c
        self.s = s
        self.q = q

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GeneralCofactor(c={self.c!r}, s={self.s!r}, q={self.q!r})"


class GeneralCofactorRing(Ring):
    """Degree-m cofactor ring whose entries come from any scalar ring.

    With :class:`~repro.rings.relational.RelationRing` as the scalar ring
    this is the paper's composition "degree-m matrix ring with relational
    values": continuous attributes store ``{() -> x}`` scalars, categorical
    attributes store ``{x -> 1}`` indicator relations, and the interaction
    entries come out as group-by aggregates (e.g. ``SUM(B) GROUP BY C``).
    """

    def __init__(self, scalar: Ring, layout: CofactorLayout):
        self.scalar = scalar
        self.layout = layout
        self.degree = layout.degree
        self.name = f"Cofactor<{self.degree}, {scalar.name}>"

    # -- helpers -------------------------------------------------------

    def _merge(self, into: Dict, source: Dict) -> None:
        """Accumulate ``source`` into ``into`` entry-wise (pure scalar adds)."""
        scalar = self.scalar
        for key, value in source.items():
            existing = into.get(key)
            total = value if existing is None else scalar.add(existing, value)
            if scalar.is_zero(total):
                into.pop(key, None)
            else:
                into[key] = total

    def _scaled(self, entries: Dict, factor: Any) -> Dict:
        """Entry-wise scalar multiplication by ``factor``, dropping zeros."""
        scalar = self.scalar
        if scalar.is_zero(factor):
            return {}
        result = {}
        for key, value in entries.items():
            product = scalar.mul(value, factor)
            if not scalar.is_zero(product):
                result[key] = product
        return result

    # -- ring interface --------------------------------------------------

    def zero(self) -> GeneralCofactor:
        return GeneralCofactor(self.scalar.zero(), {}, {})

    def one(self) -> GeneralCofactor:
        return GeneralCofactor(self.scalar.one(), {}, {})

    def add(self, a: GeneralCofactor, b: GeneralCofactor) -> GeneralCofactor:
        s = dict(a.s)
        self._merge(s, b.s)
        q = dict(a.q)
        self._merge(q, b.q)
        return GeneralCofactor(self.scalar.add(a.c, b.c), s, q)

    def add_inplace(self, a: GeneralCofactor, b: GeneralCofactor) -> GeneralCofactor:
        a.c = self.scalar.add(a.c, b.c)
        self._merge(a.s, b.s)
        self._merge(a.q, b.q)
        return a

    def copy(self, a: GeneralCofactor) -> GeneralCofactor:
        return GeneralCofactor(a.c, dict(a.s), dict(a.q))

    def mul(self, a: GeneralCofactor, b: GeneralCofactor) -> GeneralCofactor:
        scalar = self.scalar
        c = scalar.mul(a.c, b.c)
        s = self._scaled(a.s, b.c)
        self._merge(s, self._scaled(b.s, a.c))
        q = self._scaled(a.q, b.c)
        self._merge(q, self._scaled(b.q, a.c))
        # The symmetric cross term sa sb^T + sb sa^T, folded onto the upper
        # triangle: entry (i, j) with i < j receives sa_i*sb_j and sa_j*sb_i;
        # the diagonal receives 2 * sa_i*sb_i.
        for i, sa_i in a.s.items():
            for j, sb_j in b.s.items():
                term = scalar.mul(sa_i, sb_j)
                if scalar.is_zero(term):
                    continue
                if i == j:
                    term = scalar.add(term, term)
                    key = (i, i)
                else:
                    key = (i, j) if i < j else (j, i)
                existing = q.get(key)
                total = term if existing is None else scalar.add(existing, term)
                if scalar.is_zero(total):
                    q.pop(key, None)
                else:
                    q[key] = total
        return GeneralCofactor(c, s, q)

    def neg(self, a: GeneralCofactor) -> GeneralCofactor:
        scalar = self.scalar
        return GeneralCofactor(
            scalar.neg(a.c),
            {key: scalar.neg(value) for key, value in a.s.items()},
            {key: scalar.neg(value) for key, value in a.q.items()},
        )

    def scale(self, a: GeneralCofactor, n: int) -> GeneralCofactor:
        if n == 0:
            return self.zero()
        scalar = self.scalar
        return GeneralCofactor(
            scalar.scale(a.c, n),
            {key: scalar.scale(value, n) for key, value in a.s.items()},
            {key: scalar.scale(value, n) for key, value in a.q.items()},
        )

    def from_int(self, n: int) -> GeneralCofactor:
        return GeneralCofactor(self.scalar.from_int(n), {}, {})

    @property
    def has_float_scaling(self) -> bool:
        return self.scalar.has_float_scaling

    def scale_float(self, a: GeneralCofactor, factor: float) -> GeneralCofactor:
        # Delegates entry-wise; a scalar ring without float scaling
        # (e.g. the relational ring) raises its own descriptive error.
        scalar = self.scalar
        return GeneralCofactor(
            scalar.scale_float(a.c, factor),
            {key: scalar.scale_float(value, factor) for key, value in a.s.items()},
            {key: scalar.scale_float(value, factor) for key, value in a.q.items()},
        )

    def eq(self, a: GeneralCofactor, b: GeneralCofactor) -> bool:
        scalar = self.scalar
        if not scalar.eq(a.c, b.c):
            return False
        for left, right in ((a.s, b.s), (a.q, b.q)):
            keys = set(left) | set(right)
            for key in keys:
                lval = left.get(key)
                rval = right.get(key)
                if lval is None:
                    if not scalar.is_zero(rval):
                        return False
                elif rval is None:
                    if not scalar.is_zero(lval):
                        return False
                elif not scalar.eq(lval, rval):
                    return False
        return True

    def is_zero(self, a: GeneralCofactor) -> bool:
        if not self.scalar.is_zero(a.c):
            return False
        return all(self.scalar.is_zero(v) for v in a.s.values()) and all(
            self.scalar.is_zero(v) for v in a.q.values()
        )

    def close(self, a: GeneralCofactor, b: GeneralCofactor, tol: float = 1e-8) -> bool:
        """Tolerant comparison via the scalar ring's ``close`` (if any)."""
        scalar = self.scalar
        scalar_close = getattr(scalar, "close", None)
        if scalar_close is None:
            return self.eq(a, b)
        zero = scalar.zero()
        if not scalar_close(a.c, b.c, tol):
            return False
        for left, right in ((a.s, b.s), (a.q, b.q)):
            for key in set(left) | set(right):
                lval = left.get(key, zero)
                rval = right.get(key, zero)
                if not scalar_close(lval, rval, tol):
                    return False
        return True

    def lift(self, index: int, s_value: Any, q_value: Any) -> GeneralCofactor:
        """Attribute function g at slot ``index`` with pre-embedded entries.

        ``s_value``/``q_value`` are scalar-ring values: for a continuous
        attribute ``({() -> x}, {() -> x^2})``; for a categorical one
        ``({x -> 1}, {x -> 1})`` (see :mod:`repro.rings.lifting`).
        """
        return GeneralCofactor(self.scalar.one(), {index: s_value}, {(index, index): q_value})

    # -- accessors -------------------------------------------------------

    def entry(self, a: GeneralCofactor, i: int, j: int) -> Any:
        """Symmetric read of the quadratic entry (i, j)."""
        key = (i, j) if i <= j else (j, i)
        value = a.q.get(key)
        return self.scalar.zero() if value is None else value

    def linear(self, a: GeneralCofactor, i: int) -> Any:
        """Read of the linear entry i."""
        value = a.s.get(i)
        return self.scalar.zero() if value is None else value
