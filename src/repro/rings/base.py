"""Commutative ring abstraction used for view payloads.

F-IVM parameterizes the whole maintenance machinery by a commutative ring
``(R, +, *, 0, 1)``: view payloads are ring values, joins multiply payloads,
marginalization adds them, and deletes are handled through additive inverses
(Section 2 of the paper). A :class:`Ring` object bundles the operations and
treats the payload values themselves as opaque — plain ``int`` for the Z
ring, ``float`` for the numeric ring, richer objects for the cofactor rings.

Keeping operations on a ring *object* (rather than requiring payloads to be
instances of some value class) lets the hot loops of the engine work on
unboxed Python ints in the common counting case.

Semirings without additive inverses (:class:`~repro.rings.boolean.BoolRing`,
:class:`~repro.rings.minplus.MinPlusRing`) implement the same interface but
raise :class:`~repro.errors.RingError` from :meth:`Ring.neg`; they support
insert-only maintenance.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable, Sequence

import numpy as np

from repro.errors import RingError

__all__ = ["Ring", "check_ring_axioms"]


class Ring(ABC):
    """Interface of a commutative ring over opaque payload values.

    Subclasses must implement :meth:`zero`, :meth:`one`, :meth:`add`,
    :meth:`mul` and :meth:`neg`. The remaining operations have generic
    default implementations that subclasses may override for speed.

    Values returned by :meth:`zero` and :meth:`one` must be safe to share:
    either immutable, or fresh objects on every call.
    """

    #: Human-readable name used in reprs, plans and M3 output.
    name: str = "ring"

    #: Whether :meth:`neg` is supported (False for the bool/min-plus semirings).
    has_negation: bool = True

    #: True when the ``*_many`` bulk kernels below operate on contiguous
    #: array blocks instead of the generic per-element loop fallback. The
    #: columnar maintenance path only engages for such rings; every other
    #: ring keeps working through the loop fallbacks (used by the tests
    #: and by callers that want one code path regardless of ring).
    has_bulk_kernels: bool = False

    #: True when payloads are plain Python numbers whose ``+``/``*`` agree
    #: with :meth:`add`/:meth:`mul` and whose truthiness agrees with
    #: :meth:`is_zero` (``bool(x) == (not is_zero(x))``). The relation
    #: operations use this to run tight accumulator loops that skip ring
    #: dispatch entirely (see :mod:`repro.data.relation`).
    is_scalar: bool = False

    #: True when :meth:`scale_float` is implemented — payloads form a
    #: module over the reals, not just over Z. Exponential decay
    #: (:class:`~repro.rings.decay.DecayRing`) requires this.
    has_float_scaling: bool = False

    @abstractmethod
    def zero(self) -> Any:
        """Return the additive identity."""

    @abstractmethod
    def one(self) -> Any:
        """Return the multiplicative identity."""

    @abstractmethod
    def add(self, a: Any, b: Any) -> Any:
        """Return ``a + b``. Must not mutate either argument."""

    @abstractmethod
    def mul(self, a: Any, b: Any) -> Any:
        """Return ``a * b``. Must not mutate either argument."""

    @abstractmethod
    def neg(self, a: Any) -> Any:
        """Return the additive inverse ``-a``.

        Semirings raise :class:`~repro.errors.RingError`.
        """

    # ------------------------------------------------------------------
    # Derived operations (override for performance where it matters).
    # ------------------------------------------------------------------

    def sub(self, a: Any, b: Any) -> Any:
        """Return ``a - b``."""
        return self.add(a, self.neg(b))

    def add_inplace(self, a: Any, b: Any) -> Any:
        """Accumulate ``b`` into ``a`` and return the result.

        May mutate ``a`` (the caller must own it); the default delegates to
        the pure :meth:`add`. Engines use this in marginalization loops.
        """
        return self.add(a, b)

    def eq(self, a: Any, b: Any) -> bool:
        """Return whether two payloads are equal as ring values."""
        return a == b

    def is_zero(self, a: Any) -> bool:
        """Return whether ``a`` equals the additive identity.

        Engines prune zero payloads from views so that deletes physically
        remove tuples.
        """
        return self.eq(a, self.zero())

    def from_int(self, n: int) -> Any:
        """Image of the integer ``n`` under the canonical map ``Z -> R``.

        Used to turn tuple multiplicities into ring values. The default
        computes ``n * 1`` through :meth:`scale`.
        """
        return self.scale(self.one(), n)

    def scale(self, a: Any, n: int) -> Any:
        """Return ``a`` added to itself ``n`` times (``n`` may be negative).

        This is the action of ``Z`` on the ring; base-relation multiplicities
        enter payload space through it. The default uses binary doubling.
        """
        if n == 0:
            return self.zero()
        if n < 0:
            return self.neg(self.scale(a, -n))
        result = self.zero()
        addend = a
        while n:
            if n & 1:
                result = self.add(result, addend)
            n >>= 1
            if n:
                addend = self.add(addend, addend)
        return result

    def sum(self, values: Iterable[Any]) -> Any:
        """Sum an iterable of payloads (returns :meth:`zero` when empty)."""
        total = self.zero()
        for value in values:
            total = self.add_inplace(total, value)
        return total

    def prod(self, values: Iterable[Any]) -> Any:
        """Multiply an iterable of payloads (returns :meth:`one` when empty)."""
        total = self.one()
        for value in values:
            total = self.mul(total, value)
        return total

    def copy(self, a: Any) -> Any:
        """Return a value the caller may mutate via :meth:`add_inplace`.

        Rings with immutable payloads (ints, floats) return ``a`` itself.
        """
        return a

    def scale_float(self, a: Any, factor: float) -> Any:
        """Return ``a`` scaled by an arbitrary real ``factor``.

        Only rings whose payloads embed the reals support this
        (``has_float_scaling``); it is the primitive exponential decay is
        built on. Exact rings (Z, bool, min-plus) raise — decaying exact
        counts has no well-defined meaning there.
        """
        raise RingError(
            f"ring {self.name!r} cannot scale payloads by a float — "
            "exponential decay needs a float-weighted ring (sum/covar)"
        )

    def scale_float_many(self, block: Any, factor: float) -> Any:
        """Block form of :meth:`scale_float` (one factor for all elements)."""
        return self.make_block(
            self.scale_float(payload, factor)
            for payload in self.block_payloads(block)
        )

    # ------------------------------------------------------------------
    # Bulk kernels over payload *blocks*.
    #
    # A block holds n payloads in whatever layout the ring chooses: the
    # generic fallbacks below use a plain Python list, scalar rings use a
    # 1-d numpy array, and the numeric cofactor ring uses contiguous
    # ``(c[n], s[n, m], q[n, m, m])`` column arrays. Blocks are opaque to
    # callers — always go through these methods. All kernels are pure
    # (fresh output blocks); :meth:`block_payloads` is the only bridge
    # back to ordinary per-key payload values.
    # ------------------------------------------------------------------

    def make_block(self, payloads: Iterable[Any]) -> Any:
        """Pack an iterable of payloads into a block."""
        return list(payloads)

    def zero_block(self, n: int) -> Any:
        """Block of ``n`` additive identities."""
        return [self.zero() for _ in range(n)]

    def block_size(self, block: Any) -> int:
        """Number of payloads in ``block``."""
        return len(block)

    def block_payloads(self, block: Any) -> Iterable[Any]:
        """Iterate the block as ordinary payload values (scatter bridge)."""
        return iter(block)

    def take(self, block: Any, indices: Any) -> Any:
        """Gather ``block[i]`` for each i in ``indices`` into a new block."""
        return [block[i] for i in indices]

    def add_many(self, a: Any, b: Any) -> Any:
        """Element-wise :meth:`add` of two equal-length blocks."""
        return [self.add(x, y) for x, y in zip(a, b)]

    def mul_many(self, a: Any, b: Any) -> Any:
        """Element-wise :meth:`mul` of two equal-length blocks."""
        return [self.mul(x, y) for x, y in zip(a, b)]

    def neg_many(self, a: Any) -> Any:
        """Element-wise :meth:`neg` of a block."""
        return [self.neg(x) for x in a]

    def scale_many(self, block: Any, counts: Sequence[int]) -> Any:
        """Element-wise :meth:`scale` by per-element integer counts."""
        return [self.scale(x, int(n)) for x, n in zip(block, counts)]

    def from_int_many(self, counts: Sequence[int]) -> Any:
        """Block of :meth:`from_int` images of per-element counts."""
        return [self.from_int(int(n)) for n in counts]

    def lift_many(self, index: Any, *columns: Sequence[Any]) -> Any:
        """Element-wise ``lift(index, columns[0][i], ...)`` as a block.

        Only defined for rings exposing a ``lift`` attribute function
        (the cofactor rings); others raise :class:`RingError`.
        """
        lift = getattr(self, "lift", None)
        if lift is None:
            raise RingError(f"ring {self.name!r} has no lift; lift_many undefined")
        return self.make_block(lift(index, *values) for values in zip(*columns))

    def is_zero_many(self, block: Any) -> np.ndarray:
        """Boolean mask of elements equal to the additive identity."""
        size = self.block_size(block)
        return np.fromiter(
            (self.is_zero(x) for x in self.block_payloads(block)),
            dtype=bool,
            count=size,
        )

    def sum_segments(self, block: Any, segment_ids: Any, count: int) -> Any:
        """Group-sum: output element g is the sum of rows with id g.

        ``segment_ids`` assigns each block element to one of ``count``
        groups; groups with no member sum to :meth:`zero`. This is the
        bulk form of the marginalization group-by.
        """
        totals = [None] * count
        for payload, gid in zip(self.block_payloads(block), segment_ids):
            existing = totals[gid]
            if existing is None:
                totals[gid] = self.copy(payload)
            else:
                totals[gid] = self.add_inplace(existing, payload)
        return self.make_block(
            self.zero() if total is None else total for total in totals
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


def check_ring_axioms(ring: Ring, a: Any, b: Any, c: Any) -> None:
    """Assert the commutative-ring axioms on a sample of three values.

    Used by the hypothesis test-suite: raises :class:`RingError` naming the
    violated axiom. For semirings (``has_negation=False``) the inverse axiom
    is skipped.
    """
    eq = ring.eq
    zero, one = ring.zero(), ring.one()
    checks = [
        ("add associativity", ring.add(ring.add(a, b), c), ring.add(a, ring.add(b, c))),
        ("add commutativity", ring.add(a, b), ring.add(b, a)),
        ("add identity", ring.add(a, zero), a),
        ("mul associativity", ring.mul(ring.mul(a, b), c), ring.mul(a, ring.mul(b, c))),
        ("mul commutativity", ring.mul(a, b), ring.mul(b, a)),
        ("mul identity", ring.mul(a, one), a),
        ("mul zero annihilates", ring.mul(a, zero), zero),
        (
            "distributivity",
            ring.mul(a, ring.add(b, c)),
            ring.add(ring.mul(a, b), ring.mul(a, c)),
        ),
    ]
    if ring.has_negation:
        checks.append(("additive inverse", ring.add(a, ring.neg(a)), zero))
    for axiom, left, right in checks:
        if not eq(left, right):
            raise RingError(
                f"{ring.name}: axiom {axiom!r} violated: {left!r} != {right!r}"
            )
