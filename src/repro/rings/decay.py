"""Exponential decay as a ring wrapper: recency-weighted aggregates.

Windowed maintenance (:mod:`repro.data.windows`) forgets events sharply;
:class:`DecayRing` forgets them smoothly. Every base-relation event
carries the weight ``λ^(T - t)`` where ``t`` is the decay tick at which
it arrived and ``T`` the current tick, so COVAR/regression/sum payloads
track the recent stream; joined tuples multiply the weights of their
contributing events (weights ride the ring's multilinearity like any
other payload factor).

The trick that keeps maintenance *incremental* — no stored payload is
ever touched when the clock ticks — is to run the clock backwards on the
way in: an event arriving at tick ``t`` is scaled by the **boost**
``λ^(-t)`` at the only points where integer multiplicities enter payload
space (:meth:`scale`, :meth:`from_int` and their bulk forms). Every
stored payload then holds its value *as of tick 0*, and a single lazy
multiplication by ``λ^(T·k)`` at read time (``k`` = number of base
relations contributing to the view — each summand carries exactly ``k``
boosted leaf factors) yields the correctly decayed value. That read-time
rebase is :meth:`settle_factor`; the engine applies it per view, resets
the clock, and does so automatically whenever the boost would overflow
(``rescale-on-overflow``), so the scheme is numerically stable over
unbounded streams.

Because the boost rides the multiplicity entry points shared by the
per-tuple, columnar and fused paths, all three produce bit-identical
decayed state. The wrapper delegates everything else — including the
full bulk-kernel contract — to the base ring, so it rides the fused path
at full speed. It requires ``has_float_scaling`` on the base ring
(sum/covar payloads); exact rings (Z, bool, min-plus) raise a
descriptive error, as decayed exact counts are not meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import RingError
from repro.rings.base import Ring
from repro.rings.cofactor import NumericCofactor

__all__ = ["DecaySpec", "DecayRing", "payload_drift", "result_drift"]


@dataclass(frozen=True)
class DecaySpec:
    """Decay schedule: multiply history by ``rate`` every ``every`` events.

    Parsed from the spec string ``"RATE/EVERY"`` (e.g. ``"0.99/1000"``:
    one decay tick of λ=0.99 per 1000 stream events) used by
    :class:`~repro.config.EngineConfig` and ``--engine-decay``.
    """

    rate: float
    every: int

    def __post_init__(self):
        if not isinstance(self.rate, float) or not 0.0 < self.rate < 1.0:
            raise RingError(
                f"decay rate must be a float in (0, 1), got {self.rate!r}"
            )
        if not isinstance(self.every, int) or self.every < 1:
            raise RingError(
                f"decay interval must be a positive int, got {self.every!r}"
            )

    @classmethod
    def parse(cls, spec: str) -> "DecaySpec":
        """Parse ``"RATE/EVERY"`` (``"RATE"`` alone means every event)."""
        if not isinstance(spec, str) or not spec:
            raise RingError(
                f"bad decay spec {spec!r}: expected 'RATE/EVERY' (e.g. '0.99/1000')"
            )
        rate_s, _, every_s = spec.partition("/")
        try:
            rate = float(rate_s)
            every = int(every_s) if every_s else 1
        except ValueError:
            raise RingError(
                f"bad decay spec {spec!r}: expected 'RATE/EVERY' (e.g. '0.99/1000')"
            ) from None
        return cls(rate, every)

    def describe(self) -> str:
        return f"{self.rate}/{self.every}"


class DecayRing(Ring):
    """Wrap a base ring so multiplicities enter pre-boosted by ``λ^(-T)``.

    Mutable by design: :meth:`advance` moves the shared decay clock that
    every subsequent lift observes. State (``ticks``/``boost``) lives on
    the ring because the ring is the one object all three maintenance
    paths — per-tuple, columnar, fused — already share.

    ``is_scalar`` is forced ``False`` even over scalar bases: the scalar
    fast paths use native ``+``/``*`` and would bypass the boost.
    """

    #: Settle before the boost exceeds this (well inside float range).
    DEFAULT_BOOST_LIMIT = 1e100

    def __init__(self, base: Ring, rate: float, boost_limit: float = DEFAULT_BOOST_LIMIT):
        if not 0.0 < rate < 1.0:
            raise RingError(f"decay rate must be in (0, 1), got {rate!r}")
        if not base.has_float_scaling:
            raise RingError(
                f"ring {base.name!r} cannot scale payloads by a float — "
                "exponential decay needs a float-weighted ring (sum/covar)"
            )
        self.base = base
        self.rate = float(rate)
        self.boost_limit = float(boost_limit)
        self.ticks = 0
        self.boost = 1.0
        self.name = f"Decay<{base.name}, rate={rate}>"

    # -- clock ---------------------------------------------------------

    def advance(self, ticks: int = 1) -> None:
        """Move the decay clock forward; past events lose ``rate`` per tick."""
        if ticks < 0:
            raise RingError("decay clock cannot run backwards")
        self.ticks += ticks
        self.boost = self.rate ** (-self.ticks)

    @property
    def needs_rescale(self) -> bool:
        """Whether the boost overflowed the limit and a settle is due."""
        return self.boost > self.boost_limit

    def settle_factor(self, leaf_count: int) -> float:
        """``λ^(ticks · k)`` — the read-time rebase for a ``k``-leaf view."""
        return self.rate ** (self.ticks * leaf_count)

    def reset(self) -> None:
        """Rebase the clock to 0 after the caller settled every view."""
        self.ticks = 0
        self.boost = 1.0

    # -- boosted multiplicity entry points -----------------------------

    def scale(self, a: Any, n: int) -> Any:
        scaled = self.base.scale(a, n)
        if self.boost != 1.0:
            scaled = self.base.scale_float(scaled, self.boost)
        return scaled

    def from_int(self, n: int) -> Any:
        value = self.base.from_int(n)
        if self.boost != 1.0:
            value = self.base.scale_float(value, self.boost)
        return value

    def scale_many(self, block: Any, counts) -> Any:
        scaled = self.base.scale_many(block, counts)
        if self.boost != 1.0:
            scaled = self.base.scale_float_many(scaled, self.boost)
        return scaled

    def from_int_many(self, counts) -> Any:
        block = self.base.from_int_many(counts)
        if self.boost != 1.0:
            block = self.base.scale_float_many(block, self.boost)
        return block

    # -- pure delegation -----------------------------------------------

    @property
    def has_negation(self) -> bool:
        return self.base.has_negation

    @property
    def has_bulk_kernels(self) -> bool:
        return self.base.has_bulk_kernels

    is_scalar = False
    has_float_scaling = True

    def zero(self):
        return self.base.zero()

    def one(self):
        return self.base.one()

    def add(self, a, b):
        return self.base.add(a, b)

    def mul(self, a, b):
        return self.base.mul(a, b)

    def neg(self, a):
        return self.base.neg(a)

    def sub(self, a, b):
        return self.base.sub(a, b)

    def add_inplace(self, a, b):
        return self.base.add_inplace(a, b)

    def eq(self, a, b):
        return self.base.eq(a, b)

    def is_zero(self, a):
        return self.base.is_zero(a)

    def copy(self, a):
        return self.base.copy(a)

    def sum(self, values):
        return self.base.sum(values)

    def prod(self, values):
        return self.base.prod(values)

    def scale_float(self, a, factor):
        return self.base.scale_float(a, factor)

    def scale_float_many(self, block, factor):
        return self.base.scale_float_many(block, factor)

    def make_block(self, payloads):
        return self.base.make_block(payloads)

    def zero_block(self, n):
        return self.base.zero_block(n)

    def block_size(self, block):
        return self.base.block_size(block)

    def block_payloads(self, block):
        return self.base.block_payloads(block)

    def take(self, block, indices):
        return self.base.take(block, indices)

    def add_many(self, a, b):
        return self.base.add_many(a, b)

    def mul_many(self, a, b):
        return self.base.mul_many(a, b)

    def neg_many(self, a):
        return self.base.neg_many(a)

    def lift_many(self, index, *columns):
        return self.base.lift_many(index, *columns)

    def is_zero_many(self, block):
        return self.base.is_zero_many(block)

    def sum_segments(self, block, segment_ids, count):
        return self.base.sum_segments(block, segment_ids, count)

    def __getattr__(self, attr):
        # Ring-specific extras (lift/layout/degree/close/...) pass through,
        # so lifting closures and model extraction see the base interface.
        return getattr(self.base, attr)


# ----------------------------------------------------------------------
# Drift measurement
# ----------------------------------------------------------------------


def payload_drift(a: Any, b: Any) -> float:
    """Largest absolute component difference between two payloads.

    Understands floats/ints and :class:`NumericCofactor`; anything else
    degrades to a 0/1 equality indicator. Used to quantify how far a
    decayed aggregate sits from a sharp-window (or full-history)
    reference.
    """
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return abs(float(a) - float(b))
    if isinstance(a, NumericCofactor) and isinstance(b, NumericCofactor):
        drift = abs(a.c - b.c)
        if a.s.size or b.s.size:
            drift = max(drift, float(np.abs(a.s - b.s).max(initial=0.0)))
            drift = max(drift, float(np.abs(a.q - b.q).max(initial=0.0)))
        return drift
    return 0.0 if a == b else 1.0


def result_drift(decayed, reference) -> float:
    """Max :func:`payload_drift` across the keys of two result relations.

    Keys present on one side only compare against the other's absence as
    a full payload (drift of the lone payload against zero is unknown, so
    they count via a 0/1 indicator times the lone payload's self-drift
    upper bound — in practice: drift 1.0 signal).
    """
    drift = 0.0
    a, b = decayed.data, reference.data
    for key in set(a) | set(b):
        pa, pb = a.get(key), b.get(key)
        if pa is None or pb is None:
            drift = max(drift, 1.0)
        else:
            drift = max(drift, payload_drift(pa, pb))
    return drift
