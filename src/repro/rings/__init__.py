"""Payload rings: the algebraic core of F-IVM.

The same view tree maintains counts, COVAR matrices or MI counts depending
only on the ring its payloads live in. See :mod:`repro.rings.base` for the
interface and :mod:`repro.rings.specs` for application-level bundles.
"""

from repro.rings.base import Ring, check_ring_axioms
from repro.rings.decay import DecayRing, DecaySpec, payload_drift, result_drift
from repro.rings.cofactor import (
    CofactorLayout,
    GeneralCofactor,
    GeneralCofactorRing,
    NumericCofactor,
    NumericCofactorBlock,
    NumericCofactorRing,
)
from repro.rings.lifting import (
    CATEGORICAL,
    CONTINUOUS,
    Binning,
    Feature,
    LiftFunction,
    constant_lift,
    general_cofactor_lift,
    numeric_cofactor_lift,
)
from repro.rings.relational import RelationRing, RelationValue
from repro.rings.scalar import BoolRing, FloatRing, IntegerRing, MinPlusRing, R_FLOAT, Z
from repro.rings.specs import (
    CountSpec,
    CovarSpec,
    MISpec,
    PayloadPlan,
    PayloadSpec,
    SumProductSpec,
    SumSpec,
)

__all__ = [
    "Ring",
    "check_ring_axioms",
    "DecayRing",
    "DecaySpec",
    "payload_drift",
    "result_drift",
    "IntegerRing",
    "FloatRing",
    "BoolRing",
    "MinPlusRing",
    "Z",
    "R_FLOAT",
    "RelationRing",
    "RelationValue",
    "CofactorLayout",
    "NumericCofactor",
    "NumericCofactorBlock",
    "NumericCofactorRing",
    "GeneralCofactor",
    "GeneralCofactorRing",
    "CONTINUOUS",
    "CATEGORICAL",
    "Binning",
    "Feature",
    "LiftFunction",
    "constant_lift",
    "numeric_cofactor_lift",
    "general_cofactor_lift",
    "CountSpec",
    "SumSpec",
    "SumProductSpec",
    "CovarSpec",
    "MISpec",
    "PayloadPlan",
    "PayloadSpec",
]
