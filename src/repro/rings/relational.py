"""The ring over relations: union as +, natural join as *.

Section 2 of the paper generalizes the cofactor ring to categorical
attributes by "using relations as values in c, s, and Q instead of scalars;
union and join instead of scalar addition and multiplication; the empty
relation 0 as zero". This module implements exactly that value type.

A :class:`RelationValue` is a finite map from tuples (over a fixed schema of
attribute names) to numeric annotations. Addition unions two maps, summing
annotations of equal keys and dropping keys whose annotation reaches zero —
which is how one-hot encoded deletes cancel inserts. Multiplication is the
natural join on shared attributes with multiplied annotations; for the
cofactor/MI use case schemas are typically disjoint ``(X,) * (Y,) -> (X, Y)``
or scalar ``() * (X,) -> (X,)``.

The multiplicative identity is the relation mapping the empty tuple to 1,
and the canonical zero is the empty relation, which acts as zero for *every*
schema (schemas only exist where there is at least one tuple).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.errors import RingError
from repro.rings.base import Ring

__all__ = ["RelationValue", "RelationRing"]

Key = Tuple


class RelationValue:
    """An annotated relation used as a ring value.

    Parameters
    ----------
    schema:
        Tuple of attribute names; ``None`` only for the canonical empty
        relation (zero), whose schema is undetermined.
    data:
        Mapping from key tuples (matching the schema arity) to numeric
        annotations. Zero annotations are dropped on construction.
    """

    __slots__ = ("schema", "data")

    def __init__(
        self,
        schema: Optional[Tuple[str, ...]] = None,
        data: Optional[Mapping[Key, float]] = None,
    ):
        if data:
            if schema is None:
                raise RingError("non-empty RelationValue requires a schema")
            if len(set(schema)) != len(schema):
                raise RingError(f"duplicate attribute in schema {schema!r}")
            arity = len(schema)
            # Canonical column order (sorted by attribute name) makes union
            # and join results independent of operand order, so the ring is
            # genuinely commutative.
            ordered = tuple(sorted(schema))
            if ordered != tuple(schema):
                permutation = tuple(schema.index(attr) for attr in ordered)
            else:
                permutation = None
            clean: Dict[Key, float] = {}
            for key, annotation in data.items():
                if len(key) != arity:
                    raise RingError(
                        f"key {key!r} does not match schema {schema!r}"
                    )
                if annotation != 0:
                    if permutation is not None:
                        key = tuple(key[i] for i in permutation)
                    clean[key] = annotation
            self.data = clean
            self.schema = ordered if clean else None
        else:
            self.data = {}
            self.schema = None
        if not self.data:
            self.schema = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def scalar(cls, value: float) -> "RelationValue":
        """A 0-ary relation ``{() -> value}`` — the embedding of a scalar."""
        return cls((), {(): value})

    @classmethod
    def indicator(cls, attr: str, value) -> "RelationValue":
        """The one-hot indicator ``{value -> 1}`` over schema ``(attr,)``."""
        return cls((attr,), {(value,): 1})

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self.data

    def annotation(self, key: Key = ()) -> float:
        """Annotation of ``key``, 0 when absent."""
        return self.data.get(key, 0)

    def items(self) -> Iterable[Tuple[Key, float]]:
        return self.data.items()

    def as_dict(self) -> Dict[Key, float]:
        """A copy of the underlying key -> annotation map."""
        return dict(self.data)

    def total(self) -> float:
        """Sum of all annotations (the SUM over the whole relation)."""
        return sum(self.data.values())

    def __len__(self) -> int:
        return len(self.data)

    def __eq__(self, other) -> bool:
        if not isinstance(other, RelationValue):
            return NotImplemented
        if not self.data and not other.data:
            return True
        return self.schema == other.schema and self.data == other.data

    def __repr__(self) -> str:
        if not self.data:
            return "RelationValue(∅)"
        shown = ", ".join(
            f"{key!r}->{annotation}" for key, annotation in sorted(self.data.items(), key=repr)
        )
        return f"RelationValue({self.schema}: {shown})"


class RelationRing(Ring):
    """Ring structure on :class:`RelationValue` (union, natural join).

    Join plans — the index arithmetic for combining two schemas — are cached
    per schema pair, since the cofactor ring multiplies the same slot shapes
    millions of times during maintenance.
    """

    name = "Rel"

    def __init__(self):
        self._join_plans: Dict[Tuple[Tuple[str, ...], Tuple[str, ...]], tuple] = {}

    def zero(self) -> RelationValue:
        return _ZERO

    def one(self) -> RelationValue:
        return _ONE

    def add(self, a: RelationValue, b: RelationValue) -> RelationValue:
        if not a.data:
            return b
        if not b.data:
            return a
        if a.schema != b.schema:
            raise RingError(
                f"cannot union relations over schemas {a.schema!r} and {b.schema!r}"
            )
        merged = dict(a.data)
        for key, annotation in b.data.items():
            total = merged.get(key, 0) + annotation
            if total == 0:
                merged.pop(key, None)
            else:
                merged[key] = total
        result = RelationValue.__new__(RelationValue)
        result.data = merged
        result.schema = a.schema if merged else None
        return result

    def add_inplace(self, a: RelationValue, b: RelationValue) -> RelationValue:
        # RelationValues handed out by add/mul are fresh objects, but the
        # shared _ZERO/_ONE singletons must never be mutated.
        if a is _ZERO or a is _ONE or not a.data:
            return self.add(a, b)
        if not b.data:
            return a
        if a.schema != b.schema:
            raise RingError(
                f"cannot union relations over schemas {a.schema!r} and {b.schema!r}"
            )
        data = a.data
        for key, annotation in b.data.items():
            total = data.get(key, 0) + annotation
            if total == 0:
                data.pop(key, None)
            else:
                data[key] = total
        if not data:
            a.schema = None
        return a

    def copy(self, a: RelationValue) -> RelationValue:
        result = RelationValue.__new__(RelationValue)
        result.data = dict(a.data)
        result.schema = a.schema
        return result

    def mul(self, a: RelationValue, b: RelationValue) -> RelationValue:
        if not a.data or not b.data:
            return _ZERO
        shared_a, shared_b, sources, result_schema = self._plan(a.schema, b.schema)
        result: Dict[Key, float] = {}
        if shared_a:
            # Hash join: index b on its shared positions, probe with a.
            index: Dict[Key, list] = {}
            for key_b, ann_b in b.data.items():
                hook = tuple(key_b[i] for i in shared_b)
                index.setdefault(hook, []).append((key_b, ann_b))
            for key_a, ann_a in a.data.items():
                hook = tuple(key_a[i] for i in shared_a)
                for key_b, ann_b in index.get(hook, ()):
                    key = tuple(
                        key_a[i] if from_a else key_b[i] for from_a, i in sources
                    )
                    total = result.get(key, 0) + ann_a * ann_b
                    if total == 0:
                        result.pop(key, None)
                    else:
                        result[key] = total
        else:
            # Cartesian product — the common case for cofactor slots, where
            # schemas are disjoint singletons.
            for key_a, ann_a in a.data.items():
                for key_b, ann_b in b.data.items():
                    key = tuple(
                        key_a[i] if from_a else key_b[i] for from_a, i in sources
                    )
                    total = result.get(key, 0) + ann_a * ann_b
                    if total == 0:
                        result.pop(key, None)
                    else:
                        result[key] = total
        value = RelationValue.__new__(RelationValue)
        value.data = result
        value.schema = result_schema if result else None
        return value

    def neg(self, a: RelationValue) -> RelationValue:
        if not a.data:
            return _ZERO
        result = RelationValue.__new__(RelationValue)
        result.data = {key: -annotation for key, annotation in a.data.items()}
        result.schema = a.schema
        return result

    def eq(self, a: RelationValue, b: RelationValue) -> bool:
        return a == b

    def close(self, a: RelationValue, b: RelationValue, tol: float = 1e-9) -> bool:
        """Tolerant comparison: annotations may carry float rounding."""
        if not a.data and not b.data:
            return True
        if a.schema != b.schema and a.data and b.data:
            return False
        for key in set(a.data) | set(b.data):
            left = a.data.get(key, 0)
            right = b.data.get(key, 0)
            scale = max(1.0, abs(left), abs(right))
            if abs(left - right) > tol * scale:
                return False
        return True

    def is_zero(self, a: RelationValue) -> bool:
        return not a.data

    def from_int(self, n: int) -> RelationValue:
        if n == 0:
            return _ZERO
        return RelationValue.scalar(n)

    def scale(self, a: RelationValue, n: int) -> RelationValue:
        if n == 0 or not a.data:
            return _ZERO
        result = RelationValue.__new__(RelationValue)
        result.data = {key: annotation * n for key, annotation in a.data.items()}
        result.schema = a.schema
        return result

    # ------------------------------------------------------------------

    def _plan(self, schema_a: Tuple[str, ...], schema_b: Tuple[str, ...]) -> tuple:
        """Cache the positional bookkeeping for joining two schemas.

        Output columns follow the canonical (sorted) order of the union;
        ``sources`` says, per output position, whether the value comes from
        operand a (preferred for shared attributes) or operand b.
        """
        cache_key = (schema_a, schema_b)
        plan = self._join_plans.get(cache_key)
        if plan is None:
            positions_a = {attr: i for i, attr in enumerate(schema_a)}
            positions_b = {attr: i for i, attr in enumerate(schema_b)}
            shared_a = tuple(
                positions_a[attr] for attr in schema_b if attr in positions_a
            )
            shared_b = tuple(
                i for i, attr in enumerate(schema_b) if attr in positions_a
            )
            result_schema = tuple(sorted(set(schema_a) | set(schema_b)))
            sources = tuple(
                (True, positions_a[attr])
                if attr in positions_a
                else (False, positions_b[attr])
                for attr in result_schema
            )
            plan = (shared_a, shared_b, sources, result_schema)
            self._join_plans[cache_key] = plan
        return plan


_ZERO = RelationValue()
_ONE = RelationValue.scalar(1)
