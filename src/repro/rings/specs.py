"""Payload specifications: ring + lifting bundles for common applications.

A :class:`PayloadSpec` describes *what* a query maintains (counts, a single
sum, a COVAR matrix, an MI count matrix); :meth:`PayloadSpec.build` turns it
into a :class:`PayloadPlan` — the concrete ring plus one lifting function
per participating attribute — which the query layer and the engines consume.
This is the single switch the paper advertises: the view tree and the
maintenance code never change across applications, only the plan does.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import RingError
from repro.rings.base import Ring
from repro.rings.cofactor import CofactorLayout, GeneralCofactorRing, NumericCofactorRing
from repro.rings.lifting import (
    CONTINUOUS,
    Feature,
    LiftFunction,
    general_cofactor_lift,
    numeric_cofactor_lift,
)
from repro.rings.relational import RelationRing
from repro.rings.scalar import FloatRing, Z

__all__ = [
    "PayloadPlan",
    "PayloadSpec",
    "CountSpec",
    "SumSpec",
    "SumProductSpec",
    "CovarSpec",
    "MISpec",
]


@dataclass
class PayloadPlan:
    """A built payload specification.

    Attributes
    ----------
    ring:
        The payload ring all views carry.
    lifts:
        Lifting function per attribute; attributes absent from the map are
        lifted to ring one by the engine.
    layout:
        For cofactor rings, the attribute -> slot mapping (used by the ML
        extraction layer); ``None`` otherwise.
    features:
        The feature descriptions behind the plan, in layout order.
    """

    ring: Ring
    lifts: Dict[str, LiftFunction] = field(default_factory=dict)
    layout: Optional[CofactorLayout] = None
    features: Tuple[Feature, ...] = ()


class PayloadSpec(ABC):
    """Declarative description of the maintained aggregate batch."""

    @abstractmethod
    def build(self) -> PayloadPlan:
        """Materialize the ring and per-attribute lifting functions."""

    @property
    def lifted_attributes(self) -> Tuple[str, ...]:
        """Names of attributes this spec lifts (empty for counts)."""
        return ()


@dataclass(frozen=True)
class CountSpec(PayloadSpec):
    """``SUM(1)``: tuple multiplicities in Z (or a provided semiring)."""

    ring: Ring = Z

    def build(self) -> PayloadPlan:
        return PayloadPlan(ring=self.ring)


@dataclass(frozen=True)
class SumSpec(PayloadSpec):
    """A single ``SUM(expr(X))`` over floats for one attribute ``X``.

    The optional ``transform`` maps each attribute value before summation,
    default identity — e.g. ``SumSpec("price")`` maintains ``SUM(price)``.
    """

    attribute: str

    def build(self) -> PayloadPlan:
        ring = FloatRing()

        def lift(value) -> float:
            return float(value)

        # The payload IS the lifted scalar, so the columnar path can run
        # the transform column-wise (repro.data.columnar.lift_column).
        lift.bulk_scalar = lift
        return PayloadPlan(ring=ring, lifts={self.attribute: lift})

    @property
    def lifted_attributes(self) -> Tuple[str, ...]:
        return (self.attribute,)


@dataclass(frozen=True)
class SumProductSpec(PayloadSpec):
    """``SUM(X1^p1 * X2^p2 * ...)`` over floats.

    One scalar aggregate; the building block of the per-aggregate baseline
    engine, which maintains a COVAR matrix as many independent scalar views
    the way a system without compound rings must.
    """

    powers: Tuple[Tuple[str, int], ...]

    def __post_init__(self):
        names = [attr for attr, _power in self.powers]
        if len(set(names)) != len(names):
            raise RingError(f"duplicate attribute in SumProductSpec: {names}")
        for _attr, power in self.powers:
            if power < 1:
                raise RingError("SumProductSpec powers must be >= 1")

    def build(self) -> PayloadPlan:
        ring = FloatRing()
        lifts: Dict[str, LiftFunction] = {}
        for attr, power in self.powers:
            if power == 1:
                lift: LiftFunction = lambda value: float(value)  # noqa: E731
            else:
                lift = lambda value, _power=power: float(value) ** _power  # noqa: E731
            lift.bulk_scalar = lift
            lifts[attr] = lift
        return PayloadPlan(ring=ring, lifts=lifts)

    @property
    def lifted_attributes(self) -> Tuple[str, ...]:
        return tuple(attr for attr, _power in self.powers)


def _layout_of(features: Sequence[Feature]) -> CofactorLayout:
    return CofactorLayout(tuple(feature.name for feature in features))


@dataclass(frozen=True)
class CovarSpec(PayloadSpec):
    """The COVAR compound aggregate ``(c, s, Q)`` over the given features.

    ``backend`` selects the ring implementation:

    - ``"numeric"`` — numpy degree-m ring; requires all-continuous features;
    - ``"general"`` — generalized ring with relational values; supports a
      mix of continuous and categorical features (the paper's composition);
    - ``"general-float"`` — generalized ring over the float scalar ring;
      functionally identical to ``"numeric"`` but independently implemented,
      kept for cross-validation.

    ``backend="auto"`` picks ``"numeric"`` when every feature is continuous
    and ``"general"`` otherwise.
    """

    features: Tuple[Feature, ...]
    backend: str = "auto"

    def __post_init__(self):
        if not self.features:
            raise RingError("CovarSpec requires at least one feature")
        if self.backend not in ("auto", "numeric", "general", "general-float"):
            raise RingError(f"unknown CovarSpec backend {self.backend!r}")

    def _backend(self) -> str:
        if self.backend != "auto":
            return self.backend
        if any(feature.is_categorical for feature in self.features):
            return "general"
        return "numeric"

    def build(self) -> PayloadPlan:
        layout = _layout_of(self.features)
        backend = self._backend()
        if backend == "numeric":
            numeric_ring = NumericCofactorRing(layout)
            lifts = {
                feature.name: numeric_cofactor_lift(numeric_ring, feature)
                for feature in self.features
            }
            return PayloadPlan(numeric_ring, lifts, layout, tuple(self.features))
        scalar: Ring = RelationRing() if backend == "general" else FloatRing()
        ring = GeneralCofactorRing(scalar, layout)
        lifts = {
            feature.name: general_cofactor_lift(ring, feature)
            for feature in self.features
        }
        return PayloadPlan(ring, lifts, layout, tuple(self.features))

    @property
    def lifted_attributes(self) -> Tuple[str, ...]:
        return tuple(feature.name for feature in self.features)


@dataclass(frozen=True)
class MISpec(PayloadSpec):
    """Count aggregates for pairwise mutual information.

    Every feature is treated categorically: explicit categorical features
    pass through, continuous features must carry a :class:`Binning` (the
    paper: "we first discretize their values into bins of finite size").
    The maintained payload is the all-categorical COVAR — C_0, C_X and C_XY
    count relations — from which :mod:`repro.ml.mi` computes I(X, Y).
    """

    features: Tuple[Feature, ...]

    def __post_init__(self):
        if not self.features:
            raise RingError("MISpec requires at least one feature")
        for feature in self.features:
            if feature.kind == CONTINUOUS and feature.binning is None:
                raise RingError(
                    f"MI over continuous feature {feature.name!r} requires a "
                    "Binning (discretize into bins of finite size)"
                )

    def build(self) -> PayloadPlan:
        layout = _layout_of(self.features)
        ring = GeneralCofactorRing(RelationRing(), layout)
        lifts = {
            feature.name: general_cofactor_lift(ring, feature)
            for feature in self.features
        }
        return PayloadPlan(ring, lifts, layout, tuple(self.features))

    @property
    def lifted_attributes(self) -> Tuple[str, ...]:
        return tuple(feature.name for feature in self.features)
