"""Columnar (struct-of-arrays) form of batched Z-deltas.

A dict-of-tuples delta pays a Python object per key and per multiplicity;
a :class:`ColumnarDelta` holds the same batch as key *columns* plus one
contiguous ``int64`` multiplicity array. Two consumers want that layout:

- the columnar maintenance path of
  :class:`~repro.engine.fivm.FIVMEngine`, which runs the bulk ring
  kernels (:mod:`repro.rings.base`) over whole batches instead of tuple
  at a time;
- the sharded process backend, which pickles columns over the worker
  pipes far more compactly than a dict of key tuples.

Rows and columns are two views of the same batch; whichever the delta was
built from is stored and the other is derived lazily, at most once.
:func:`lift_column` is the bridge between the per-attribute lifting
closures of a payload plan and the bulk kernels: closures built by
:func:`~repro.rings.lifting.numeric_cofactor_lift` (and the scalar sum
specs) carry ``bulk_slot``/``bulk_scalar`` metadata describing how to
lift a whole value column in one kernel call.
"""

from __future__ import annotations

import pickle
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DataError
from repro.rings.base import Ring

__all__ = [
    "ColumnarDelta",
    "ColumnarBlocks",
    "column_array",
    "lift_column",
    "bulk_liftable",
    "decode_blocks",
    "block_views",
]

Key = Tuple


def column_array(values) -> np.ndarray:
    """One key column as a 1-d ndarray safe for gather and key round-trips.

    Numeric and boolean columns come back as typed arrays (so grouping
    can run through ``np.unique``); string columns stay string-typed
    only when every element really is a ``str`` — numpy would otherwise
    silently stringify mixed values. Everything else (mixed types,
    nested tuples, arbitrary objects) falls back to an object array,
    which preserves the original Python objects exactly, so keys built
    back from the column compare and hash like the originals.
    """
    if not isinstance(values, list):
        values = list(values)
    try:
        arr = np.asarray(values)
    except (ValueError, TypeError):
        arr = None
    if arr is not None and arr.ndim == 1:
        kind = arr.dtype.kind
        if kind in "iufb":
            return arr
        if kind in "US" and all(type(v) is str for v in values):
            return arr
    out = np.empty(len(values), dtype=object)
    try:
        out[:] = values
    except ValueError:
        # Sequence-valued elements confuse the bulk assignment.
        for i, value in enumerate(values):
            out[i] = value
    return out


class ColumnarDelta:
    """One per-relation update batch in columnar form.

    Parameters
    ----------
    schema:
        Attribute names of the key columns.
    counts:
        Signed multiplicities, one per row (``int64``).
    columns / rows:
        The key data, as per-attribute columns or as key tuples — at
        least one must be given; the other is derived on first access.
    """

    __slots__ = ("schema", "name", "counts", "_columns", "_rows")

    def __init__(
        self,
        schema: Tuple[str, ...],
        counts,
        columns: Optional[Tuple[List, ...]] = None,
        rows: Optional[List[Key]] = None,
        name: str = "",
    ):
        if columns is None and rows is None:
            raise DataError("ColumnarDelta needs columns or rows")
        self.schema = tuple(schema)
        self.name = name
        self.counts = np.asarray(counts, dtype=np.int64)
        if columns is not None:
            columns = tuple(list(column) for column in columns)
            if len(columns) != len(self.schema):
                raise DataError(
                    f"{len(columns)} columns do not match schema {self.schema!r}"
                )
            width = len(self.counts)
            for column in columns:
                if len(column) != width:
                    raise DataError(
                        f"column length {len(column)} does not match "
                        f"{width} multiplicities"
                    )
        elif len(rows) != len(self.counts):
            raise DataError(
                f"{len(rows)} rows do not match {len(self.counts)} multiplicities"
            )
        self._columns = columns
        self._rows = rows

    # ------------------------------------------------------------------

    @classmethod
    def from_relation(cls, delta) -> "ColumnarDelta":
        """Columnar view of a Z-delta relation (keys stay shared tuples)."""
        data = delta.data
        counts = np.fromiter(data.values(), dtype=np.int64, count=len(data))
        return cls(delta.schema, counts, rows=list(data.keys()), name=delta.name)

    @property
    def rows(self) -> List[Key]:
        """Key tuples, one per row (derived from columns on first use)."""
        rows = self._rows
        if rows is None:
            rows = self._rows = list(zip(*self._columns)) if self._columns else []
        return rows

    @property
    def columns(self) -> Tuple[List, ...]:
        """Per-attribute key columns (derived from rows on first use)."""
        columns = self._columns
        if columns is None:
            if self._rows:
                columns = tuple(list(column) for column in zip(*self._rows))
            else:
                columns = tuple([] for _ in self.schema)
            self._columns = columns
        return columns

    def column(self, position: int) -> List:
        """One key column by schema position."""
        columns = self._columns
        if columns is not None:
            return columns[position]
        return [row[position] for row in self.rows]

    def __len__(self) -> int:
        return len(self.counts)

    def update_count(self) -> int:
        """Total |multiplicity| — the number of single-tuple updates."""
        return int(np.abs(self.counts).sum())

    def transport(self) -> Tuple[Tuple[str, ...], Tuple[List, ...], List[int]]:
        """The picklable wire form ``(schema, columns, counts)``.

        Counts go over the wire as plain ints: small Python ints pickle
        in 2-3 bytes where int64 array elements cost 8, and batch
        multiplicities are almost always small. Measured on retailer
        batch-1000 streams the full wire form is ~20% smaller and ~2x
        faster to pickle than the dict-of-key-tuples form.
        """
        return self.schema, self.columns, self.counts.tolist()

    def to_relation(self):
        """Materialize the dict form (duplicate keys merge, zeros drop).

        The returned relation carries this columnar delta as its cached
        :meth:`~repro.data.relation.Relation.columnar` form, so a worker
        that rebuilt the dict from the wire does not re-derive columns.
        """
        from repro.data.relation import Relation  # cycle guard (cold path)

        relation = Relation(self.schema, name=self.name)
        data = relation.data
        for row, count in zip(self.rows, self.counts.tolist()):
            total = data.get(row, 0) + count
            if total:
                data[row] = total
            else:
                data.pop(row, None)
        if len(data) == len(self.counts):
            # No duplicate keys merged and no zeros dropped: this columnar
            # form matches the dict exactly, so cache it on the relation.
            relation._columnar = self
        return relation

    def to_blocks(self) -> "ColumnarBlocks":
        """Stage this delta for a shared-memory write.

        Typed columns (numeric, boolean, fixed-width string) become raw
        ndarray blocks copied bytewise into the segment; anything an
        ndarray cannot represent exactly (mixed types, tuples, arbitrary
        objects) falls back to one pickled blob per column. The counts
        array is always the first raw block. The staged form knows its
        total byte size *before* any segment is touched, so the sender
        can grow the ring first.
        """
        parts: List[Tuple[str, Optional[str], Any]] = []
        counts = np.ascontiguousarray(self.counts)
        parts.append(("raw", counts.dtype.str, counts))
        for position in range(len(self.schema)):
            values = self.column(position)
            arr = column_array(values)
            if arr.dtype.kind in "iufbUS":
                arr = np.ascontiguousarray(arr)
                parts.append(("raw", arr.dtype.str, arr))
            else:
                blob = pickle.dumps(
                    list(values), protocol=pickle.HIGHEST_PROTOCOL
                )
                parts.append(("pkl", None, blob))
        nbytes = sum(
            part[2].nbytes if part[0] == "raw" else len(part[2])
            for part in parts
        )
        return ColumnarBlocks(self.schema, len(self), parts, nbytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "ColumnarDelta"
        return f"<{label}({', '.join(self.schema)}) |{len(self)}| columnar>"


class ColumnarBlocks:
    """A :class:`ColumnarDelta` staged as flat byte blocks.

    The shared-memory wire form: :meth:`write_into` lays the blocks into
    a buffer back to back and returns a small picklable *layout* tuple —
    ``(row count, ((kind, dtype, offset, count, nbytes), ...))`` — which
    travels over the control pipe while the bytes stay in shared memory.
    :func:`decode_blocks` rebuilds the delta on the other side;
    :func:`block_views` exposes the raw blocks as zero-copy numpy views.
    """

    __slots__ = ("schema", "length", "parts", "nbytes")

    def __init__(self, schema, length, parts, nbytes):
        self.schema = tuple(schema)
        self.length = int(length)
        self.parts = parts
        self.nbytes = int(nbytes)

    def write_into(self, buf, offset: int):
        """Copy every block into ``buf`` starting at ``offset``.

        Raw blocks are written through a numpy view over the target
        buffer (one vectorized assignment, no intermediate pickle);
        pickled blobs are spliced bytewise. Returns the layout tuple.
        """
        entries = []
        position = int(offset)
        for kind, dtype, payload in self.parts:
            if kind == "raw":
                nbytes = payload.nbytes
                if nbytes:
                    target = np.frombuffer(
                        buf, dtype=payload.dtype, count=len(payload),
                        offset=position,
                    )
                    target[:] = payload
                entries.append((kind, dtype, position, len(payload), nbytes))
            else:
                nbytes = len(payload)
                buf[position:position + nbytes] = payload
                entries.append((kind, None, position, nbytes, nbytes))
            position += nbytes
        return (self.length, tuple(entries))


def decode_blocks(schema, buf, layout, name: str = "") -> ColumnarDelta:
    """Rebuild a :class:`ColumnarDelta` from blocks laid out in ``buf``.

    Everything is copied out of the buffer — the returned delta owns its
    data, so the sender may overwrite the slot the moment the caller
    acknowledges it. Typed columns round-trip through ``tolist`` so key
    values come back as the same plain Python objects the pipe wire form
    carries (bit-exact routing and grouping either way).
    """
    _length, entries = layout
    arrays = _block_values(buf, entries)
    counts = np.array(arrays[0], dtype=np.int64)
    columns = tuple(
        arr.tolist() if isinstance(arr, np.ndarray) else list(arr)
        for arr in arrays[1:]
    )
    return ColumnarDelta(schema, counts, columns=columns, name=name)


def block_views(buf, layout) -> List[Any]:
    """The blocks of a layout as views over ``buf`` — counts first.

    Raw blocks come back as numpy views *sharing memory* with ``buf``
    (the zero-copy read path); pickled blocks necessarily load into
    fresh lists. Callers must drop the views before the segment closes.
    """
    _length, entries = layout
    return _block_values(buf, entries)


def _block_values(buf, entries) -> List[Any]:
    values: List[Any] = []
    for kind, dtype, offset, count, nbytes in entries:
        if kind == "raw":
            values.append(
                np.frombuffer(buf, dtype=np.dtype(dtype), count=count,
                              offset=offset)
            )
        else:
            values.append(pickle.loads(bytes(buf[offset:offset + nbytes])))
    return values


# ----------------------------------------------------------------------
# Bulk lifting
# ----------------------------------------------------------------------


def bulk_liftable(fn) -> bool:
    """Whether a lifting closure carries bulk (column-wise) metadata."""
    return (
        getattr(fn, "bulk_slot", None) is not None
        or getattr(fn, "bulk_scalar", None) is not None
    )


def lift_column(ring: Ring, fn, values: Sequence[Any]):
    """Lift one attribute column into a payload block.

    ``fn`` is a lifting closure from a payload plan; its bulk metadata
    selects the kernel: ``bulk_slot`` routes through ``ring.lift_many``
    (cofactor rings), ``bulk_scalar`` packs the transformed column as the
    scalar block itself. Returns ``None`` for closures without metadata —
    the caller must fall back to the per-tuple path.
    """
    slot = getattr(fn, "bulk_slot", None)
    if slot is not None:
        transform = getattr(fn, "bulk_transform", None)
        if transform is not None:
            values = [transform(value) for value in values]
        return ring.lift_many(slot, values)
    scalar = getattr(fn, "bulk_scalar", None)
    if scalar is not None:
        return ring.make_block(scalar(value) for value in values)
    return None
