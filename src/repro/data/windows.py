"""Sliding and tumbling windows compiled to delayed retractions.

F-IVM's update model makes deletions first-class: a delete is a delta
with negative multiplicity flowing through exactly the same maintenance
path as an insert. That makes windowed semantics *free* at the engine
layer — a window is nothing but a promise to retract every event once it
ages out. :class:`WindowedStream` keeps that promise: it wraps a stream
of timed events and interleaves, at every window boundary, the negated
deltas of the events that just expired. The output is a plain
``(relation, row, ±step)`` event stream, so every engine — per-tuple,
columnar, fused, sharded over any transport — maintains the windowed
view without knowing windows exist, and bit-identically to a fresh batch
evaluation over exactly the live window.

Semantics
---------

- Event times are non-decreasing integers (default: the event index).
- Window boundaries sit at multiples of the slide ``S``; the window at
  boundary ``b`` covers event times ``[b - W, b)`` for size ``W``.
  Tumbling windows are the ``S == W`` special case.
- An event at time ``t`` therefore expires at boundary
  ``((t + W) // S + 1) * S`` — the first boundary whose window no longer
  contains ``t``.
- Processing an event at time ``t`` first fires every boundary ``<= t``
  (emitting the due retractions), then emits the event itself.
- The *initial database* is permanent: only streamed events age out.
  A windowed delete is itself an event — when it expires, the deleted
  tuple comes back (the retraction of a ``-1`` is a ``+1``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import DataError

__all__ = [
    "WindowSpec",
    "RetractionScheduler",
    "WindowedStream",
    "timed_events",
    "live_window_events",
]

#: A timed event: ``(relation, row, signed step, event time)``.
TimedEvent = Tuple[str, Tuple, int, int]
#: An engine-facing event: ``(relation, row, signed step)``.
Event = Tuple[str, Tuple, int]


@dataclass(frozen=True)
class WindowSpec:
    """A tumbling or sliding window over event time.

    ``size`` is the window width ``W``; ``slide`` is the boundary pitch
    ``S`` (``slide == size`` for tumbling windows). Both are positive
    integers in event-time units, with ``slide <= size`` so consecutive
    windows never leave gaps.
    """

    size: int
    slide: int

    def __post_init__(self):
        if not isinstance(self.size, int) or self.size < 1:
            raise DataError(f"window size must be a positive int, got {self.size!r}")
        if not isinstance(self.slide, int) or self.slide < 1:
            raise DataError(f"window slide must be a positive int, got {self.slide!r}")
        if self.slide > self.size:
            raise DataError(
                f"window slide {self.slide} exceeds size {self.size} — "
                "consecutive windows would leave gaps"
            )

    @property
    def kind(self) -> str:
        return "tumbling" if self.slide == self.size else "sliding"

    @classmethod
    def parse(cls, spec: str) -> "WindowSpec":
        """Parse ``"tumbling:SIZE"`` or ``"sliding:SIZE/SLIDE"``.

        The same spec strings :class:`~repro.config.EngineConfig` accepts
        for its ``window`` field and ``--engine-window`` on the CLI.
        """
        if not isinstance(spec, str) or ":" not in spec:
            raise DataError(
                f"bad window spec {spec!r}: expected 'tumbling:SIZE' or "
                "'sliding:SIZE/SLIDE'"
            )
        kind, _, tail = spec.partition(":")
        try:
            if kind == "tumbling":
                size = int(tail)
                slide = size
            elif kind == "sliding":
                size_s, _, slide_s = tail.partition("/")
                size = int(size_s)
                slide = int(slide_s) if slide_s else size
            else:
                raise DataError(
                    f"bad window kind {kind!r} in {spec!r}: expected "
                    "'tumbling' or 'sliding'"
                )
        except ValueError:
            raise DataError(
                f"bad window spec {spec!r}: sizes must be integers "
                "('tumbling:SIZE' or 'sliding:SIZE/SLIDE')"
            ) from None
        return cls(size, slide)

    def describe(self) -> str:
        if self.kind == "tumbling":
            return f"tumbling:{self.size}"
        return f"sliding:{self.size}/{self.slide}"

    def expiry(self, time: int) -> int:
        """The boundary at which an event at ``time`` leaves the window."""
        return ((time + self.size) // self.slide + 1) * self.slide

    def boundary(self, time: int) -> int:
        """The latest boundary at or before ``time``."""
        return (time // self.slide) * self.slide

    def bounds_at(self, boundary: int) -> Tuple[int, int]:
        """The half-open event-time interval ``[low, high)`` live at a boundary."""
        return boundary - self.size, boundary


class RetractionScheduler:
    """FIFO queue of pending retractions ordered by expiry boundary.

    Event times are non-decreasing and :meth:`WindowSpec.expiry` is
    monotone in time, so appending in arrival order keeps the queue
    sorted by expiry — :meth:`due` is a plain prefix pop.
    """

    __slots__ = ("_queue",)

    def __init__(self):
        self._queue: deque = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def schedule(self, expiry: int, name: str, row: Tuple, step: int) -> None:
        """Queue the retraction of one event (``step`` already negated)."""
        queue = self._queue
        if queue and expiry < queue[-1][0]:
            raise DataError(
                f"retraction scheduled out of order: expiry {expiry} after "
                f"{queue[-1][0]} — event times must be non-decreasing"
            )
        queue.append((expiry, name, row, step))

    def due(self, boundary: int) -> Iterator[Event]:
        """Pop and yield every retraction with expiry ``<= boundary``."""
        queue = self._queue
        while queue and queue[0][0] <= boundary:
            _, name, row, step = queue.popleft()
            yield name, row, step

    def pending(self) -> List[TimedEvent]:
        """The queued retractions as ``(name, row, step, expiry)`` (a copy)."""
        return [(name, row, step, expiry) for expiry, name, row, step in self._queue]


class WindowedStream:
    """Compile a timed event stream into windowed engine deltas.

    Wraps an iterable of timed events ``(relation, row, ±step, time)``
    (or untimed triples — the event index then serves as the time) and
    yields plain ``(relation, row, ±step)`` events in which every
    window boundary crossing interleaves the retractions of the events
    that just expired. Feeding the output to any engine's
    ``apply_stream`` — directly or through an :class:`UpdateBatcher` —
    maintains the windowed view exactly.

    Iterate lazily (``for event in stream``); :attr:`current_boundary`
    and :meth:`current_bounds` always describe the window the events
    yielded *so far* belong to, which is how serving snapshots pick up
    their window provenance.
    """

    def __init__(self, spec: WindowSpec, events: Iterable):
        if isinstance(spec, str):
            spec = WindowSpec.parse(spec)
        self.spec = spec
        self._events = events
        self._scheduler = RetractionScheduler()
        self.current_boundary = 0
        self._last_time: Optional[int] = None

    # ------------------------------------------------------------------

    def current_bounds(self) -> Tuple[int, int]:
        """Event-time interval ``[low, high)`` of the current live window."""
        return self.spec.bounds_at(self.current_boundary)

    def pending_retractions(self) -> int:
        """Events currently inside the window awaiting expiry."""
        return len(self._scheduler)

    @property
    def last_time(self) -> Optional[int]:
        """Time of the last event consumed (``None`` before the first)."""
        return self._last_time

    def _timed(self) -> Iterator[TimedEvent]:
        for index, event in enumerate(self._events):
            if len(event) == 4:
                name, row, step, time = event
            elif len(event) == 3:
                name, row, step = event
                time = index
            else:
                raise DataError(
                    f"windowed event must be (name, row, step[, time]), "
                    f"got arity {len(event)}"
                )
            if not isinstance(time, int):
                raise DataError(f"event time must be an int, got {time!r}")
            if self._last_time is not None and time < self._last_time:
                raise DataError(
                    f"event time went backwards ({time} after {self._last_time}) "
                    "— windowed streams need non-decreasing times"
                )
            self._last_time = time
            yield name, row, step, time

    def advance_to(self, boundary: int) -> Iterator[Event]:
        """Fire every window boundary up to ``boundary``, yielding retractions.

        Used internally before each event, and by callers that want the
        engine state aligned to an exact boundary (e.g. the equivalence
        tests evaluating state at every window advance).
        """
        boundary = self.spec.boundary(boundary)
        if boundary > self.current_boundary:
            self.current_boundary = boundary
            yield from self._scheduler.due(boundary)

    def __iter__(self) -> Iterator[Event]:
        spec = self.spec
        scheduler = self._scheduler
        for name, row, step, time in self._timed():
            yield from self.advance_to(time)
            yield name, row, step
            scheduler.schedule(spec.expiry(time), name, row, -step)


def timed_events(events: Iterable, start: int = 0) -> Iterator[TimedEvent]:
    """Stamp untimed ``(name, row, step)`` events with their index as time."""
    for index, (name, row, step) in enumerate(events, start):
        yield name, row, step, index


def live_window_events(
    events: Iterable, spec: WindowSpec, boundary: int,
    upto: Optional[int] = None,
) -> List[Event]:
    """The events live at ``boundary`` — the batch-evaluation reference.

    Filters a *timed* event list down to times in ``[boundary - size,
    boundary)``: replaying exactly these (plus the initial database)
    through a fresh engine must reproduce the windowed engine's state at
    the instant boundary ``boundary`` fired, bit for bit.

    A stream checked *after* consuming events past the boundary also
    holds the not-yet-expired tail (times in ``[boundary, upto]`` — their
    expiry lies beyond every boundary fired so far); pass the last
    consumed event time as ``upto`` to include it.
    """
    low, high = spec.bounds_at(boundary)
    if upto is not None:
        high = max(high, upto + 1)
    live: List[Event] = []
    for event in events:
        if len(event) != 4:
            raise DataError("live_window_events needs timed (name, row, step, time)")
        name, row, step, time = event
        if low <= time < high:
            live.append((name, row, step))
    return live
