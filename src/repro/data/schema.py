"""Relation and database schemas.

Schemas are deliberately light-weight: a relation schema is an ordered
tuple of attribute names plus a relation name. Attribute *types* only
matter at the lifting boundary (continuous vs categorical), which is the
feature layer's concern — the storage and join layers are type-agnostic,
exactly like the paper's key/payload model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

from repro.errors import SchemaError

__all__ = ["RelationSchema", "DatabaseSchema"]


@dataclass(frozen=True)
class RelationSchema:
    """Name and ordered attribute tuple of one relation."""

    name: str
    attributes: Tuple[str, ...]

    def __post_init__(self):
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        if not self.attributes:
            raise SchemaError(f"relation {self.name!r} needs at least one attribute")
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(
                f"relation {self.name!r} has duplicate attributes: {self.attributes!r}"
            )
        object.__setattr__(self, "attributes", tuple(self.attributes))

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def position(self, attr: str) -> int:
        """Index of ``attr`` in the schema."""
        try:
            return self.attributes.index(attr)
        except ValueError:
            raise SchemaError(
                f"attribute {attr!r} not in relation {self.name!r} {self.attributes!r}"
            ) from None

    def __contains__(self, attr: str) -> bool:
        return attr in self.attributes

    def __iter__(self):
        return iter(self.attributes)


@dataclass
class DatabaseSchema:
    """The schemas of all relations in a database, keyed by name."""

    relations: Dict[str, RelationSchema] = field(default_factory=dict)

    @classmethod
    def of(cls, schemas: Iterable[RelationSchema]) -> "DatabaseSchema":
        db = cls()
        for schema in schemas:
            db.add(schema)
        return db

    def add(self, schema: RelationSchema) -> None:
        if schema.name in self.relations:
            raise SchemaError(f"duplicate relation {schema.name!r}")
        self.relations[schema.name] = schema

    def schema(self, name: str) -> RelationSchema:
        try:
            return self.relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    @property
    def attributes(self) -> Tuple[str, ...]:
        """All attribute names across relations, in first-seen order."""
        seen = []
        for schema in self.relations.values():
            for attr in schema.attributes:
                if attr not in seen:
                    seen.append(attr)
        return tuple(seen)

    def relations_with(self, attr: str) -> Tuple[str, ...]:
        """Names of relations whose schema contains ``attr``."""
        return tuple(
            name for name, schema in self.relations.items() if attr in schema
        )

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __iter__(self):
        return iter(self.relations.values())
