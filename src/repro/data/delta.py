"""Helpers for building update deltas.

A delta is a Z-relation: keys map to signed multiplicities. These helpers
are convenience constructors; the engines accept any Z-:class:`Relation`.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.data.relation import Relation

__all__ = ["inserts", "deletes", "delta_of", "single", "split_delta", "tuple_events"]


def tuple_events(batches: Iterable[Tuple[str, Relation]]):
    """Decompose ``(name, delta)`` batches into single-tuple ``±1`` events.

    A key with multiplicity ``m`` yields ``|m|`` events of sign ``m`` —
    the canonical tuple-at-a-time form of a batched stream, consumed by
    :meth:`~repro.engine.base.MaintenanceEngine.apply_stream` and the
    ingestion benchmarks.
    """
    for name, delta in batches:
        for row, multiplicity in delta.data.items():
            step = 1 if multiplicity > 0 else -1
            for _ in range(abs(multiplicity)):
                yield name, row, step


def single(
    schema: Tuple[str, ...], row: Tuple, multiplicity: int = 1, name: str = ""
) -> Relation:
    """Single-tuple delta: one row with a signed multiplicity.

    The tuple-at-a-time baseline the batched pipeline is measured against;
    ``multiplicity=0`` yields an empty delta.
    """
    delta = Relation(schema, name=name)
    if multiplicity:
        delta.data[tuple(row)] = multiplicity
    return delta


def inserts(schema: Tuple[str, ...], rows: Iterable[Tuple], name: str = "") -> Relation:
    """Delta inserting each row once (duplicates accumulate)."""
    return Relation.from_tuples(schema, rows, name=name)


def deletes(schema: Tuple[str, ...], rows: Iterable[Tuple], name: str = "") -> Relation:
    """Delta deleting each row once."""
    return Relation.from_tuples(schema, rows, name=name).neg()


def delta_of(
    schema: Tuple[str, ...],
    inserted: Iterable[Tuple] = (),
    deleted: Iterable[Tuple] = (),
    name: str = "",
) -> Relation:
    """Mixed delta: inserts minus deletes in one relation."""
    delta = inserts(schema, inserted, name=name)
    delta.add_inplace(deletes(schema, deleted))
    return delta


def split_delta(delta: Relation) -> Tuple[Relation, Relation]:
    """Split a mixed delta into (inserts, deletes); both have >= 0 payloads."""
    ins = delta.empty_like()
    dels = delta.empty_like()
    for key, multiplicity in delta.data.items():
        if multiplicity > 0:
            ins.data[key] = multiplicity
        elif multiplicity < 0:
            dels.data[key] = -multiplicity
    return ins, dels
