"""Helpers for building update deltas.

A delta is a Z-relation: keys map to signed multiplicities. These helpers
are convenience constructors; the engines accept any Z-:class:`Relation`.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.data.relation import Relation

__all__ = ["inserts", "deletes", "delta_of", "split_delta"]


def inserts(schema: Tuple[str, ...], rows: Iterable[Tuple], name: str = "") -> Relation:
    """Delta inserting each row once (duplicates accumulate)."""
    return Relation.from_tuples(schema, rows, name=name)


def deletes(schema: Tuple[str, ...], rows: Iterable[Tuple], name: str = "") -> Relation:
    """Delta deleting each row once."""
    return Relation.from_tuples(schema, rows, name=name).neg()


def delta_of(
    schema: Tuple[str, ...],
    inserted: Iterable[Tuple] = (),
    deleted: Iterable[Tuple] = (),
    name: str = "",
) -> Relation:
    """Mixed delta: inserts minus deletes in one relation."""
    delta = inserts(schema, inserted, name=name)
    delta.add_inplace(deletes(schema, deleted))
    return delta


def split_delta(delta: Relation) -> Tuple[Relation, Relation]:
    """Split a mixed delta into (inserts, deletes); both have >= 0 payloads."""
    ins = delta.empty_like()
    dels = delta.empty_like()
    for key, multiplicity in delta.data.items():
        if multiplicity > 0:
            ins.data[key] = multiplicity
        elif multiplicity < 0:
            dels.data[key] = -multiplicity
    return ins, dels
