"""Hash-partitioning relations and delta streams across engine shards.

Multi-core ingestion runs one maintenance engine per *shard*, each owning
a horizontal slice of the database. The slicing must make the query
result additive across shards: since a natural join is multilinear in its
relations, ``sum_s Q(shard_s) == Q(full)`` holds exactly when every pair
of *partitioned* relations placed in different shards joins to nothing.
:class:`ShardRouter` guarantees that by hashing on a set of *shard
attributes* shared by all partitioned relations — the natural join
equates those attributes, so tuples landing in different shards can never
join. Relations missing a shard attribute are *broadcast* (replicated to
every shard), which multilinearity likewise keeps exact as long as at
least one relation is partitioned.

The shard attributes themselves come from the view tree's static
structure (:func:`repro.viewtree.build_shard_plan`); this module is the
data-plane half: stable hashing, delta splitting, and database
partitioning.
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.data.columnar import ColumnarDelta
from repro.data.database import Database
from repro.data.relation import Relation
from repro.errors import DataError

__all__ = ["ShardRouter", "shard_hash"]

_FNV_OFFSET = 0x811C9DC5
_FNV_PRIME = 0x01000193
_MASK32 = 0xFFFFFFFF


def shard_hash(values: Tuple) -> int:
    """Deterministic 32-bit hash of a tuple of key values.

    Python's builtin ``hash`` is salted per process for strings, so it
    cannot route consistently between a coordinator and forked workers or
    across runs. This FNV-1a fold is stable everywhere: ints hash by
    value, floats by their IEEE bytes, anything else by the CRC of its
    ``str`` form.
    """
    h = _FNV_OFFSET
    for value in values:
        if isinstance(value, int):
            word = value & _MASK32
        elif isinstance(value, float):
            # Keys equal under == must route identically: dict keys treat
            # 1 and 1.0 as the same entry, so integral floats take the
            # int path (a delete carrying 1.0 must follow an insert of 1).
            if value.is_integer():
                word = int(value) & _MASK32
            else:
                word = zlib.crc32(struct.pack("<d", value))
        else:
            word = zlib.crc32(str(value).encode("utf-8"))
        h = ((h ^ word) * _FNV_PRIME) & _MASK32
    return h


class ShardRouter:
    """Route per-relation deltas (and the initial database) to shards.

    Parameters
    ----------
    schemas:
        ``relation name -> attribute tuple`` for every relation of the
        query.
    attrs:
        The shard attributes. A relation whose schema contains *all* of
        them is **routed** (hash-partitioned on their values); any other
        relation is **broadcast** to every shard.
    shards:
        Number of shards (>= 1).

    Notes
    -----
    Routing is a pure function of the row content, so a delete is always
    routed to the shard that received the matching insert, and replaying
    a stream yields the same placement run after run.
    """

    def __init__(
        self,
        schemas: Mapping[str, Sequence[str]],
        attrs: Sequence[str],
        shards: int,
    ):
        if shards < 1:
            raise DataError("shards must be at least 1")
        self.attrs = tuple(attrs)
        if not self.attrs:
            raise DataError("shard attributes must be non-empty")
        if len(set(self.attrs)) != len(self.attrs):
            raise DataError(f"duplicate shard attribute in {self.attrs!r}")
        self.shards = int(shards)
        self.schemas: Dict[str, Tuple[str, ...]] = {
            name: tuple(schema) for name, schema in schemas.items()
        }
        #: relation -> positions of the shard attrs, or None for broadcast.
        self._positions: Dict[str, Optional[Tuple[int, ...]]] = {}
        for name, schema in self.schemas.items():
            if all(attr in schema for attr in self.attrs):
                self._positions[name] = tuple(
                    schema.index(attr) for attr in self.attrs
                )
            else:
                self._positions[name] = None
        self.routed: Tuple[str, ...] = tuple(
            name for name, pos in self._positions.items() if pos is not None
        )
        self.broadcast: Tuple[str, ...] = tuple(
            name for name, pos in self._positions.items() if pos is None
        )
        if not self.routed:
            raise DataError(
                f"shard attributes {self.attrs!r} partition no relation; "
                "every shard would replicate the whole database"
            )

    # ------------------------------------------------------------------

    def is_routed(self, relation: str) -> bool:
        return self._positions_of(relation) is not None

    def shard_of(self, relation: str, row: Tuple) -> Optional[int]:
        """Shard index of one row, or ``None`` for a broadcast relation."""
        positions = self._positions_of(relation)
        if positions is None:
            return None
        return shard_hash(tuple(row[i] for i in positions)) % self.shards

    def split(
        self, relation: str, delta: Relation
    ) -> List[Tuple[int, Relation]]:
        """Split a delta into ``(shard, sub-delta)`` pairs.

        Routed relations hash-partition entry by entry (empty shards are
        omitted); broadcast relations return the *same* delta object for
        every shard — engines treat deltas as read-only, and the process
        backend serializes per shard anyway.
        """
        positions = self._positions_of(relation)
        if positions is None:
            return [(shard, delta) for shard in range(self.shards)]
        if self.shards == 1:
            return [(0, delta)] if delta.data else []
        parts: Dict[int, Relation] = {}
        for key, multiplicity in delta.data.items():
            shard = shard_hash(tuple(key[i] for i in positions)) % self.shards
            sub = parts.get(shard)
            if sub is None:
                sub = parts[shard] = delta.empty_like()
            sub.data[key] = multiplicity
        return sorted(parts.items())

    def split_columnar(
        self, relation: str, delta: ColumnarDelta
    ) -> List[Tuple[int, ColumnarDelta]]:
        """Split a columnar delta into ``(shard, sub-delta)`` pairs.

        The columnar counterpart of :meth:`split`, used by the process
        backend's data planes (columnar pipe wire and shared-memory
        rings): rows route with the same stable hash (so deletes keep
        following inserts regardless of wire form), but the hash reads
        straight off the shard-attribute *columns* and the per-shard
        slices are taken column-wise — no per-row key tuple is ever
        materialized on the coordinator. Broadcast relations return the
        same delta object for every shard.
        """
        positions = self._positions_of(relation)
        if positions is None:
            return [(shard, delta) for shard in range(self.shards)]
        if self.shards == 1:
            return [(0, delta)] if len(delta) else []
        shards = self.shards
        if len(positions) == 1:
            hooks = ((value,) for value in delta.column(positions[0]))
        else:
            hooks = zip(*(delta.column(j) for j in positions))
        members: Dict[int, List[int]] = {}
        for i, hook in enumerate(hooks):
            shard = shard_hash(hook) % shards
            group = members.get(shard)
            if group is None:
                members[shard] = [i]
            else:
                group.append(i)
        counts = delta.counts
        columns = delta.columns
        parts: List[Tuple[int, ColumnarDelta]] = []
        for shard, picks in sorted(members.items()):
            idx = np.asarray(picks, dtype=np.intp)
            parts.append(
                (
                    shard,
                    ColumnarDelta(
                        delta.schema,
                        counts[idx],
                        columns=tuple(
                            [column[i] for i in picks] for column in columns
                        ),
                        name=delta.name,
                    ),
                )
            )
        return parts

    def partition_database(self, database: Database) -> List[Database]:
        """Per-shard databases: routed relations sliced, broadcast copied.

        The slices of a routed relation are disjoint and their union is
        the original; broadcast relations are independent copies so a
        worker mutating its replica cannot alias another shard's.
        """
        shards: List[List[Relation]] = [[] for _ in range(self.shards)]
        for name in self.schemas:
            relation = database.relation(name)
            positions = self._positions_of(name)
            if positions is None:
                for shard in range(self.shards):
                    shards[shard].append(relation.copy())
                continue
            slices = [relation.empty_like() for _ in range(self.shards)]
            for key, payload in relation.data.items():
                shard = shard_hash(tuple(key[i] for i in positions)) % self.shards
                slices[shard].data[key] = payload
            for shard in range(self.shards):
                shards[shard].append(slices[shard])
        return [Database(relations) for relations in shards]

    # ------------------------------------------------------------------

    def _positions_of(self, relation: str) -> Optional[Tuple[int, ...]]:
        try:
            return self._positions[relation]
        except KeyError:
            raise DataError(
                f"unknown relation {relation!r}; router knows {tuple(self.schemas)}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ShardRouter on {self.attrs!r} x{self.shards} "
            f"routed={self.routed!r} broadcast={self.broadcast!r}>"
        )
