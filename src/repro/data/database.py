"""Databases: named collections of base relations plus delta application.

Base relations always carry integer multiplicities (the Z ring); an update
is itself a relation whose payloads are positive (inserts) or negative
(deletes) multiplicities — Section 2's "update δR may consist of both
inserts and deletes".
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.data.relation import Relation
from repro.data.schema import DatabaseSchema, RelationSchema
from repro.errors import DataError, SchemaError

__all__ = ["Database"]


class Database:
    """A mutable set of base relations keyed by name."""

    def __init__(self, relations: Optional[Iterable[Relation]] = None):
        self.relations: Dict[str, Relation] = {}
        if relations:
            for relation in relations:
                self.add(relation)

    @classmethod
    def from_dict(cls, relations: Dict[str, Relation]) -> "Database":
        db = cls()
        for name, relation in relations.items():
            if relation.name and relation.name != name:
                raise SchemaError(
                    f"relation name {relation.name!r} disagrees with key {name!r}"
                )
            relation.name = name
            db.add(relation)
        return db

    def add(self, relation: Relation) -> None:
        if not relation.name:
            raise SchemaError("database relations must be named")
        if relation.name in self.relations:
            raise SchemaError(f"duplicate relation {relation.name!r}")
        self.relations[relation.name] = relation

    def relation(self, name: str) -> Relation:
        try:
            return self.relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __iter__(self):
        return iter(self.relations.values())

    def __len__(self) -> int:
        return len(self.relations)

    @property
    def schema(self) -> DatabaseSchema:
        return DatabaseSchema.of(
            RelationSchema(relation.name, relation.schema) for relation in self
        )

    def copy(self) -> "Database":
        """Independent copy (relation data dicts are copied)."""
        return Database(relation.copy() for relation in self)

    def apply(self, name: str, delta: Relation) -> None:
        """Apply a delta (signed multiplicities) to a base relation.

        Raises :class:`DataError` if a delete drives any multiplicity
        negative — the stream generators never do, and catching it here
        converts silent corruption into a loud failure.
        """
        relation = self.relation(name)
        if relation.schema != delta.schema:
            raise SchemaError(
                f"delta schema {delta.schema!r} does not match "
                f"{name!r} {relation.schema!r}"
            )
        relation.add_inplace(delta)
        for key, multiplicity in delta.data.items():
            if multiplicity < 0 and relation.data.get(key, 0) < 0:
                raise DataError(
                    f"delete drove multiplicity of {key!r} in {name!r} below zero"
                )

    def total_tuples(self) -> int:
        """Total multiplicity across all base relations."""
        return sum(
            sum(relation.data.values()) for relation in self
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{r.name}|{len(r.data)}|" for r in self)
        return f"<Database {parts}>"
