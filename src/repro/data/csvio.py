"""CSV import/export for base relations.

The demo drives F-IVM from the Retailer and Favorita CSV dumps; this module
provides the equivalent ingestion path for our synthetic datasets, so the
examples can round-trip through files the way the original system does.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

from repro.data.relation import Relation
from repro.errors import DataError

__all__ = ["load_relation", "save_relation"]

PathLike = Union[str, Path]


def load_relation(
    path: PathLike,
    schema: Tuple[str, ...],
    types: Optional[Sequence[Callable]] = None,
    name: str = "",
    delimiter: str = ",",
    header: bool = True,
) -> Relation:
    """Read a CSV file into a Z-relation.

    ``types`` gives one converter per column (default: ``str`` for all).
    Rows repeated in the file accumulate multiplicity, matching the bag
    semantics of base relations.
    """
    converters = list(types) if types is not None else [str] * len(schema)
    if len(converters) != len(schema):
        raise DataError(
            f"{len(converters)} converters for {len(schema)} columns"
        )
    relation = Relation(schema, name=name)
    data = relation.data
    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        if header:
            next(reader, None)
        for lineno, row in enumerate(reader, start=2 if header else 1):
            if not row:
                continue
            if len(row) != len(schema):
                raise DataError(
                    f"{path}:{lineno}: expected {len(schema)} fields, got {len(row)}"
                )
            try:
                key = tuple(convert(field) for convert, field in zip(converters, row))
            except ValueError as exc:
                raise DataError(f"{path}:{lineno}: {exc}") from None
            data[key] = data.get(key, 0) + 1
    return relation


def save_relation(relation: Relation, path: PathLike, delimiter: str = ",") -> None:
    """Write a Z-relation to CSV, repeating rows by multiplicity."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(relation.schema)
        for key, multiplicity in sorted(relation.data.items(), key=repr):
            if multiplicity < 0:
                raise DataError(
                    f"cannot serialize negative multiplicity for {key!r}"
                )
            for _ in range(multiplicity):
                writer.writerow(key)


def load_database_dir(
    directory: PathLike,
    schemas: Dict[str, Tuple[str, ...]],
    types: Optional[Dict[str, Sequence[Callable]]] = None,
) -> Dict[str, Relation]:
    """Load ``<directory>/<name>.csv`` for every schema entry."""
    directory = Path(directory)
    types = types or {}
    return {
        name: load_relation(
            directory / f"{name}.csv", schema, types.get(name), name=name
        )
        for name, schema in schemas.items()
    }
