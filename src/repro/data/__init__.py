"""Relations, schemas, databases, deltas and batching (the storage layer)."""

from repro.data.batcher import UpdateBatcher, batch_events
from repro.data.columnar import ColumnarDelta, bulk_liftable, lift_column
from repro.data.database import Database
from repro.data.delta import (
    delta_of,
    deletes,
    inserts,
    single,
    split_delta,
    tuple_events,
)
from repro.data.index import IndexedRelation, RelationIndex
from repro.data.relation import Relation
from repro.data.schema import DatabaseSchema, RelationSchema
from repro.data.sharding import ShardRouter, shard_hash
from repro.data.windows import (
    RetractionScheduler,
    WindowedStream,
    WindowSpec,
    live_window_events,
    timed_events,
)

__all__ = [
    "ColumnarDelta",
    "bulk_liftable",
    "lift_column",
    "Database",
    "Relation",
    "RelationIndex",
    "IndexedRelation",
    "DatabaseSchema",
    "RelationSchema",
    "UpdateBatcher",
    "batch_events",
    "ShardRouter",
    "shard_hash",
    "inserts",
    "deletes",
    "delta_of",
    "single",
    "split_delta",
    "tuple_events",
    "WindowSpec",
    "WindowedStream",
    "RetractionScheduler",
    "timed_events",
    "live_window_events",
]
