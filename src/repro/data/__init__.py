"""Relations, schemas, databases and deltas (the storage layer)."""

from repro.data.database import Database
from repro.data.delta import delta_of, deletes, inserts, split_delta
from repro.data.relation import Relation
from repro.data.schema import DatabaseSchema, RelationSchema

__all__ = [
    "Database",
    "Relation",
    "DatabaseSchema",
    "RelationSchema",
    "inserts",
    "deletes",
    "delta_of",
    "split_delta",
]
