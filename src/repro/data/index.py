"""Persistent hash indexes over relations (the view-index subsystem).

F-IVM's complexity claim — an update costs O(|delta| x matching sibling
entries) along one leaf-to-root path — needs the materialized sibling
views to be *permanently* indexed on the attributes the maintenance
triggers probe. :class:`RelationIndex` is that index: a hash map from a
projection of the key (the "hook") to the bucket of live entries sharing
it. :class:`IndexedRelation` is a :class:`~repro.data.relation.Relation`
that carries any number of such indexes and keeps them consistent through
:meth:`~repro.data.relation.Relation.add_inplace`, the only mutation the
engines perform on materialized views.

Buckets hold ``key -> payload`` entries, so a probe iterates matches
without touching the relation's main dict, and a delete that cancels the
last entry of a bucket removes the bucket itself — index memory tracks
live data exactly as view memory does.

Each built index can additionally carry a :class:`ColumnarMirror` — a
columnar snapshot of its buckets (key columns + one payload block +
per-hook slot ranges) used by the fused maintenance kernels
(:mod:`repro.engine.compile`) to gather sibling matches with
``ring.take`` instead of a per-match Python loop. Mirrors follow a
strict invalidate-on-write discipline: *every* mutation path (``build``,
``set``, ``discard``, and both inlined ``add_inplace`` variants) drops
the mirror, and it is rebuilt lazily on the next probe.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

import repro.data.relation as relation_module
from repro.data.columnar import column_array
from repro.data.relation import Relation, _hook_getter, _positions
from repro.errors import DataError

__all__ = ["ColumnarMirror", "RelationIndex", "IndexedRelation"]

Key = Tuple


class ColumnarMirror:
    """Columnar snapshot of one index: key columns + payload block + buckets.

    ``key_cols[p]`` is the indexed relation's ``p``-th key attribute as a
    column array over all live entries and ``block`` the matching payload
    block. Buckets are described positionally: bucket ``b`` occupies the
    contiguous slot range ``starts[b] : starts[b] + counts[b]`` and its
    hook value is ``tuple(col[b] for col in hook_cols)`` (one column per
    index attribute, so probes can match hooks numerically instead of
    hashing Python tuples). Entries appear in exactly the order
    ``bucket.items()`` yields them, so a fused probe that gathers a
    bucket's slots reproduces the interpreted probe's emission order bit
    for bit. Payloads are *copied* into the block at build time; a
    mirror never aliases live view payloads, and any mutation of the
    owning index invalidates it wholesale.
    """

    __slots__ = ("block", "key_cols", "hook_cols", "starts", "counts", "match")

    def __init__(self, block, key_cols, hook_cols, starts, counts):
        self.block = block
        self.key_cols = key_cols
        self.hook_cols = hook_cols
        self.starts = starts
        self.counts = counts
        #: Lazily built hook-matching structure (owned by the fused
        #: probe); dies with the mirror on invalidation.
        self.match = None


class RelationIndex:
    """Hash index from a key projection to the bucket of matching entries.

    Parameters
    ----------
    schema:
        The indexed relation's key schema.
    attrs:
        Attributes the index hashes on, a subset of ``schema``. The hook
        of a key is its projection onto ``attrs`` in this order (a bare
        scalar when unary, mirroring the join hot paths). ``attrs`` may
        be empty: every entry then lives in one bucket, which is how a
        sibling with no shared attributes (a cartesian step) is probed.
    """

    __slots__ = (
        "attrs", "positions", "hook_of", "buckets", "probes", "hits", "mirror",
    )

    def __init__(self, schema: Tuple[str, ...], attrs: Iterable[str]):
        self.attrs = tuple(attrs)
        if len(set(self.attrs)) != len(self.attrs):
            raise DataError(f"duplicate attribute in index attrs {self.attrs!r}")
        self.positions = _positions(tuple(schema), self.attrs)
        self.hook_of = _hook_getter(self.positions)
        self.buckets: Dict[Any, Dict[Key, Any]] = {}
        #: Probe-side counters (filled by ``Relation.join_probe``).
        self.probes = 0
        self.hits = 0
        #: Lazily built columnar snapshot; None whenever stale.
        self.mirror: Optional[ColumnarMirror] = None

    # ------------------------------------------------------------------

    def build(self, data: Mapping[Key, Any]) -> "RelationIndex":
        """(Re)populate the index from a relation's live entries."""
        hook_of = self.hook_of
        buckets: Dict[Any, Dict[Key, Any]] = {}
        for key, payload in data.items():
            hook = hook_of(key)
            bucket = buckets.get(hook)
            if bucket is None:
                buckets[hook] = {key: payload}
            else:
                bucket[key] = payload
        self.buckets = buckets
        self.mirror = None
        return self

    def set(self, key: Key, payload: Any) -> None:
        """Insert or refresh one live entry."""
        self.mirror = None
        hook = self.hook_of(key)
        bucket = self.buckets.get(hook)
        if bucket is None:
            self.buckets[hook] = {key: payload}
        else:
            bucket[key] = payload

    def discard(self, key: Key) -> None:
        """Remove one entry; the bucket vanishes when it empties."""
        self.mirror = None
        hook = self.hook_of(key)
        bucket = self.buckets.get(hook)
        if bucket is not None:
            bucket.pop(key, None)
            if not bucket:
                del self.buckets[hook]

    def columnar_mirror(self, ring, arity: int) -> ColumnarMirror:
        """The columnar snapshot of this index, (re)built if stale.

        Buckets are walked in dict order and each bucket's entries laid
        out contiguously, so every hook's slot range is a single slice
        and slice order equals ``bucket.items()`` order — the property
        the fused probe's bit-equality argument rests on. ``arity`` is
        the indexed relation's key width (needed for the empty case).
        """
        mirror = self.mirror
        if mirror is None:
            buckets = self.buckets
            payloads: list = []
            keys: list = []
            starts = np.empty(len(buckets), dtype=np.intp)
            counts = np.empty(len(buckets), dtype=np.intp)
            for b, bucket in enumerate(buckets.values()):
                starts[b] = len(payloads)
                counts[b] = len(bucket)
                payloads.extend(bucket.values())
                keys.extend(bucket.keys())
            if keys:
                key_cols = tuple(
                    column_array(list(col)) for col in zip(*keys)
                )
            else:
                key_cols = tuple(column_array([]) for _ in range(arity))
            positions = self.positions
            if not positions:
                hook_cols: Tuple = ()
            elif len(positions) == 1:
                hook_cols = (column_array(list(buckets.keys())),)
            elif buckets:
                hook_cols = tuple(
                    column_array(list(col)) for col in zip(*buckets.keys())
                )
            else:
                hook_cols = tuple(column_array([]) for _ in positions)
            mirror = self.mirror = ColumnarMirror(
                ring.make_block(payloads), key_cols, hook_cols, starts, counts
            )
        return mirror

    def get(self, hook: Any) -> Optional[Dict[Key, Any]]:
        """Bucket of entries whose keys project to ``hook`` (None if empty)."""
        return self.buckets.get(hook)

    # ------------------------------------------------------------------

    def entry_count(self) -> int:
        """Live entries across all buckets (equals the relation's size)."""
        return sum(len(bucket) for bucket in self.buckets.values())

    def bucket_count(self) -> int:
        return len(self.buckets)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<RelationIndex on {self.attrs!r} "
            f"|{self.bucket_count()} buckets, {self.entry_count()} entries|>"
        )


class IndexedRelation(Relation):
    """A relation carrying persistent indexes kept consistent on mutation.

    The engines mutate materialized views exclusively through
    :meth:`add_inplace`; this subclass folds index maintenance into that
    call, so an indexed view costs one extra dict write per index per
    changed key — never a rebuild. ``copy``/``empty_like`` intentionally
    return plain (unindexed) relations: indexes belong to the long-lived
    materialization, not to transient deltas derived from it.

    Indexes materialize *lazily*: :meth:`register_index` only records
    that an attribute tuple may be probed, and :meth:`ensure_index`
    builds the hash map the first time a maintenance path actually
    probes it. A view that is updated but never probed (e.g. a leaf view
    whose sibling relation receives no updates) therefore pays no index
    maintenance at all — only *built* indexes are folded into
    :meth:`add_inplace`.
    """

    __slots__ = ("indexes", "pending")

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: Built (live) indexes, maintained through every mutation.
        self.indexes: Dict[Tuple[str, ...], RelationIndex] = {}
        #: Registered attribute tuples whose index is not built yet.
        self.pending: set = set()

    @classmethod
    def from_relation(cls, relation: Relation) -> "IndexedRelation":
        """Adopt ``relation``'s entries (shared dict, no copy) as indexed."""
        indexed = cls(relation.schema, relation.ring, name=relation.name)
        indexed.data = relation.data
        return indexed

    # ------------------------------------------------------------------

    def register_index(self, attrs: Iterable[str]) -> None:
        """Declare that ``attrs`` may be probed, without building yet."""
        attrs = tuple(attrs)
        if attrs not in self.indexes:
            self.pending.add(attrs)

    def add_index(self, attrs: Iterable[str]) -> RelationIndex:
        """Create (or return the existing) index on ``attrs``, built now."""
        attrs = tuple(attrs)
        index = self.indexes.get(attrs)
        if index is None:
            index = RelationIndex(self.schema, attrs).build(self.data)
            self.indexes[attrs] = index
            self.pending.discard(attrs)
        return index

    def ensure_index(self, attrs: Iterable[str]) -> RelationIndex:
        """The index on ``attrs``, materialized on first use.

        This is the probe-side entry point: registered-but-unbuilt
        indexes are built from the live entries here, and from then on
        maintained incrementally by :meth:`add_inplace`.
        """
        return self.indexes.get(tuple(attrs)) or self.add_index(attrs)

    def index_on(self, attrs: Iterable[str]) -> RelationIndex:
        """The index on exactly ``attrs``; raises if it was never built."""
        try:
            return self.indexes[tuple(attrs)]
        except KeyError:
            raise DataError(
                f"no index on {tuple(attrs)!r} for relation {self.name!r} "
                f"(built {sorted(self.indexes)!r}, "
                f"pending {sorted(self.pending)!r})"
            ) from None

    # ------------------------------------------------------------------

    def add_inplace(self, other: Relation) -> "IndexedRelation":
        """Union with payload addition, updating every index in the same pass."""
        indexes = tuple(self.indexes.values())
        if not indexes:
            super().add_inplace(other)
            return self
        self._check_compatible(other)
        # Regression guard: this branch bypasses Relation.add_inplace, so it
        # must drop the cached columnar form and every index mirror itself —
        # a stale mirror served to a fused probe would echo pre-update state.
        self._columnar = None
        for index in indexes:
            index.mirror = None
        ring = self.ring
        data = self.data
        # Inlined index writes: one (hook_of, buckets) pair per index saves
        # a method call per index per changed key — index maintenance is
        # the dominant per-update cost of the indexed path at large batches.
        index_ops = tuple((index.hook_of, index.buckets) for index in indexes)
        if relation_module.SCALAR_FASTPATH and ring.is_scalar:
            for key, payload in other.data.items():
                existing = data.get(key)
                total = payload if existing is None else existing + payload
                if total:
                    data[key] = total
                    for hook_of, buckets in index_ops:
                        hook = hook_of(key)
                        bucket = buckets.get(hook)
                        if bucket is None:
                            buckets[hook] = {key: total}
                        else:
                            bucket[key] = total
                elif existing is not None:
                    del data[key]
                    for hook_of, buckets in index_ops:
                        hook = hook_of(key)
                        bucket = buckets.get(hook)
                        if bucket is not None:
                            bucket.pop(key, None)
                            if not bucket:
                                del buckets[hook]
            return self
        is_zero = ring.is_zero
        add = ring.add
        for key, payload in other.data.items():
            existing = data.get(key)
            if existing is None:
                # Mirror Relation.add_inplace: never park ring-zero payloads.
                if not is_zero(payload):
                    data[key] = payload
                    for index in indexes:
                        index.set(key, payload)
            else:
                total = add(existing, payload)
                if is_zero(total):
                    del data[key]
                    for index in indexes:
                        index.discard(key)
                else:
                    data[key] = total
                    for index in indexes:
                        index.set(key, total)
        return self

    def add_block_inplace(self, keys, block) -> "IndexedRelation":
        """Columnar scatter with index maintenance in the same pass."""
        indexes = tuple(self.indexes.values())
        if not indexes:
            super().add_block_inplace(keys, block)
            return self
        self._columnar = None
        for index in indexes:
            index.mirror = None
        ring = self.ring
        data = self.data
        index_ops = tuple((index.hook_of, index.buckets) for index in indexes)
        scalar = relation_module.SCALAR_FASTPATH and ring.is_scalar
        if not scalar and ring.has_bulk_kernels:
            if not isinstance(keys, list):
                keys = list(keys)
            # Same duplicate-key guard as Relation.add_block_inplace: the
            # two-phase merge resolves every key once.
            if len(set(keys)) == len(keys):
                return self._merge_block(keys, block, index_ops)
        add = ring.add
        is_zero = ring.is_zero
        for key, payload in zip(keys, ring.block_payloads(block)):
            existing = data.get(key)
            if existing is None:
                if scalar:
                    if not payload:
                        continue
                    total = payload
                elif is_zero(payload):
                    continue
                else:
                    total = payload
            else:
                total = existing + payload if scalar else add(existing, payload)
                if (not total) if scalar else is_zero(total):
                    del data[key]
                    for hook_of, buckets in index_ops:
                        hook = hook_of(key)
                        bucket = buckets.get(hook)
                        if bucket is not None:
                            bucket.pop(key, None)
                            if not bucket:
                                del buckets[hook]
                    continue
            data[key] = total
            for hook_of, buckets in index_ops:
                hook = hook_of(key)
                bucket = buckets.get(hook)
                if bucket is None:
                    buckets[hook] = {key: total}
                else:
                    bucket[key] = total
        return self
