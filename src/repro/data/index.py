"""Persistent hash indexes over relations (the view-index subsystem).

F-IVM's complexity claim — an update costs O(|delta| x matching sibling
entries) along one leaf-to-root path — needs the materialized sibling
views to be *permanently* indexed on the attributes the maintenance
triggers probe. :class:`RelationIndex` is that index: a hash map from a
projection of the key (the "hook") to the bucket of live entries sharing
it. :class:`IndexedRelation` is a :class:`~repro.data.relation.Relation`
that carries any number of such indexes and keeps them consistent through
:meth:`~repro.data.relation.Relation.add_inplace`, the only mutation the
engines perform on materialized views.

Buckets hold ``key -> payload`` entries, so a probe iterates matches
without touching the relation's main dict, and a delete that cancels the
last entry of a bucket removes the bucket itself — index memory tracks
live data exactly as view memory does.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

import repro.data.relation as relation_module
from repro.data.relation import Relation, _hook_getter, _positions
from repro.errors import DataError

__all__ = ["RelationIndex", "IndexedRelation"]

Key = Tuple


class RelationIndex:
    """Hash index from a key projection to the bucket of matching entries.

    Parameters
    ----------
    schema:
        The indexed relation's key schema.
    attrs:
        Attributes the index hashes on, a subset of ``schema``. The hook
        of a key is its projection onto ``attrs`` in this order (a bare
        scalar when unary, mirroring the join hot paths). ``attrs`` may
        be empty: every entry then lives in one bucket, which is how a
        sibling with no shared attributes (a cartesian step) is probed.
    """

    __slots__ = ("attrs", "positions", "hook_of", "buckets", "probes", "hits")

    def __init__(self, schema: Tuple[str, ...], attrs: Iterable[str]):
        self.attrs = tuple(attrs)
        if len(set(self.attrs)) != len(self.attrs):
            raise DataError(f"duplicate attribute in index attrs {self.attrs!r}")
        self.positions = _positions(tuple(schema), self.attrs)
        self.hook_of = _hook_getter(self.positions)
        self.buckets: Dict[Any, Dict[Key, Any]] = {}
        #: Probe-side counters (filled by ``Relation.join_probe``).
        self.probes = 0
        self.hits = 0

    # ------------------------------------------------------------------

    def build(self, data: Mapping[Key, Any]) -> "RelationIndex":
        """(Re)populate the index from a relation's live entries."""
        hook_of = self.hook_of
        buckets: Dict[Any, Dict[Key, Any]] = {}
        for key, payload in data.items():
            hook = hook_of(key)
            bucket = buckets.get(hook)
            if bucket is None:
                buckets[hook] = {key: payload}
            else:
                bucket[key] = payload
        self.buckets = buckets
        return self

    def set(self, key: Key, payload: Any) -> None:
        """Insert or refresh one live entry."""
        hook = self.hook_of(key)
        bucket = self.buckets.get(hook)
        if bucket is None:
            self.buckets[hook] = {key: payload}
        else:
            bucket[key] = payload

    def discard(self, key: Key) -> None:
        """Remove one entry; the bucket vanishes when it empties."""
        hook = self.hook_of(key)
        bucket = self.buckets.get(hook)
        if bucket is not None:
            bucket.pop(key, None)
            if not bucket:
                del self.buckets[hook]

    def get(self, hook: Any) -> Optional[Dict[Key, Any]]:
        """Bucket of entries whose keys project to ``hook`` (None if empty)."""
        return self.buckets.get(hook)

    # ------------------------------------------------------------------

    def entry_count(self) -> int:
        """Live entries across all buckets (equals the relation's size)."""
        return sum(len(bucket) for bucket in self.buckets.values())

    def bucket_count(self) -> int:
        return len(self.buckets)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<RelationIndex on {self.attrs!r} "
            f"|{self.bucket_count()} buckets, {self.entry_count()} entries|>"
        )


class IndexedRelation(Relation):
    """A relation carrying persistent indexes kept consistent on mutation.

    The engines mutate materialized views exclusively through
    :meth:`add_inplace`; this subclass folds index maintenance into that
    call, so an indexed view costs one extra dict write per index per
    changed key — never a rebuild. ``copy``/``empty_like`` intentionally
    return plain (unindexed) relations: indexes belong to the long-lived
    materialization, not to transient deltas derived from it.
    """

    __slots__ = ("indexes",)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.indexes: Dict[Tuple[str, ...], RelationIndex] = {}

    @classmethod
    def from_relation(cls, relation: Relation) -> "IndexedRelation":
        """Adopt ``relation``'s entries (shared dict, no copy) as indexed."""
        indexed = cls(relation.schema, relation.ring, name=relation.name)
        indexed.data = relation.data
        return indexed

    # ------------------------------------------------------------------

    def add_index(self, attrs: Iterable[str]) -> RelationIndex:
        """Create (or return the existing) index on ``attrs``, built now."""
        attrs = tuple(attrs)
        index = self.indexes.get(attrs)
        if index is None:
            index = RelationIndex(self.schema, attrs).build(self.data)
            self.indexes[attrs] = index
        return index

    def index_on(self, attrs: Iterable[str]) -> RelationIndex:
        """The index on exactly ``attrs``; raises if it was never built."""
        try:
            return self.indexes[tuple(attrs)]
        except KeyError:
            raise DataError(
                f"no index on {tuple(attrs)!r} for relation {self.name!r} "
                f"(have {sorted(self.indexes)!r})"
            ) from None

    # ------------------------------------------------------------------

    def add_inplace(self, other: Relation) -> "IndexedRelation":
        """Union with payload addition, updating every index in the same pass."""
        indexes = tuple(self.indexes.values())
        if not indexes:
            super().add_inplace(other)
            return self
        self._check_compatible(other)
        ring = self.ring
        data = self.data
        # Inlined index writes: one (hook_of, buckets) pair per index saves
        # a method call per index per changed key — index maintenance is
        # the dominant per-update cost of the indexed path at large batches.
        index_ops = tuple((index.hook_of, index.buckets) for index in indexes)
        if relation_module.SCALAR_FASTPATH and ring.is_scalar:
            for key, payload in other.data.items():
                existing = data.get(key)
                total = payload if existing is None else existing + payload
                if total:
                    data[key] = total
                    for hook_of, buckets in index_ops:
                        hook = hook_of(key)
                        bucket = buckets.get(hook)
                        if bucket is None:
                            buckets[hook] = {key: total}
                        else:
                            bucket[key] = total
                elif existing is not None:
                    del data[key]
                    for hook_of, buckets in index_ops:
                        hook = hook_of(key)
                        bucket = buckets.get(hook)
                        if bucket is not None:
                            bucket.pop(key, None)
                            if not bucket:
                                del buckets[hook]
            return self
        is_zero = ring.is_zero
        add = ring.add
        for key, payload in other.data.items():
            existing = data.get(key)
            if existing is None:
                # Mirror Relation.add_inplace: never park ring-zero payloads.
                if not is_zero(payload):
                    data[key] = payload
                    for index in indexes:
                        index.set(key, payload)
            else:
                total = add(existing, payload)
                if is_zero(total):
                    del data[key]
                    for index in indexes:
                        index.discard(key)
                else:
                    data[key] = total
                    for index in indexes:
                        index.set(key, total)
        return self
