"""Keyed relations with ring payloads and the operations F-IVM needs.

A :class:`Relation` maps key tuples (over a fixed attribute schema) to
payloads from a ring — the paper's generalized relations. Base relations
carry integer multiplicities (the Z ring); views carry whatever ring the
application selected. The three operations the view-tree engine is built
from are:

- :meth:`Relation.join` — natural join, multiplying payloads;
- :meth:`Relation.marginalize` — group-by that sums payloads, optionally
  multiplying in a lifting function of the marginalized attribute(s);
- :meth:`Relation.lift` — the leaf step that converts Z multiplicities into
  the application ring while aggregating away non-key attributes.

All operations prune zero payloads, so a delete that cancels an insert
physically removes the key, and view sizes track live data.
"""

from __future__ import annotations

from operator import itemgetter
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    Mapping,
    Optional,
    Tuple,
)

import numpy as np

from repro.data.columnar import ColumnarDelta
from repro.errors import DataError, SchemaError
from repro.rings.base import Ring
from repro.rings.scalar import Z

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.data.index import RelationIndex

__all__ = ["Relation", "SCALAR_FASTPATH"]

Key = Tuple

#: Global switch for the scalar-ring fast paths (numeric payloads bypass
#: generic ring dispatch in join/marginalize/lift/add_inplace). On by
#: default; benchmarks flip it off to measure the win, and it is a safety
#: hatch should a custom scalar ring misbehave.
SCALAR_FASTPATH = True


def _positions(schema: Tuple[str, ...], attrs: Iterable[str]) -> Tuple[int, ...]:
    index = {attr: i for i, attr in enumerate(schema)}
    try:
        return tuple(index[attr] for attr in attrs)
    except KeyError as exc:
        raise SchemaError(f"attribute {exc.args[0]!r} not in schema {schema!r}") from None


_EMPTY = ()


def _hook_getter(positions: Tuple[int, ...]) -> Callable[[Key], Any]:
    """Compiled extractor for internal hash keys (scalar when unary)."""
    if not positions:
        return lambda key: _EMPTY
    return itemgetter(*positions)


def _key_getter(positions: Tuple[int, ...]) -> Callable[[Key], Tuple]:
    """Compiled extractor that always yields a tuple (for result keys)."""
    if not positions:
        return lambda key: _EMPTY
    if len(positions) == 1:
        position = positions[0]
        return lambda key: (key[position],)
    return itemgetter(*positions)


class Relation:
    """A finite map from key tuples to ring payloads.

    Parameters
    ----------
    schema:
        Ordered attribute names of the key.
    ring:
        The payload ring; defaults to Z (integer multiplicities).
    data:
        Initial ``key -> payload`` entries; zero payloads are dropped.
    name:
        Optional name (base relations carry their schema name).
    """

    __slots__ = ("schema", "ring", "data", "name", "_columnar")

    def __init__(
        self,
        schema: Tuple[str, ...],
        ring: Ring = Z,
        data: Optional[Mapping[Key, Any]] = None,
        name: str = "",
    ):
        if len(set(schema)) != len(schema):
            raise SchemaError(f"duplicate attribute in schema {schema!r}")
        self.schema = tuple(schema)
        self.ring = ring
        self.name = name
        self._columnar = None
        self.data: Dict[Key, Any] = {}
        if data:
            arity = len(self.schema)
            for key, payload in data.items():
                if not isinstance(key, tuple) or len(key) != arity:
                    raise DataError(
                        f"key {key!r} does not match schema {self.schema!r}"
                    )
                if not ring.is_zero(payload):
                    self.data[key] = payload

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_tuples(
        cls,
        schema: Tuple[str, ...],
        tuples: Iterable[Tuple],
        name: str = "",
    ) -> "Relation":
        """Build a Z-relation counting multiplicities of ``tuples``."""
        relation = cls(schema, Z, name=name)
        data = relation.data
        for row in tuples:
            row = tuple(row)
            if len(row) != len(relation.schema):
                raise DataError(f"row {row!r} does not match schema {schema!r}")
            data[row] = data.get(row, 0) + 1
        return relation

    @classmethod
    def from_columns(
        cls,
        schema: Tuple[str, ...],
        columns: Tuple[Iterable, ...],
        counts: Iterable[int],
        name: str = "",
    ) -> "Relation":
        """Build a Z-delta from key columns plus a multiplicity column.

        The inverse of :meth:`columnar`: duplicate keys sum-merge and
        zero multiplicities drop, and the columnar form stays attached so
        a later :meth:`columnar` call is free.
        """
        return ColumnarDelta(tuple(schema), counts, columns=tuple(columns), name=name).to_relation()

    def columnar(self) -> "ColumnarDelta":
        """Columnar (struct-of-arrays) form of this Z-delta, built once.

        Cached until the relation is mutated through
        :meth:`add_inplace`/:meth:`add_block_inplace`; callers that
        assign ``data`` directly own the invalidation.
        """
        cached = self._columnar
        if cached is None:
            cached = self._columnar = ColumnarDelta.from_relation(self)
        return cached

    def empty_like(self) -> "Relation":
        """Fresh empty relation with the same schema/ring."""
        return Relation(self.schema, self.ring, name=self.name)

    def copy(self) -> "Relation":
        """Shallow copy (payloads are shared; use ring.copy before mutating)."""
        clone = Relation(self.schema, self.ring, name=self.name)
        clone.data = dict(self.data)
        clone._columnar = self._columnar
        return clone

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    def payload(self, key: Key) -> Any:
        """Payload of ``key`` (ring zero when absent)."""
        value = self.data.get(key)
        return self.ring.zero() if value is None else value

    def __len__(self) -> int:
        return len(self.data)

    def __contains__(self, key: Key) -> bool:
        return key in self.data

    def items(self):
        return self.data.items()

    def __eq__(self, other) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        if self.schema != other.schema or len(self.data) != len(other.data):
            return False
        eq = self.ring.eq
        for key, payload in self.data.items():
            theirs = other.data.get(key)
            if theirs is None or not eq(payload, theirs):
                return False
        return True

    def close_to(self, other: "Relation", tol: float = 1e-8) -> bool:
        """Tolerant equality using the ring's ``close`` when available."""
        close = getattr(self.ring, "close", None)
        if close is None:
            return self == other
        if self.schema != other.schema:
            return False
        for key in set(self.data) | set(other.data):
            mine = self.data.get(key, self.ring.zero())
            theirs = other.data.get(key, self.ring.zero())
            if not close(mine, theirs, tol):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "Relation"
        return f"<{label}({', '.join(self.schema)}) ring={self.ring.name} |{len(self.data)}|>"

    # ------------------------------------------------------------------
    # Union / difference
    # ------------------------------------------------------------------

    def add(self, other: "Relation") -> "Relation":
        """Union with payload addition (pure)."""
        self._check_compatible(other)
        result = self.copy()
        return result.add_inplace(other)

    def add_inplace(self, other: "Relation") -> "Relation":
        """Union with payload addition, mutating ``self``.

        Payloads already present are *not* mutated in place — the ring's
        pure ``add`` runs — so sharing payload objects across relations
        stays safe.
        """
        self._check_compatible(other)
        self._columnar = None
        ring = self.ring
        data = self.data
        if SCALAR_FASTPATH and ring.is_scalar:
            # Numeric payloads: plain +, truthiness as the zero test.
            for key, payload in other.data.items():
                existing = data.get(key)
                total = payload if existing is None else existing + payload
                if total:
                    data[key] = total
                elif existing is not None:
                    del data[key]
            return self
        for key, payload in other.data.items():
            existing = data.get(key)
            if existing is None:
                # Skip ring-zero payloads so cancelled batches never park
                # dead entries (long streams would otherwise leak them).
                if not ring.is_zero(payload):
                    data[key] = payload
            else:
                total = ring.add(existing, payload)
                if ring.is_zero(total):
                    del data[key]
                else:
                    data[key] = total
        return self

    def add_block_inplace(self, keys: Iterable[Key], block: Any) -> "Relation":
        """Scatter a payload block into this relation, key by key.

        The columnar counterpart of :meth:`add_inplace`: ``keys`` and the
        ring block (see the bulk kernels in :mod:`repro.rings.base`) come
        from the vectorized maintenance ladder; the same merge semantics
        apply — payload addition, zero pruning, no parked ring zeros.
        Compound rings with bulk kernels take the two-phase vectorized
        merge of :meth:`_merge_block` instead of the per-key loop.
        """
        self._columnar = None
        ring = self.ring
        data = self.data
        if SCALAR_FASTPATH and ring.is_scalar:
            for key, payload in zip(keys, ring.block_payloads(block)):
                existing = data.get(key)
                total = payload if existing is None else existing + payload
                if total:
                    data[key] = total
                elif existing is not None:
                    del data[key]
            return self
        if ring.has_bulk_kernels:
            if not isinstance(keys, list):
                keys = list(keys)
            # The two-phase merge resolves every key once, so a block
            # carrying the same key twice (legal here: occurrences merge
            # sequentially) must take the per-key loop instead.
            if len(set(keys)) == len(keys):
                return self._merge_block(keys, block, _EMPTY)
        add = ring.add
        is_zero = ring.is_zero
        for key, payload in zip(keys, ring.block_payloads(block)):
            existing = data.get(key)
            if existing is None:
                if not is_zero(payload):
                    data[key] = payload
            else:
                total = add(existing, payload)
                if is_zero(total):
                    del data[key]
                else:
                    data[key] = total
        return self

    def _merge_block(self, keys, block, index_ops) -> "Relation":
        """Two-phase vectorized scatter for rings with bulk kernels.

        Semantics are identical to the per-key loop of
        :meth:`add_block_inplace` — payload addition, zero pruning, no
        parked ring zeros, and the same final dict/index orders — but the
        per-row ``ring.add``/``ring.is_zero`` dispatch (the dominant
        scatter cost for compound payloads) collapses into three block
        kernel calls: gather the existing payloads of the *hit* keys,
        ``add_many`` the matching delta rows, ``is_zero_many`` the sums.
        Miss keys are zero-filtered up front and inserted afterwards;
        hits never create dict entries and batch keys are unique, so
        hits-then-misses lands the exact insertion order of the
        interleaved loop. ``index_ops`` carries the ``(hook_of,
        buckets)`` pairs of any live indexes to maintain in the same
        pass (empty for plain relations).
        """
        ring = self.ring
        data = self.data
        data_get = data.get
        if not isinstance(keys, list):
            keys = list(keys)
        existing = [data_get(key) for key in keys]
        hit_idx = [i for i, payload in enumerate(existing) if payload is not None]
        if hit_idx:
            if len(hit_idx) == len(keys):
                hit_keys = keys
                merged = ring.add_many(ring.make_block(existing), block)
            else:
                hit_keys = [keys[i] for i in hit_idx]
                merged = ring.add_many(
                    ring.make_block([existing[i] for i in hit_idx]),
                    ring.take(block, np.asarray(hit_idx, dtype=np.intp)),
                )
            dead = ring.is_zero_many(merged)
            if not index_ops and not dead.any():
                # dict.update drives the whole phase from C; updating
                # existing keys never moves them, so order is preserved.
                data.update(zip(hit_keys, ring.block_payloads(merged)))
            else:
                dead_list = dead.tolist()
                for j, payload in enumerate(ring.block_payloads(merged)):
                    key = hit_keys[j]
                    if dead_list[j]:
                        del data[key]
                        for hook_of, buckets in index_ops:
                            hook = hook_of(key)
                            bucket = buckets.get(hook)
                            if bucket is not None:
                                bucket.pop(key, None)
                                if not bucket:
                                    del buckets[hook]
                    else:
                        data[key] = payload
                        for hook_of, buckets in index_ops:
                            hook = hook_of(key)
                            bucket = buckets.get(hook)
                            if bucket is None:
                                buckets[hook] = {key: payload}
                            else:
                                bucket[key] = payload
        if len(hit_idx) != len(keys):
            if hit_idx:
                miss_idx = [
                    i for i, payload in enumerate(existing) if payload is None
                ]
                miss_keys = [keys[i] for i in miss_idx]
                miss_block = ring.take(block, np.asarray(miss_idx, dtype=np.intp))
            else:
                miss_keys = keys
                miss_block = block
            zero = ring.is_zero_many(miss_block)
            if zero.any():
                live = np.flatnonzero(~zero)
                miss_keys = [miss_keys[i] for i in live.tolist()]
                miss_block = ring.take(miss_block, live)
            if miss_keys:
                if not index_ops:
                    # Batch keys are unique and hits never create
                    # entries, so appending every miss afterwards lands
                    # the interleaved loop's insertion order.
                    data.update(zip(miss_keys, ring.block_payloads(miss_block)))
                else:
                    for key, payload in zip(
                        miss_keys, ring.block_payloads(miss_block)
                    ):
                        data[key] = payload
                        for hook_of, buckets in index_ops:
                            hook = hook_of(key)
                            bucket = buckets.get(hook)
                            if bucket is None:
                                buckets[hook] = {key: payload}
                            else:
                                bucket[key] = payload
        return self

    def neg(self) -> "Relation":
        """Payload-wise additive inverse (encodes deletes)."""
        ring = self.ring
        result = self.empty_like()
        result.data = {key: ring.neg(payload) for key, payload in self.data.items()}
        return result

    def scale(self, n: int) -> "Relation":
        """Multiply every payload by the integer ``n``."""
        if n == 0:
            return self.empty_like()
        ring = self.ring
        result = self.empty_like()
        result.data = {key: ring.scale(payload, n) for key, payload in self.data.items()}
        return result

    def filter(self, predicate: Callable[[Key], bool]) -> "Relation":
        """Keep keys satisfying ``predicate`` (selection)."""
        result = self.empty_like()
        result.data = {
            key: payload for key, payload in self.data.items() if predicate(key)
        }
        return result

    # ------------------------------------------------------------------
    # Join
    # ------------------------------------------------------------------

    def join(self, other: "Relation") -> "Relation":
        """Natural join on shared attributes; payloads multiply in the ring.

        The result schema is this relation's schema followed by the other's
        non-shared attributes. The smaller side is indexed and the larger
        side probes, so cost is O(|smaller| + |larger| + |output|).
        """
        if self.ring is not other.ring and type(self.ring) is not type(other.ring):
            raise DataError(
                f"cannot join relations over rings {self.ring.name!r} and {other.ring.name!r}"
            )
        ring = self.ring
        schema_a, schema_b = self.schema, other.schema
        shared = tuple(attr for attr in schema_b if attr in schema_a)
        keep_b = tuple(i for i, attr in enumerate(schema_b) if attr not in schema_a)
        result_schema = schema_a + tuple(schema_b[i] for i in keep_b)
        result = Relation(result_schema, ring)
        out = result.data
        if not self.data or not other.data:
            return result
        pos_a = _positions(schema_a, shared)
        pos_b = _positions(schema_b, shared)
        if SCALAR_FASTPATH and ring.is_scalar:
            # Tight loops for numeric payloads: native * and +, truthiness
            # as the zero test, compiled key extractors, no ring dispatch
            # per output tuple. Same index-the-smaller-side strategy as
            # the generic path below.
            hook_of_a = _hook_getter(pos_a)
            hook_of_b = _hook_getter(pos_b)
            rest_of_b = _key_getter(keep_b)
            out_get = out.get
            index: Dict[Key, list] = {}
            if len(self.data) <= len(other.data):
                for key_a, payload_a in self.data.items():
                    index.setdefault(hook_of_a(key_a), []).append((key_a, payload_a))
                for key_b, payload_b in other.data.items():
                    matches = index.get(hook_of_b(key_b))
                    if matches is None:
                        continue
                    rest_b = rest_of_b(key_b)
                    for key_a, payload_a in matches:
                        key = key_a + rest_b
                        existing = out_get(key)
                        total = (
                            payload_a * payload_b
                            if existing is None
                            else existing + payload_a * payload_b
                        )
                        if total:
                            out[key] = total
                        elif existing is not None:
                            del out[key]
            else:
                for key_b, payload_b in other.data.items():
                    index.setdefault(hook_of_b(key_b), []).append(
                        (rest_of_b(key_b), payload_b)
                    )
                for key_a, payload_a in self.data.items():
                    matches = index.get(hook_of_a(key_a))
                    if matches is None:
                        continue
                    for rest_b, payload_b in matches:
                        key = key_a + rest_b
                        existing = out_get(key)
                        total = (
                            payload_a * payload_b
                            if existing is None
                            else existing + payload_a * payload_b
                        )
                        if total:
                            out[key] = total
                        elif existing is not None:
                            del out[key]
            return result
        # Index the smaller input on the shared attributes; probe the larger.
        if len(self.data) <= len(other.data):
            index: Dict[Key, list] = {}
            for key_a, payload_a in self.data.items():
                hook = tuple(key_a[i] for i in pos_a)
                index.setdefault(hook, []).append((key_a, payload_a))
            for key_b, payload_b in other.data.items():
                hook = tuple(key_b[i] for i in pos_b)
                matches = index.get(hook)
                if not matches:
                    continue
                rest_b = tuple(key_b[i] for i in keep_b)
                for key_a, payload_a in matches:
                    key = key_a + rest_b
                    product = ring.mul(payload_a, payload_b)
                    existing = out.get(key)
                    total = product if existing is None else ring.add(existing, product)
                    if ring.is_zero(total):
                        out.pop(key, None)
                    else:
                        out[key] = total
        else:
            index = {}
            for key_b, payload_b in other.data.items():
                hook = tuple(key_b[i] for i in pos_b)
                index.setdefault(hook, []).append(
                    (tuple(key_b[i] for i in keep_b), payload_b)
                )
            for key_a, payload_a in self.data.items():
                hook = tuple(key_a[i] for i in pos_a)
                for rest_b, payload_b in index.get(hook, ()):
                    key = key_a + rest_b
                    product = ring.mul(payload_a, payload_b)
                    existing = out.get(key)
                    total = product if existing is None else ring.add(existing, product)
                    if ring.is_zero(total):
                        out.pop(key, None)
                    else:
                        out[key] = total
        return result

    def join_probe(self, other: "Relation", index: "RelationIndex") -> "Relation":
        """Natural join driven by ``other``'s persistent index.

        Semantically identical to ``self.join(other)`` — same result
        schema and payloads — but instead of building a hash index per
        call and scanning the larger side, it loops over ``self`` (meant
        to be a small delta) and probes ``index``, a
        :class:`~repro.data.index.RelationIndex` kept on ``other``'s
        shared attributes. Cost is O(|self| x matches), independent of
        |other|, which is the access path F-IVM's per-update complexity
        claim assumes. ``index.probes``/``index.hits`` are advanced so
        engines can report probe statistics.
        """
        if self.ring is not other.ring and type(self.ring) is not type(other.ring):
            raise DataError(
                f"cannot join relations over rings {self.ring.name!r} and {other.ring.name!r}"
            )
        ring = self.ring
        schema_a, schema_b = self.schema, other.schema
        shared = tuple(attr for attr in schema_b if attr in schema_a)
        if set(index.attrs) != set(shared):
            raise DataError(
                f"index on {index.attrs!r} does not match the shared "
                f"attributes {shared!r} of {schema_a!r} and {schema_b!r}"
            )
        keep_b = tuple(i for i, attr in enumerate(schema_b) if attr not in schema_a)
        result = Relation(schema_a + tuple(schema_b[i] for i in keep_b), ring)
        if not self.data or not other.data:
            return result
        out = result.data
        # Hook order must match the index's: extract index.attrs, not `shared`.
        hook_of_a = _hook_getter(_positions(schema_a, index.attrs))
        rest_of_b = _key_getter(keep_b)
        buckets_get = index.buckets.get
        probes = hits = 0
        if SCALAR_FASTPATH and ring.is_scalar:
            out_get = out.get
            for key_a, payload_a in self.data.items():
                probes += 1
                bucket = buckets_get(hook_of_a(key_a))
                if not bucket:
                    continue
                hits += 1
                for key_b, payload_b in bucket.items():
                    key = key_a + rest_of_b(key_b)
                    existing = out_get(key)
                    total = (
                        payload_a * payload_b
                        if existing is None
                        else existing + payload_a * payload_b
                    )
                    if total:
                        out[key] = total
                    elif existing is not None:
                        del out[key]
        else:
            mul = ring.mul
            add = ring.add
            is_zero = ring.is_zero
            for key_a, payload_a in self.data.items():
                probes += 1
                bucket = buckets_get(hook_of_a(key_a))
                if not bucket:
                    continue
                hits += 1
                for key_b, payload_b in bucket.items():
                    key = key_a + rest_of_b(key_b)
                    product = mul(payload_a, payload_b)
                    existing = out.get(key)
                    total = product if existing is None else add(existing, product)
                    if is_zero(total):
                        out.pop(key, None)
                    else:
                        out[key] = total
        index.probes += probes
        index.hits += hits
        return result

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def marginalize(
        self,
        keep: Tuple[str, ...],
        lifts: Optional[Mapping[str, Callable[[Any], Any]]] = None,
    ) -> "Relation":
        """Group by ``keep``; payloads of each group sum in the ring.

        ``lifts`` maps *marginalized* attributes to their lifting functions
        g_X; each row's payload is multiplied by the product of its lifted
        values before summation. Attributes in ``keep`` must not be lifted
        (their lift applies when they are marginalized higher in the tree).
        """
        ring = self.ring
        keep = tuple(keep)
        keep_pos = _positions(self.schema, keep)
        lift_items: Tuple[Tuple[int, Callable], ...] = ()
        if lifts:
            for attr in lifts:
                if attr in keep:
                    raise SchemaError(
                        f"cannot lift attribute {attr!r}: it is kept as a key"
                    )
            lift_items = tuple(
                (self.schema.index(attr), fn) for attr, fn in lifts.items()
            )
        result = Relation(keep, ring)
        out = result.data
        if SCALAR_FASTPATH and ring.is_scalar:
            group_of = _key_getter(keep_pos)
            out_get = out.get
            if lift_items:
                for key, payload in self.data.items():
                    for position, lift_fn in lift_items:
                        payload = payload * lift_fn(key[position])
                    group = group_of(key)
                    existing = out_get(group)
                    out[group] = payload if existing is None else existing + payload
            else:
                for key, payload in self.data.items():
                    group = group_of(key)
                    existing = out_get(group)
                    out[group] = payload if existing is None else existing + payload
            zero_keys = [key for key, payload in out.items() if not payload]
            for key in zero_keys:
                del out[key]
            return result
        add_inplace = ring.add_inplace
        copy = ring.copy
        mul = ring.mul
        for key, payload in self.data.items():
            for position, lift_fn in lift_items:
                payload = mul(payload, lift_fn(key[position]))
            group = tuple(key[i] for i in keep_pos)
            existing = out.get(group)
            if existing is None:
                out[group] = copy(payload)
            else:
                out[group] = add_inplace(existing, payload)
        if lift_items or ring.has_negation:
            # Lifted/negative payloads can cancel within a group.
            is_zero = ring.is_zero
            zero_keys = [key for key, payload in out.items() if is_zero(payload)]
            for key in zero_keys:
                del out[key]
        return result

    def lift(
        self,
        ring: Ring,
        keep: Tuple[str, ...],
        lifts: Optional[Mapping[str, Callable[[Any], Any]]] = None,
    ) -> "Relation":
        """Leaf view step: convert Z multiplicities into ``ring`` payloads.

        Groups by ``keep``; each row contributes the product of its lifted
        attribute values (ring one when ``lifts`` is empty), scaled by the
        row's integer multiplicity. This is how base-relation deltas — with
        positive and negative multiplicities — enter payload space.
        """
        if self.ring is not Z and not isinstance(self.ring, type(Z)):
            raise DataError("lift applies to Z-payload (base) relations")
        keep = tuple(keep)
        keep_pos = _positions(self.schema, keep)
        lift_items: Tuple[Tuple[int, Callable], ...] = ()
        if lifts:
            lift_items = tuple(
                (self.schema.index(attr), fn) for attr, fn in lifts.items()
            )
        result = Relation(keep, ring)
        out = result.data
        one = ring.one()
        if SCALAR_FASTPATH and ring.is_scalar:
            group_of = _key_getter(keep_pos)
            out_get = out.get
            for key, multiplicity in self.data.items():
                payload = one
                for position, lift_fn in lift_items:
                    payload = payload * lift_fn(key[position])
                payload = payload * multiplicity
                group = group_of(key)
                existing = out_get(group)
                out[group] = payload if existing is None else existing + payload
            zero_keys = [key for key, payload in out.items() if not payload]
            for key in zero_keys:
                del out[key]
            return result
        mul = ring.mul
        scale = ring.scale
        add_inplace = ring.add_inplace
        copy = ring.copy
        for key, multiplicity in self.data.items():
            payload = one
            for position, lift_fn in lift_items:
                payload = mul(payload, lift_fn(key[position]))
            payload = scale(payload, multiplicity)
            group = tuple(key[i] for i in keep_pos)
            existing = out.get(group)
            if existing is None:
                out[group] = copy(payload)
            else:
                out[group] = add_inplace(existing, payload)
        is_zero = ring.is_zero
        zero_keys = [key for key, payload in out.items() if is_zero(payload)]
        for key in zero_keys:
            del out[key]
        return result

    def project(self, keep: Tuple[str, ...]) -> "Relation":
        """Projection with payload summation (marginalize without lifts)."""
        return self.marginalize(keep)

    def total(self) -> Any:
        """Sum of all payloads — the full aggregate over the relation."""
        return self.ring.sum(
            self.ring.copy(payload) for payload in self.data.values()
        )

    # ------------------------------------------------------------------

    def _check_compatible(self, other: "Relation") -> None:
        if self.schema != other.schema:
            raise SchemaError(
                f"schema mismatch: {self.schema!r} vs {other.schema!r}"
            )
