"""Coalescing single-tuple updates into batched per-relation deltas.

High update rates arrive one tuple at a time, but every engine pays a
per-delta cost (a leaf-to-root traversal for F-IVM, a delta query for
first-order IVM, a re-evaluation for the naive baseline) that is far
cheaper per tuple when amortized over a batch. :class:`UpdateBatcher`
sits between a tuple stream and an engine: it absorbs ``(relation, row,
multiplicity)`` events, sum-merges duplicate keys, cancels +/− pairs to
nothing, and emits per-relation Z-:class:`Relation` deltas according to a
flush policy.

Because maintenance is exact — the final result depends only on the
accumulated deltas, not on how they were sliced — feeding the coalesced
batches to an engine yields the same final views as applying the events
one at a time (the tests check this for all four engines).
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.data.relation import Relation
from repro.errors import DataError

__all__ = ["UpdateBatcher", "batch_events"]

Event = Tuple[str, Tuple, int]
Batch = List[Tuple[str, Relation]]

#: Flush policies: ``"size"`` flushes as soon as ``batch_size`` updates
#: have been absorbed since the last flush; ``"manual"`` only flushes on
#: an explicit :meth:`UpdateBatcher.flush` / :meth:`UpdateBatcher.close`.
FLUSH_POLICIES = ("size", "manual")


class UpdateBatcher:
    """Coalesce a stream of single-tuple deltas into batched deltas.

    Parameters
    ----------
    schemas:
        ``relation name -> attribute tuple``; only these relations are
        accepted (unknown names raise :class:`DataError` immediately
        instead of surfacing as a schema error at apply time).
    batch_size:
        Number of absorbed updates (|multiplicity| weighted) that triggers
        a flush under the ``"size"`` policy.
    flush_policy:
        ``"size"`` (default) or ``"manual"``; see :data:`FLUSH_POLICIES`.
    on_flush:
        Optional callback receiving each flushed batch (a list of
        ``(relation, delta)`` pairs). When set, :meth:`add` delivers
        batches to the callback; otherwise it returns them.

    Notes
    -----
    Cancelled pairs still count toward ``batch_size`` — the trigger is
    "updates absorbed", not "tuples pending", so flush timing does not
    depend on payload values. Used as a context manager, the remainder is
    flushed on exit (flush-on-close).
    """

    def __init__(
        self,
        schemas: Mapping[str, Sequence[str]],
        batch_size: int = 1000,
        flush_policy: str = "size",
        on_flush: Optional[Callable[[Batch], None]] = None,
    ):
        if batch_size < 1:
            raise DataError("batch_size must be at least 1")
        if flush_policy not in FLUSH_POLICIES:
            raise DataError(
                f"unknown flush policy {flush_policy!r}; expected one of {FLUSH_POLICIES}"
            )
        self.schemas: Dict[str, Tuple[str, ...]] = {
            name: tuple(attrs) for name, attrs in schemas.items()
        }
        self.batch_size = batch_size
        self.flush_policy = flush_policy
        self.on_flush = on_flush
        #: relation -> pending key -> accumulated multiplicity (zeros pruned).
        self._pending: Dict[str, Dict[Tuple, int]] = {}
        #: relations in first-touched order (flush emission order).
        self._order: List[str] = []
        self._absorbed_since_flush = 0
        self.updates_absorbed = 0
        self.batches_emitted = 0

    # ------------------------------------------------------------------

    @property
    def pending_updates(self) -> int:
        """Updates absorbed since the last flush (cancelled pairs included)."""
        return self._absorbed_since_flush

    @property
    def pending_tuples(self) -> int:
        """Distinct keys currently pending (after merging and cancellation)."""
        return sum(len(data) for data in self._pending.values())

    def add(self, relation: str, row: Sequence, multiplicity: int = 1) -> Optional[Batch]:
        """Absorb one single-tuple update.

        Returns the flushed batch when this event triggered a size flush
        (or ``None``: nothing flushed, or the batch went to ``on_flush``).
        """
        schema = self.schemas.get(relation)
        if schema is None:
            raise DataError(
                f"unknown relation {relation!r}; batcher knows {tuple(self.schemas)}"
            )
        row = tuple(row)
        if len(row) != len(schema):
            raise DataError(
                f"row {row!r} does not match {relation!r} schema {schema!r}"
            )
        if multiplicity == 0:
            return None
        pending = self._pending.get(relation)
        if pending is None:
            pending = self._pending[relation] = {}
            self._order.append(relation)
        total = pending.get(row, 0) + multiplicity
        if total:
            pending[row] = total
        else:
            del pending[row]
        count = abs(multiplicity)
        self._absorbed_since_flush += count
        self.updates_absorbed += count
        return self._maybe_flush()

    def add_delta(self, relation: str, delta: Relation) -> Optional[Batch]:
        """Absorb a pre-built Z-delta (all its entries, key by key)."""
        flushed: Batch = []
        for row, multiplicity in delta.data.items():
            batch = self.add(relation, row, multiplicity)
            if batch:
                flushed.extend(batch)
        return flushed or None

    def flush(self) -> Batch:
        """Emit all pending deltas (first-touched relation order) and reset.

        Each emitted delta's columnar (struct-of-arrays) form is
        available through :meth:`Relation.columnar`, built at most once
        on first use — columnar consumers (the vectorized maintenance
        path, the sharded pipe transport) share one build, and purely
        per-tuple consumers never pay for it.
        """
        batch: Batch = []
        for name in self._order:
            data = self._pending[name]
            if not data:
                continue
            delta = Relation(self.schemas[name], name=name)
            delta.data = data
            batch.append((name, delta))
        self._pending = {}
        self._order = []
        self._absorbed_since_flush = 0
        if batch:
            self.batches_emitted += 1
        return batch

    def close(self) -> Optional[Batch]:
        """Flush the remainder; delivers to ``on_flush`` when configured."""
        batch = self.flush()
        if not batch:
            return None
        if self.on_flush is not None:
            self.on_flush(batch)
            return None
        return batch

    # ------------------------------------------------------------------

    def __enter__(self) -> "UpdateBatcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Flush the remainder on clean exit *only*.

        When the block raised, the pending half-batch is deliberately NOT
        delivered: it represents an arbitrary prefix of a failed
        iteration, and pushing it to ``on_flush`` (usually straight into
        an engine) would commit partial work the caller is about to
        unwind. The buffered updates stay on the batcher, so recovery —
        an explicit :meth:`close` or dropping the batcher — remains the
        caller's decision.
        """
        if exc_type is None:
            self.close()

    # ------------------------------------------------------------------

    def _maybe_flush(self) -> Optional[Batch]:
        if self.flush_policy != "size":
            return None
        if self._absorbed_since_flush < self.batch_size:
            return None
        batch = self.flush()
        if not batch:
            return None
        if self.on_flush is not None:
            self.on_flush(batch)
            return None
        return batch


def batch_events(
    events: Iterable[Event],
    schemas: Mapping[str, Sequence[str]],
    batch_size: int = 1000,
) -> Iterator[Batch]:
    """Generator form: yield coalesced batches from a tuple-event stream."""
    batcher = UpdateBatcher(schemas, batch_size=batch_size)
    for relation, row, multiplicity in events:
        batch = batcher.add(relation, row, multiplicity)
        if batch:
            yield batch
    tail = batcher.flush()
    if tail:
        yield tail
