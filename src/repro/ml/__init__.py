"""Machine-learning applications over maintained aggregate matrices."""

from repro.ml.chowliu import ChowLiuTree, chow_liu_tree
from repro.ml.covar import Column, CovarMatrix, covar_from_payload
from repro.ml.discretize import (
    binned_feature,
    binning_for_attribute,
    binning_from_values,
)
from repro.ml.mi import MIMatrix, entropy, mutual_information_matrix, pairwise_mi
from repro.ml.model_selection import FeatureRanking, rank_features, select_features
from repro.ml.regression import RidgeModel, RidgeRegression

__all__ = [
    "Column",
    "CovarMatrix",
    "covar_from_payload",
    "RidgeModel",
    "RidgeRegression",
    "MIMatrix",
    "entropy",
    "mutual_information_matrix",
    "pairwise_mi",
    "FeatureRanking",
    "rank_features",
    "select_features",
    "ChowLiuTree",
    "chow_liu_tree",
    "binning_from_values",
    "binning_for_attribute",
    "binned_feature",
]
