"""COVAR matrix extraction: from ring payloads to dense moment matrices.

The root view's payload is a compound aggregate ``(c, s, Q)``. This module
converts it into an explicit numeric representation suitable for solvers:
one column per continuous feature and one column per *category* of each
categorical feature (the one-hot expansion the ring kept factorized), plus
the count. The extended moment matrix::

    M = [[ c   s^T ]
         [ s    Q  ]]

is exactly ``sum_rows [1, x]^T [1, x]`` over the training dataset defined
by the join, which is all ridge regression needs (Schleich et al., ref [6]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import FIVMError
from repro.rings.cofactor import (
    GeneralCofactor,
    GeneralCofactorRing,
    NumericCofactor,
    NumericCofactorRing,
)
from repro.rings.lifting import Feature
from repro.rings.relational import RelationRing, RelationValue
from repro.rings.specs import PayloadPlan

__all__ = ["Column", "CovarMatrix", "covar_from_payload"]


@dataclass(frozen=True)
class Column:
    """One column of the expanded COVAR matrix.

    ``category`` is ``None`` for continuous features and the category value
    for one-hot columns of categorical features.
    """

    attribute: str
    category: Optional[Any] = None

    @property
    def label(self) -> str:
        if self.category is None:
            return self.attribute
        return f"{self.attribute}={self.category}"


def _sorted_categories(values) -> List[Any]:
    try:
        return sorted(values)
    except TypeError:
        return sorted(values, key=repr)


@dataclass
class CovarMatrix:
    """Dense (count, sums, second moments) over expanded columns."""

    columns: Tuple[Column, ...]
    count: float
    sums: np.ndarray
    moments: np.ndarray

    def index(self, attribute: str, category: Optional[Any] = None) -> int:
        target = Column(attribute, category)
        for i, column in enumerate(self.columns):
            if column == target:
                return i
        raise FIVMError(f"no COVAR column {target.label!r}")

    def columns_of(self, attribute: str) -> Tuple[int, ...]:
        """Indices of all columns belonging to ``attribute``."""
        out = tuple(
            i for i, column in enumerate(self.columns) if column.attribute == attribute
        )
        if not out:
            raise FIVMError(f"no COVAR columns for attribute {attribute!r}")
        return out

    @property
    def dimension(self) -> int:
        return len(self.columns)

    def extended(self) -> np.ndarray:
        """The (1+d) x (1+d) moment matrix including the intercept row."""
        d = self.dimension
        m = np.empty((d + 1, d + 1))
        m[0, 0] = self.count
        m[0, 1:] = self.sums
        m[1:, 0] = self.sums
        m[1:, 1:] = self.moments
        return m

    def render(self, precision: int = 3) -> str:
        """ASCII table of the matrix (the Regression tab's heat map)."""
        labels = [column.label for column in self.columns]
        width = max([len(label) for label in labels] + [10])
        header = " " * width + " | " + " ".join(f"{l:>{width}}" for l in labels)
        lines = [f"count = {self.count:g}", header, "-" * len(header)]
        for i, label in enumerate(labels):
            cells = " ".join(
                f"{self.moments[i, j]:>{width}.{precision}g}"
                for j in range(self.dimension)
            )
            lines.append(f"{label:>{width}} | {cells}")
        return "\n".join(lines)


def covar_from_payload(payload, plan: PayloadPlan) -> CovarMatrix:
    """Expand the root payload of a COVAR query into a dense matrix."""
    ring = plan.ring
    if isinstance(ring, NumericCofactorRing):
        return _from_numeric(payload, plan)
    if isinstance(ring, GeneralCofactorRing):
        if isinstance(ring.scalar, RelationRing):
            return _from_relational(payload, plan)
        return _from_general_float(payload, plan)
    raise FIVMError(f"payload ring {ring.name!r} does not carry a COVAR matrix")


def _from_numeric(payload: NumericCofactor, plan: PayloadPlan) -> CovarMatrix:
    columns = tuple(Column(attr) for attr in plan.layout.attributes)
    return CovarMatrix(
        columns=columns,
        count=float(payload.c),
        sums=payload.s.copy(),
        moments=payload.q.copy(),
    )


def _from_general_float(payload: GeneralCofactor, plan: PayloadPlan) -> CovarMatrix:
    layout = plan.layout
    m = layout.degree
    columns = tuple(Column(attr) for attr in layout.attributes)
    sums = np.zeros(m)
    for i, value in payload.s.items():
        sums[i] = value
    moments = np.zeros((m, m))
    for (i, j), value in payload.q.items():
        moments[i, j] = value
        moments[j, i] = value
    return CovarMatrix(columns, float(payload.c), sums, moments)


def _from_relational(payload: GeneralCofactor, plan: PayloadPlan) -> CovarMatrix:
    layout = plan.layout
    features: Dict[str, Feature] = {f.name: f for f in plan.features}
    count = float(payload.c.annotation(())) if payload.c.data else 0.0

    # Column discovery: continuous features contribute one column;
    # categorical features one column per category present in s_X.
    columns: List[Column] = []
    col_index: Dict[Column, int] = {}
    for slot, attr in enumerate(layout.attributes):
        feature = features[attr]
        if feature.is_categorical:
            s_value: RelationValue = payload.s.get(slot, RelationValue())
            for key in _sorted_categories(s_value.data):
                column = Column(attr, key[0])
                col_index[column] = len(columns)
                columns.append(column)
        else:
            column = Column(attr)
            col_index[column] = len(columns)
            columns.append(column)

    d = len(columns)
    sums = np.zeros(d)
    moments = np.zeros((d, d))

    for slot, attr in enumerate(layout.attributes):
        feature = features[attr]
        s_value = payload.s.get(slot)
        if s_value is None:
            continue
        if feature.is_categorical:
            for key, annotation in s_value.data.items():
                sums[col_index[Column(attr, key[0])]] = annotation
        else:
            sums[col_index[Column(attr)]] = s_value.annotation(())

    def set_moment(i: int, j: int, value: float) -> None:
        moments[i, j] = value
        moments[j, i] = value

    for (slot_i, slot_j), q_value in payload.q.items():
        attr_i = layout.attributes[slot_i]
        attr_j = layout.attributes[slot_j]
        cat_i = features[attr_i].is_categorical
        cat_j = features[attr_j].is_categorical
        if not q_value.data:
            continue
        if slot_i == slot_j:
            if cat_i:
                # Diagonal block of a categorical attribute: counts per
                # category; distinct one-hot columns are orthogonal.
                for key, annotation in q_value.data.items():
                    index = col_index[Column(attr_i, key[0])]
                    set_moment(index, index, annotation)
            else:
                index = col_index[Column(attr_i)]
                set_moment(index, index, q_value.annotation(()))
            continue
        if not cat_i and not cat_j:
            set_moment(
                col_index[Column(attr_i)],
                col_index[Column(attr_j)],
                q_value.annotation(()),
            )
        elif cat_i and cat_j:
            # Relation over both attributes; columns follow the canonical
            # sorted schema of the relation value.
            schema = q_value.schema
            pos_i = schema.index(attr_i)
            pos_j = schema.index(attr_j)
            for key, annotation in q_value.data.items():
                set_moment(
                    col_index[Column(attr_i, key[pos_i])],
                    col_index[Column(attr_j, key[pos_j])],
                    annotation,
                )
        else:
            cat_attr = attr_i if cat_i else attr_j
            cont_attr = attr_j if cat_i else attr_i
            for key, annotation in q_value.data.items():
                set_moment(
                    col_index[Column(cat_attr, key[0])],
                    col_index[Column(cont_attr)],
                    annotation,
                )
    return CovarMatrix(tuple(columns), count, sums, moments)
