"""Ridge linear regression over maintained COVAR matrices.

The paper's Regression tab: after every bulk of updates, a batch gradient
descent solver "resumes the convergence of the model parameters using
gradients that are made of the previous parameter values and the new COVAR
matrix". Nothing here touches the training data — count, sums and second
moments from the maintained payload are sufficient statistics for the
squared-loss gradient:

    grad J(theta) = (1/N) (A theta - b) + lambda * D theta

with ``A = sum z z^T`` over extended feature vectors ``z = [1, x]``,
``b = sum z y``, both sub-blocks of the extended COVAR matrix, and ``D``
the ridge mask (the intercept is not penalized by default).

A closed-form solver is included for cross-checking; the demo flow uses
:meth:`RidgeRegression.fit` with ``theta0`` warm-started from the previous
bulk's model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FIVMError
from repro.ml.covar import Column, CovarMatrix

__all__ = ["RidgeModel", "RidgeRegression"]


@dataclass
class RidgeModel:
    """A fitted ridge model over expanded (one-hot) columns."""

    feature_columns: Tuple[Column, ...]
    label: str
    theta: np.ndarray
    iterations: int = 0
    converged: bool = True
    gradient_norm: float = 0.0
    training_rmse: float = float("nan")

    @property
    def intercept(self) -> float:
        return float(self.theta[0])

    def coefficients(self) -> Dict[str, float]:
        """Column label -> weight (excluding the intercept)."""
        return {
            column.label: float(weight)
            for column, weight in zip(self.feature_columns, self.theta[1:])
        }

    def predict(self, row: Mapping[str, Any]) -> float:
        """Predict the label for a feature assignment.

        Continuous features read their value from ``row``; categorical
        features contribute the weight of the matching one-hot column
        (unseen categories contribute nothing, as they would with a
        train-time one-hot encoder).
        """
        total = self.intercept
        for column, weight in zip(self.feature_columns, self.theta[1:]):
            if column.attribute not in row:
                raise FIVMError(f"missing feature {column.attribute!r}")
            value = row[column.attribute]
            if column.category is None:
                total += float(weight) * float(value)
            elif value == column.category:
                total += float(weight)
        return total


class RidgeRegression:
    """Learn ``label ~ features`` from a :class:`CovarMatrix`."""

    def __init__(
        self,
        features: Sequence[str],
        label: str,
        regularization: float = 1e-3,
        penalize_intercept: bool = False,
    ):
        if not features:
            raise FIVMError("ridge regression needs at least one feature")
        if label in features:
            raise FIVMError(f"label {label!r} cannot also be a feature")
        if regularization < 0:
            raise FIVMError("regularization must be non-negative")
        self.features = tuple(features)
        self.label = label
        self.regularization = regularization
        self.penalize_intercept = penalize_intercept

    # ------------------------------------------------------------------

    def design(self, covar: CovarMatrix) -> Tuple[np.ndarray, np.ndarray, float, Tuple[Column, ...]]:
        """Extract (A, b, N, feature_columns) from the COVAR matrix."""
        label_indices = covar.columns_of(self.label)
        if len(label_indices) != 1 or covar.columns[label_indices[0]].category is not None:
            raise FIVMError(
                f"label {self.label!r} must be a single continuous column"
            )
        label_index = label_indices[0]
        feature_indices = []
        for attr in self.features:
            feature_indices.extend(covar.columns_of(attr))
        columns = tuple(covar.columns[i] for i in feature_indices)
        extended = covar.extended()
        # Rows/cols of the extended matrix: 0 is the intercept, i+1 is column i.
        take = np.array([0] + [i + 1 for i in feature_indices])
        a = extended[np.ix_(take, take)]
        b = extended[take, label_index + 1]
        return a, b, covar.count, columns

    def _ridge_mask(self, dimension: int) -> np.ndarray:
        mask = np.ones(dimension)
        if not self.penalize_intercept:
            mask[0] = 0.0
        return mask

    # ------------------------------------------------------------------

    def fit(
        self,
        covar: CovarMatrix,
        theta0: Optional[np.ndarray] = None,
        learning_rate: Optional[float] = None,
        max_iterations: int = 2000,
        tolerance: float = 1e-9,
    ) -> RidgeModel:
        """Batch gradient descent (warm-startable via ``theta0``)."""
        a, b, n, columns = self.design(covar)
        if n <= 0:
            raise FIVMError("cannot fit on an empty training dataset")
        d = len(columns) + 1
        mask = self._ridge_mask(d)
        theta = (
            np.zeros(d)
            if theta0 is None
            else np.asarray(theta0, dtype=float).copy()
        )
        if theta.shape != (d,):
            raise FIVMError(
                f"theta0 has shape {theta.shape}, expected ({d},) — did the "
                "one-hot columns change between bulks?"
            )
        if learning_rate is None:
            # 1/L with L the Lipschitz constant of the gradient.
            lipschitz = float(np.linalg.eigvalsh(a / n)[-1]) + self.regularization
            learning_rate = 1.0 if lipschitz <= 0 else 1.0 / lipschitz
        gradient_norm = float("inf")
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            gradient = (a @ theta - b) / n + self.regularization * mask * theta
            gradient_norm = float(np.linalg.norm(gradient))
            if gradient_norm <= tolerance:
                break
            theta -= learning_rate * gradient
        model = RidgeModel(
            feature_columns=columns,
            label=self.label,
            theta=theta,
            iterations=iterations,
            converged=gradient_norm <= tolerance,
            gradient_norm=gradient_norm,
        )
        model.training_rmse = self.training_rmse(covar, model)
        return model

    def fit_closed_form(self, covar: CovarMatrix) -> RidgeModel:
        """Direct solve of the regularized normal equations."""
        a, b, n, columns = self.design(covar)
        if n <= 0:
            raise FIVMError("cannot fit on an empty training dataset")
        d = len(columns) + 1
        mask = self._ridge_mask(d)
        system = a / n + self.regularization * np.diag(mask)
        try:
            theta = np.linalg.solve(system, b / n)
        except np.linalg.LinAlgError:
            theta, *_ = np.linalg.lstsq(system, b / n, rcond=None)
        model = RidgeModel(
            feature_columns=columns,
            label=self.label,
            theta=theta,
            iterations=0,
            converged=True,
            gradient_norm=0.0,
        )
        model.training_rmse = self.training_rmse(covar, model)
        return model

    # ------------------------------------------------------------------

    def training_rmse(self, covar: CovarMatrix, model: RidgeModel) -> float:
        """Training RMSE from sufficient statistics only.

        ``sum (theta^T z - y)^2 = theta^T A theta - 2 theta^T b + sum y^2``,
        every term available in the COVAR matrix.
        """
        a, b, n, _columns = self.design(covar)
        label_index = covar.columns_of(self.label)[0]
        sum_y2 = float(covar.moments[label_index, label_index])
        theta = model.theta
        sse = float(theta @ a @ theta - 2.0 * theta @ b + sum_y2)
        return float(np.sqrt(max(sse, 0.0) / n))
