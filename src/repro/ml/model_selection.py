"""Model selection by mutual information with a label (Figure 2a).

The Model Selection tab ranks every attribute by its pairwise MI with a
chosen label attribute and selects the ones above a threshold as model
features. Under updates, attributes move in and out of the selected set —
which is the behaviour the demo lets users watch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import FIVMError
from repro.ml.mi import MIMatrix

__all__ = ["FeatureRanking", "rank_features", "select_features"]


@dataclass
class FeatureRanking:
    """Attributes ranked by MI with the label, highest first."""

    label: str
    ranked: Tuple[Tuple[str, float], ...]

    def selected(self, threshold: float) -> Tuple[str, ...]:
        """Attributes whose MI with the label is at least ``threshold``."""
        return tuple(attr for attr, mi in self.ranked if mi >= threshold)

    def render(self, threshold: float) -> str:
        """The tab's ranked list with the selection cut-off marked."""
        lines = [f"label: {self.label}   threshold: {threshold:g}"]
        for attr, mi in self.ranked:
            marker = "✔" if mi >= threshold else " "
            lines.append(f"  [{marker}] {attr:<28} MI={mi:.4f}")
        return "\n".join(lines)


def rank_features(mi: MIMatrix, label: str) -> FeatureRanking:
    """Rank all non-label attributes by MI with ``label`` (descending)."""
    if label not in mi.attributes:
        raise FIVMError(f"label {label!r} not in MI matrix")
    scored: List[Tuple[str, float]] = [
        (attr, mi.mi(label, attr))
        for attr in mi.attributes
        if attr != label
    ]
    scored.sort(key=lambda pair: (-pair[1], pair[0]))
    return FeatureRanking(label=label, ranked=tuple(scored))


def select_features(mi: MIMatrix, label: str, threshold: float) -> Tuple[str, ...]:
    """Attributes with MI(label, X) >= threshold, ranked."""
    return rank_features(mi, label).selected(threshold)
