"""Chow-Liu trees: optimal tree-shaped Bayesian networks.

The Chow-Liu algorithm (ref [1]) builds the maximum-weight spanning tree
of the complete graph whose edge weights are pairwise mutual information;
the result maximizes total likelihood among all tree-shaped models. The
demo rebuilds the tree from the maintained MI matrix after every bulk.

Prim's algorithm with deterministic tie-breaking (larger MI first, then
lexicographic endpoints) keeps the output stable across runs, which the
update-stream tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import FIVMError
from repro.ml.mi import MIMatrix

__all__ = ["ChowLiuTree", "chow_liu_tree"]


@dataclass
class ChowLiuTree:
    """A rooted spanning tree over attributes with MI edge weights."""

    root: str
    edges: Tuple[Tuple[str, str, float], ...]
    parent: Dict[str, Optional[str]] = field(default_factory=dict)

    @property
    def total_weight(self) -> float:
        return sum(weight for _u, _v, weight in self.edges)

    def children(self, attr: str) -> Tuple[str, ...]:
        return tuple(
            child
            for child, parent in self.parent.items()
            if parent == attr
        )

    def render(self) -> str:
        """ASCII tree rooted at :attr:`root` (the Chow-Liu tab's drawing)."""
        weights = {(u, v): w for u, v, w in self.edges}
        weights.update({(v, u): w for u, v, w in self.edges})
        lines: List[str] = []

        def visit(node: str, depth: int) -> None:
            if depth == 0:
                lines.append(node)
            else:
                weight = weights[(self.parent[node], node)]
                lines.append("  " * depth + f"└─ {node} (MI={weight:.3f})")
            for child in sorted(self.children(node)):
                visit(child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)


def chow_liu_tree(mi: MIMatrix, root: Optional[str] = None) -> ChowLiuTree:
    """Maximum-MI spanning tree via Prim's algorithm."""
    attributes = list(mi.attributes)
    if not attributes:
        raise FIVMError("cannot build a Chow-Liu tree over zero attributes")
    if root is None:
        root = attributes[0]
    elif root not in attributes:
        raise FIVMError(f"root {root!r} is not an attribute of the MI matrix")
    in_tree = {root}
    parent: Dict[str, Optional[str]] = {root: None}
    edges: List[Tuple[str, str, float]] = []
    while len(in_tree) < len(attributes):
        best: Optional[Tuple[float, str, str]] = None
        for u in sorted(in_tree):
            for v in attributes:
                if v in in_tree:
                    continue
                weight = mi.mi(u, v)
                candidate = (weight, u, v)
                if best is None or (
                    candidate[0] > best[0]
                    or (candidate[0] == best[0] and (candidate[1], candidate[2]) < (best[1], best[2]))
                ):
                    best = candidate
        weight, u, v = best
        in_tree.add(v)
        parent[v] = u
        edges.append((u, v, weight))
    return ChowLiuTree(root=root, edges=tuple(edges), parent=parent)
