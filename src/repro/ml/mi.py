"""Pairwise mutual information from maintained count aggregates.

Section 2, MI: for categorical attributes X and Y the maintained payload
already holds every count needed —

- ``C_0``  : the total count (payload ``c``),
- ``C_X``  : counts grouped by X (payload ``s`` entries),
- ``C_XY`` : counts grouped by (X, Y) (payload ``Q`` entries) —

and the MI is::

    I(X, Y) = sum_{x, y} C_XY(x,y)/C_0 * log( C_0 * C_XY(x,y) / (C_X(x) C_Y(y)) )

The diagonal is the entropy H(X) (the self-information I(X, X)).
Logarithms are natural; scale by 1/ln 2 for bits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import FIVMError
from repro.rings.cofactor import GeneralCofactor, GeneralCofactorRing
from repro.rings.relational import RelationRing, RelationValue
from repro.rings.specs import PayloadPlan

__all__ = ["MIMatrix", "mutual_information_matrix", "pairwise_mi", "entropy"]


@dataclass
class MIMatrix:
    """Symmetric matrix of pairwise MI values (diagonal: entropies)."""

    attributes: Tuple[str, ...]
    values: np.ndarray

    def mi(self, x: str, y: str) -> float:
        i = self._index(x)
        j = self._index(y)
        return float(self.values[i, j])

    def _index(self, attr: str) -> int:
        try:
            return self.attributes.index(attr)
        except ValueError:
            raise FIVMError(f"attribute {attr!r} not in MI matrix") from None

    def render(self, precision: int = 3) -> str:
        """ASCII heat-map table (the Chow-Liu tab's matrix)."""
        width = max(max(len(a) for a in self.attributes), 8)
        header = " " * width + " | " + " ".join(
            f"{a:>{width}}" for a in self.attributes
        )
        lines = [header, "-" * len(header)]
        for i, attr in enumerate(self.attributes):
            cells = " ".join(
                f"{self.values[i, j]:>{width}.{precision}f}"
                for j in range(len(self.attributes))
            )
            lines.append(f"{attr:>{width}} | {cells}")
        return "\n".join(lines)


def entropy(c_x: RelationValue, c0: float) -> float:
    """H(X) from the grouped counts C_X and total C_0."""
    if c0 <= 0:
        return 0.0
    total = 0.0
    for annotation in c_x.data.values():
        if annotation > 0:
            p = annotation / c0
            total -= p * math.log(p)
    return total


def pairwise_mi(
    c_xy: RelationValue,
    c_x: RelationValue,
    c_y: RelationValue,
    c0: float,
    x_first: bool,
) -> float:
    """I(X, Y) from the three count relations.

    ``x_first`` says whether X is the first column of ``c_xy``'s canonical
    (sorted-attribute) schema.
    """
    if c0 <= 0 or not c_xy.data:
        return 0.0
    x_counts = {key[0]: annotation for key, annotation in c_x.data.items()}
    y_counts = {key[0]: annotation for key, annotation in c_y.data.items()}
    total = 0.0
    for key, joint in c_xy.data.items():
        if joint <= 0:
            continue
        x_val, y_val = (key[0], key[1]) if x_first else (key[1], key[0])
        cx = x_counts.get(x_val, 0)
        cy = y_counts.get(y_val, 0)
        if cx <= 0 or cy <= 0:
            continue
        total += (joint / c0) * math.log(c0 * joint / (cx * cy))
    return max(total, 0.0)


def mutual_information_matrix(payload: GeneralCofactor, plan: PayloadPlan) -> MIMatrix:
    """Expand the maintained payload into the full pairwise MI matrix."""
    ring = plan.ring
    if not isinstance(ring, GeneralCofactorRing) or not isinstance(
        ring.scalar, RelationRing
    ):
        raise FIVMError(
            "MI requires the generalized cofactor ring with relational values "
            "(use MISpec)"
        )
    for feature in plan.features:
        if not feature.is_categorical:
            raise FIVMError(
                f"MI feature {feature.name!r} must be categorical or binned"
            )
    attributes = plan.layout.attributes
    m = len(attributes)
    c0 = float(payload.c.annotation(())) if payload.c.data else 0.0
    values = np.zeros((m, m))
    marginals: List[RelationValue] = [
        payload.s.get(i, RelationValue()) for i in range(m)
    ]
    for i in range(m):
        values[i, i] = entropy(marginals[i], c0)
        for j in range(i + 1, m):
            joint = payload.q.get((i, j), RelationValue())
            if joint.data:
                # Canonical schemas are sorted, so the first column of the
                # joint relation is whichever attribute name sorts first.
                x_first = joint.schema[0] == _binned_name(plan, i, attributes[i])
            else:
                x_first = True
            mi = pairwise_mi(joint, marginals[i], marginals[j], c0, x_first)
            values[i, j] = mi
            values[j, i] = mi
    return MIMatrix(attributes=attributes, values=values)


def _binned_name(plan: PayloadPlan, slot: int, attr: str) -> str:
    """Relation-value column name for a feature (its attribute name)."""
    return attr
