"""Discretization helpers for MI over continuous attributes.

"When computing the MI for continuous attributes, we first discretize
their values into bins of finite size" (Section 2). These helpers derive
equi-width binnings from observed data so callers don't hand-tune ranges.
"""

from __future__ import annotations

from typing import Iterable

from repro.data.relation import Relation
from repro.errors import DataError
from repro.rings.lifting import Binning, Feature

__all__ = ["binning_from_values", "binning_for_attribute", "binned_feature"]


def binning_from_values(values: Iterable[float], bins: int = 10) -> Binning:
    """Equi-width binning spanning the observed min/max of ``values``."""
    lo = None
    hi = None
    for value in values:
        value = float(value)
        if lo is None or value < lo:
            lo = value
        if hi is None or value > hi:
            hi = value
    if lo is None:
        raise DataError("cannot derive a binning from no values")
    if hi == lo:
        hi = lo + 1.0  # degenerate domain: single bin covers everything
    return Binning(low=lo, high=hi, count=bins)


def binning_for_attribute(relation: Relation, attr: str, bins: int = 10) -> Binning:
    """Binning spanning the values of ``attr`` in a base relation."""
    position = relation.schema.index(attr) if attr in relation.schema else None
    if position is None:
        raise DataError(f"attribute {attr!r} not in relation schema {relation.schema!r}")
    return binning_from_values(
        (key[position] for key in relation.data), bins=bins
    )


def binned_feature(relation: Relation, attr: str, bins: int = 10) -> Feature:
    """A binned (categorical-ized) feature for MI over a continuous attr."""
    binning = binning_for_attribute(relation, attr, bins)
    return Feature(attr, "continuous", binning)
