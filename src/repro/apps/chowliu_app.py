"""Chow-Liu Tree tab (Figure 2c).

Maintains the MI counts over *all* attribute pairs and rebuilds the
optimal tree-shaped Bayesian network after every bulk.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.apps.session import BulkReport, MaintenanceSession
from repro.data.database import Database
from repro.data.relation import Relation
from repro.ml.chowliu import ChowLiuTree, chow_liu_tree
from repro.ml.mi import MIMatrix, mutual_information_matrix
from repro.query.query import Query
from repro.query.variable_order import VariableOrder
from repro.rings.lifting import Feature
from repro.rings.specs import MISpec

__all__ = ["ChowLiuApp"]


class ChowLiuApp:
    """MI matrix + Chow-Liu tree over the full attribute set."""

    def __init__(
        self,
        database: Database,
        relations,
        features: Tuple[Feature, ...],
        root: Optional[str] = None,
        order: Optional[VariableOrder] = None,
    ):
        query = Query("ChowLiu", tuple(relations), spec=MISpec(tuple(features)))
        self.session = MaintenanceSession(database, query, order=order)
        self.root = root

    # ------------------------------------------------------------------

    def process_bulk(self, batches: Iterable[Tuple[str, Relation]]) -> BulkReport:
        return self.session.process(batches)

    def mi_matrix(self) -> MIMatrix:
        return mutual_information_matrix(
            self.session.root_payload(), self.session.plan
        )

    def tree(self) -> ChowLiuTree:
        return chow_liu_tree(self.mi_matrix(), root=self.root)

    def render(self) -> str:
        mi = self.mi_matrix()
        tree = chow_liu_tree(mi, root=self.root)
        return mi.render() + "\n\n" + tree.render()
