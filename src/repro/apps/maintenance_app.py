"""Maintenance Strategy tab (Figure 2d).

Shows the view tree F-IVM uses for the input query and, per view, its
definition in the M3-style representation language.
"""

from __future__ import annotations

from typing import Optional

from repro.query.query import Query
from repro.query.variable_order import VariableOrder
from repro.viewtree.builder import ViewTree, build_view_tree
from repro.viewtree.dot import render_tree_dot
from repro.viewtree.m3 import render_tree_m3, render_view_m3

__all__ = ["MaintenanceStrategyApp"]


class MaintenanceStrategyApp:
    """View tree + M3 code rendering for a query."""

    def __init__(self, query: Query, order: Optional[VariableOrder] = None):
        self.query = query
        self.tree: ViewTree = build_view_tree(query, order=order)

    def render_tree(self) -> str:
        return self.tree.render()

    def render_m3(self) -> str:
        return render_tree_m3(self.tree)

    def render_view(self, view_name: str) -> str:
        return render_view_m3(self.tree, self.tree.views[view_name])

    def render_dot(self) -> str:
        return render_tree_dot(self.tree)

    def render(self) -> str:
        return self.render_tree() + "\n\n" + self.render_m3()
