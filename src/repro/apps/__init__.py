"""The demo's application tabs as library components."""

from repro.apps.chowliu_app import ChowLiuApp
from repro.apps.maintenance_app import MaintenanceStrategyApp
from repro.apps.model_selection_app import ModelSelectionApp
from repro.apps.regression_app import RegressionApp
from repro.apps.session import BulkReport, MaintenanceSession

__all__ = [
    "MaintenanceSession",
    "BulkReport",
    "ModelSelectionApp",
    "RegressionApp",
    "ChowLiuApp",
    "MaintenanceStrategyApp",
]
