"""Maintenance sessions: engine + database + update processing.

A session wires one query to one engine over one database and routes
update batches to both (the engine maintains the result; the database
copy tracks ground truth for checks and for delete generation). It is the
programmatic equivalent of the demo's processing loop: feed a bulk of
updates, then let the application tabs read the refreshed payload.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Tuple

from repro.data.database import Database
from repro.data.relation import Relation
from repro.engine.base import MaintenanceEngine
from repro.engine.fivm import FIVMEngine
from repro.errors import EngineError
from repro.query.query import Query
from repro.query.variable_order import VariableOrder

__all__ = ["BulkReport", "MaintenanceSession"]


@dataclass
class BulkReport:
    """What one processed bulk did and how long it took."""

    batches: int = 0
    updates: int = 0
    seconds: float = 0.0

    @property
    def throughput(self) -> float:
        """Single-tuple updates per second."""
        return self.updates / self.seconds if self.seconds > 0 else float("inf")


class MaintenanceSession:
    """One query maintained by one engine over one evolving database."""

    def __init__(
        self,
        database: Database,
        query: Query,
        order: Optional[VariableOrder] = None,
        engine_factory: Callable[..., MaintenanceEngine] = FIVMEngine,
    ):
        self.query = query
        self.database = database.copy()
        self.engine = engine_factory(query, order=order)
        self.engine.initialize(self.database)
        self.bulks_processed = 0

    # ------------------------------------------------------------------

    def process(self, batches: Iterable[Tuple[str, Relation]]) -> BulkReport:
        """Apply a bulk of update batches; returns a timing report."""
        report = BulkReport()
        started = time.perf_counter()
        for relation_name, delta in batches:
            self.engine.apply(relation_name, delta)
            self.database.apply(relation_name, delta)
            report.batches += 1
            report.updates += sum(abs(m) for m in delta.data.values())
        report.seconds = time.perf_counter() - started
        self.bulks_processed += 1
        return report

    def result(self) -> Relation:
        return self.engine.result()

    def root_payload(self):
        """Payload of the (empty-key) root — the maintained compound aggregate."""
        result = self.engine.result()
        if result.schema != ():
            raise EngineError(
                f"root view is keyed by {result.schema!r}; root_payload() "
                "expects a fully aggregated query"
            )
        return result.payload(())

    @property
    def plan(self):
        return self.engine.plan
