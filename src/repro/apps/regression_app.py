"""Regression tab (Figure 2b).

Maintains the COVAR matrix for the chosen features and label; after every
bulk a batch gradient descent solver *resumes* convergence from the
previous parameters against the refreshed matrix — the warm-start pattern
of the demo (and ref [5]).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.apps.session import BulkReport, MaintenanceSession
from repro.data.database import Database
from repro.data.relation import Relation
from repro.errors import FIVMError
from repro.ml.covar import CovarMatrix, covar_from_payload
from repro.ml.regression import RidgeModel, RidgeRegression
from repro.query.query import Query
from repro.query.variable_order import VariableOrder
from repro.rings.lifting import Feature
from repro.rings.specs import CovarSpec

__all__ = ["RegressionApp"]


class RegressionApp:
    """Ridge linear regression over a maintained COVAR matrix."""

    def __init__(
        self,
        database: Database,
        relations,
        features: Tuple[Feature, ...],
        label: str,
        regularization: float = 1e-2,
        order: Optional[VariableOrder] = None,
        backend: str = "auto",
    ):
        names = [feature.name for feature in features]
        if label not in names:
            raise FIVMError(f"label {label!r} must be one of the COVAR features")
        query = Query(
            "Regression",
            tuple(relations),
            spec=CovarSpec(tuple(features), backend=backend),
        )
        self.session = MaintenanceSession(database, query, order=order)
        self.solver = RidgeRegression(
            features=[name for name in names if name != label],
            label=label,
            regularization=regularization,
        )
        self._theta: Optional[np.ndarray] = None
        self.model: Optional[RidgeModel] = None

    # ------------------------------------------------------------------

    def process_bulk(self, batches: Iterable[Tuple[str, Relation]]) -> BulkReport:
        return self.session.process(batches)

    def covar(self) -> CovarMatrix:
        return covar_from_payload(self.session.root_payload(), self.session.plan)

    def refresh_model(self, max_iterations: int = 2000) -> RidgeModel:
        """Re-converge parameters against the current COVAR matrix.

        Warm-starts from the previous bulk's parameters when the one-hot
        column set is unchanged; otherwise restarts from zero (a category
        appeared or disappeared under updates).
        """
        covar = self.covar()
        theta0 = self._theta
        if theta0 is not None:
            expected = 1 + sum(
                len(covar.columns_of(attr)) for attr in self.solver.features
            )
            if theta0.shape != (expected,):
                theta0 = None
        self.model = self.solver.fit(
            covar, theta0=theta0, max_iterations=max_iterations
        )
        self._theta = self.model.theta.copy()
        return self.model

    def render(self) -> str:
        """Parameters and training RMSE (the tab's right-hand panel)."""
        if self.model is None:
            self.refresh_model()
        lines = [
            f"ridge λ={self.solver.regularization:g}  "
            f"RMSE={self.model.training_rmse:.4f}  "
            f"iterations={self.model.iterations}",
            f"  intercept: {self.model.intercept:+.4f}",
        ]
        for label, weight in self.model.coefficients().items():
            lines.append(f"  {label:<28} {weight:+.4f}")
        return "\n".join(lines)
