"""Model Selection tab (Figure 2a).

Maintains the MI count matrix, ranks all attributes by pairwise MI with a
chosen label, and selects the ones above a threshold. After every bulk the
ranking refreshes, so "users can observe how relevant attributes become
irrelevant to predicting the label or vice-versa".
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.apps.session import BulkReport, MaintenanceSession
from repro.data.database import Database
from repro.data.relation import Relation
from repro.errors import FIVMError
from repro.ml.mi import MIMatrix, mutual_information_matrix
from repro.ml.model_selection import FeatureRanking, rank_features
from repro.query.query import Query
from repro.query.variable_order import VariableOrder
from repro.rings.lifting import Feature
from repro.rings.specs import MISpec

__all__ = ["ModelSelectionApp"]


class ModelSelectionApp:
    """Rank features by MI with a label; select above a threshold."""

    def __init__(
        self,
        database: Database,
        relations,
        features: Tuple[Feature, ...],
        label: str,
        threshold: float = 0.2,
        order: Optional[VariableOrder] = None,
    ):
        if label not in {feature.name for feature in features}:
            raise FIVMError(f"label {label!r} must be one of the MI features")
        self.label = label
        self.threshold = threshold
        query = Query("ModelSelection", tuple(relations), spec=MISpec(tuple(features)))
        self.session = MaintenanceSession(database, query, order=order)

    # ------------------------------------------------------------------

    def process_bulk(self, batches: Iterable[Tuple[str, Relation]]) -> BulkReport:
        return self.session.process(batches)

    def mi_matrix(self) -> MIMatrix:
        return mutual_information_matrix(
            self.session.root_payload(), self.session.plan
        )

    def ranking(self) -> FeatureRanking:
        return rank_features(self.mi_matrix(), self.label)

    def selected_features(self) -> Tuple[str, ...]:
        return self.ranking().selected(self.threshold)

    def render(self) -> str:
        return self.ranking().render(self.threshold)
