"""Variable orders: the skeleton of F-IVM's view trees.

A variable order is a rooted forest over a chosen subset of the query's
attributes (its *variables*), with every base relation anchored at one
node. It generalizes join orders the way factorized query plans do: one
view per variable, keyed by the variable's *dependency set* — the ancestor
variables that co-occur with its subtree (cf. the view keys in Figure 2d,
e.g. ``V@ksn[dateid, locn]``).

Attributes that are **not** variables must be local to a single relation;
they are lifted and aggregated away in that relation's leaf view. Shared
attributes and free (group-by) attributes must be variables.

Validity of an order for a query (checked by :meth:`VariableOrder.validate`):

1. every variable occurs at exactly one node;
2. every relation is anchored at exactly one node, and the relation's
   variables all lie on the root-to-anchor path;
3. every attribute shared by two relations, and every free attribute, is a
   variable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import QueryError
from repro.query.query import Query

__all__ = ["VONode", "VariableOrder"]


class VONode:
    """One variable of the order, its children and anchored relations."""

    __slots__ = ("variable", "children", "relations")

    def __init__(
        self,
        variable: str,
        children: Iterable["VONode"] = (),
        relations: Iterable[str] = (),
    ):
        self.variable = variable
        self.children: Tuple[VONode, ...] = tuple(children)
        self.relations: Tuple[str, ...] = tuple(relations)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        bits = [self.variable]
        if self.relations:
            bits.append(f"rels={list(self.relations)}")
        if self.children:
            bits.append(f"children={[c.variable for c in self.children]}")
        return f"VONode({', '.join(bits)})"


class VariableOrder:
    """A rooted forest of :class:`VONode` plus root-anchored relations.

    ``root_relations`` anchors relations that have no variables at all
    (e.g. a single-relation query with every attribute aggregated away);
    their leaf views join at the virtual root.
    """

    def __init__(
        self,
        roots: Iterable[VONode],
        root_relations: Iterable[str] = (),
    ):
        self.roots: Tuple[VONode, ...] = tuple(roots)
        self.root_relations: Tuple[str, ...] = tuple(root_relations)
        self._parent: Dict[str, Optional[str]] = {}
        self._nodes: Dict[str, VONode] = {}
        self._anchor: Dict[str, str] = {}
        for root in self.roots:
            self._index(root, None)

    def _index(self, node: VONode, parent: Optional[str]) -> None:
        if node.variable in self._nodes:
            raise QueryError(f"variable {node.variable!r} occurs twice in the order")
        self._nodes[node.variable] = node
        self._parent[node.variable] = parent
        for name in node.relations:
            if name in self._anchor:
                raise QueryError(f"relation {name!r} anchored twice")
            self._anchor[name] = node.variable
        for child in node.children:
            self._index(child, node.variable)

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------

    @property
    def variables(self) -> Tuple[str, ...]:
        """All variables, in pre-order."""
        out: List[str] = []

        def visit(node: VONode) -> None:
            out.append(node.variable)
            for child in node.children:
                visit(child)

        for root in self.roots:
            visit(root)
        return tuple(out)

    def node(self, variable: str) -> VONode:
        try:
            return self._nodes[variable]
        except KeyError:
            raise QueryError(f"unknown variable {variable!r}") from None

    def parent(self, variable: str) -> Optional[str]:
        self.node(variable)
        return self._parent[variable]

    def ancestors(self, variable: str) -> Tuple[str, ...]:
        """Ancestors of ``variable`` from root down to its parent."""
        chain: List[str] = []
        current = self.parent(variable)
        while current is not None:
            chain.append(current)
            current = self._parent[current]
        return tuple(reversed(chain))

    def path_to_root(self, variable: str) -> Tuple[str, ...]:
        """``variable`` followed by its ancestors up to the root."""
        return (variable,) + tuple(reversed(self.ancestors(variable)))

    def anchor_of(self, relation_name: str) -> Optional[str]:
        """Variable whose node anchors ``relation_name`` (None = root)."""
        if relation_name in self.root_relations:
            return None
        if relation_name not in self._anchor:
            raise QueryError(f"relation {relation_name!r} is not anchored")
        return self._anchor[relation_name]

    @property
    def anchored_relations(self) -> Tuple[str, ...]:
        return tuple(self._anchor) + self.root_relations

    def subtree_variables(self, variable: str) -> Tuple[str, ...]:
        out: List[str] = []

        def visit(node: VONode) -> None:
            out.append(node.variable)
            for child in node.children:
                visit(child)

        visit(self.node(variable))
        return tuple(out)

    def subtree_relations(self, variable: str) -> Tuple[str, ...]:
        out: List[str] = []

        def visit(node: VONode) -> None:
            out.extend(node.relations)
            for child in node.children:
                visit(child)

        visit(self.node(variable))
        return tuple(out)

    # ------------------------------------------------------------------
    # Validation and dependency sets
    # ------------------------------------------------------------------

    def validate(self, query: Query) -> None:
        """Raise :class:`QueryError` unless this order is valid for ``query``."""
        variables = set(self.variables)
        attrs = set(query.attributes)
        for variable in variables:
            if variable not in attrs:
                raise QueryError(f"order variable {variable!r} not in query")
        for attr in query.join_attributes:
            if attr not in variables:
                raise QueryError(
                    f"shared attribute {attr!r} must be a variable of the order"
                )
        for attr in query.free:
            if attr not in variables:
                raise QueryError(
                    f"free attribute {attr!r} must be a variable of the order"
                )
        anchored = set(self.anchored_relations)
        for schema in query.relations:
            if schema.name not in anchored:
                raise QueryError(f"relation {schema.name!r} is not anchored")
            anchor = self.anchor_of(schema.name)
            path = set(self.path_to_root(anchor)) if anchor is not None else set()
            rel_vars = set(schema.attributes) & variables
            stray = rel_vars - path
            if stray:
                raise QueryError(
                    f"variables {sorted(stray)} of relation {schema.name!r} are "
                    f"not on the root path of its anchor {anchor!r}"
                )
        for name in anchored:
            query.schema_of(name)  # raises for unknown relations

    def dependency_set(self, query: Query, variable: str) -> Tuple[str, ...]:
        """dep(X): ancestors of X co-occurring with X's subtree.

        These are the group-by keys of the view V@X (Figure 2d). Ordered
        root-first along the path for deterministic view schemas.
        """
        variables = set(self.variables)
        subtree_rel_attrs = set()
        for name in self.subtree_relations(variable):
            subtree_rel_attrs |= set(query.schema_of(name).attributes) & variables
        ancestors = self.ancestors(variable)
        return tuple(attr for attr in ancestors if attr in subtree_rel_attrs)

    def free_below(self, query: Query, variable: str) -> Tuple[str, ...]:
        """Free variables within the subtree of ``variable`` (carried keys)."""
        free = set(query.free)
        return tuple(
            v for v in self.subtree_variables(variable) if v in free
        )

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------

    @classmethod
    def chain(
        cls,
        variables: Tuple[str, ...],
        anchors: Dict[str, str],
        root_relations: Iterable[str] = (),
    ) -> "VariableOrder":
        """A single-path order (always valid if variables cover the query).

        ``anchors`` maps relation names to the variable they anchor at.
        """
        node: Optional[VONode] = None
        for variable in reversed(variables):
            relations = tuple(
                name for name, anchor in anchors.items() if anchor == variable
            )
            node = VONode(
                variable,
                children=(node,) if node is not None else (),
                relations=relations,
            )
        roots = (node,) if node is not None else ()
        return cls(roots, root_relations)

    def render(self) -> str:
        """ASCII rendering of the forest (for docs and debugging)."""
        lines: List[str] = []

        def visit(node: VONode, depth: int) -> None:
            label = node.variable
            if node.relations:
                label += "  [" + ", ".join(node.relations) + "]"
            lines.append("  " * depth + label)
            for child in node.children:
                visit(child, depth + 1)

        for root in self.roots:
            visit(root, 0)
        for name in self.root_relations:
            lines.append(f"[{name}]")
        return "\n".join(lines)
