"""Queries, join hypergraphs, variable orders and the planner."""

from repro.query.hypergraph import Hypergraph
from repro.query.planner import plan_variable_order, required_variables
from repro.query.query import Query
from repro.query.variable_order import VONode, VariableOrder

__all__ = [
    "Hypergraph",
    "Query",
    "VONode",
    "VariableOrder",
    "plan_variable_order",
    "required_variables",
]
