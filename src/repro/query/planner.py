"""Greedy variable-order planner.

Given a query, pick a good variable order automatically:

- the variables are the attributes that *must* be variables (shared or
  free), plus any the caller requests;
- the order is built top-down: in each connected component of the join
  hypergraph, choose the variable covering the most relations (free
  variables first, ties by name for determinism), then recurse into the
  components that remain after removing it;
- a relation anchors at the node where its last variable is chosen.

Because all variables of one relation are pairwise connected (they share
that relation's hyperedge), they always stay in one component, so every
produced order is valid. For acyclic queries this mirrors the classical
join-tree decomposition; for cyclic queries the dependency sets simply
grow, matching F-IVM's behaviour.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

from repro.errors import QueryError

from repro.query.query import Query
from repro.query.variable_order import VONode, VariableOrder

__all__ = ["plan_variable_order", "required_variables"]


def required_variables(query: Query) -> Tuple[str, ...]:
    """Attributes that must appear as variables: shared or free."""
    shared = set(query.join_attributes)
    out = []
    for attr in query.attributes:
        if attr in shared or attr in query.free:
            out.append(attr)
    return tuple(out)


def plan_variable_order(
    query: Query,
    extra_variables: Iterable[str] = (),
) -> VariableOrder:
    """Build a valid variable order for ``query``.

    ``extra_variables`` forces additional attributes to become variables
    (e.g. to marginalize a lifted attribute at a dedicated node rather
    than in its relation's leaf view).
    """
    variables: List[str] = list(required_variables(query))
    for attr in extra_variables:
        if attr not in query.attributes:
            raise QueryError(f"extra variable {attr!r} not in query")
        if attr not in variables:
            variables.append(attr)
    graph = query.hypergraph()
    free = set(query.free)

    def choose(component_vars: Set[str], component_edges: Sequence[str]) -> str:
        def degree(var: str) -> int:
            return sum(1 for name in component_edges if var in graph.edges[name])

        candidates = sorted(
            component_vars,
            key=lambda var: (var not in free, -degree(var), var),
        )
        return candidates[0]

    def decompose(component_vars: Set[str], component_edges: List[str]) -> VONode:
        variable = choose(component_vars, component_edges)
        remaining = component_vars - {variable}
        children: List[VONode] = []
        anchored: List[str] = []
        for sub_vars, sub_edges in graph.components(remaining, component_edges):
            if sub_vars:
                children.append(decompose(sub_vars, sub_edges))
            else:
                anchored.extend(sub_edges)
        children.sort(key=lambda node: node.variable)
        return VONode(variable, children=children, relations=sorted(anchored))

    roots: List[VONode] = []
    root_relations: List[str] = []
    variable_set = set(variables)
    for comp_vars, comp_edges in graph.components(variable_set, list(graph.edges)):
        if comp_vars:
            roots.append(decompose(comp_vars, comp_edges))
        else:
            root_relations.extend(comp_edges)
    roots.sort(key=lambda node: node.variable)
    order = VariableOrder(roots, sorted(root_relations))
    order.validate(query)
    return order
