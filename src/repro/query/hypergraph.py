"""Join hypergraphs: connectivity and GYO acyclicity.

The query's join structure is a hypergraph with one vertex per attribute
and one hyperedge per relation schema. The planner decomposes it into a
variable order; the GYO (Graham/Yu-Ozsoyoglu) reduction classifies queries
as (alpha-)acyclic — for acyclic queries F-IVM's views stay no larger than
the base relations along the chosen order, which is where the maintenance
wins come from.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

__all__ = ["Hypergraph"]


class Hypergraph:
    """An attribute/relation join hypergraph."""

    def __init__(self, edges: Dict[str, Iterable[str]]):
        #: edge name (relation) -> frozenset of vertices (attributes)
        self.edges: Dict[str, FrozenSet[str]] = {
            name: frozenset(attrs) for name, attrs in edges.items()
        }
        self.vertices: FrozenSet[str] = frozenset().union(*self.edges.values()) if self.edges else frozenset()

    def edges_with(self, vertex: str) -> Tuple[str, ...]:
        """Names of hyperedges containing ``vertex``."""
        return tuple(name for name, attrs in self.edges.items() if vertex in attrs)

    def vertex_degree(self, vertex: str) -> int:
        """Number of hyperedges containing ``vertex``."""
        return sum(1 for attrs in self.edges.values() if vertex in attrs)

    def shared_vertices(self) -> FrozenSet[str]:
        """Vertices occurring in at least two hyperedges (the join keys)."""
        return frozenset(v for v in self.vertices if self.vertex_degree(v) >= 2)

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------

    def components(
        self, vertices: Iterable[str], edge_names: Iterable[str]
    ) -> List[Tuple[Set[str], List[str]]]:
        """Connected components of the sub-hypergraph.

        Restricted to ``vertices``; only ``edge_names`` participate. Returns
        ``(component_vertices, component_edges)`` pairs; edges whose
        restriction to ``vertices`` is empty form singleton edge-only
        components (their relations join by cartesian product).
        """
        vertex_set = set(vertices)
        remaining_edges = list(edge_names)
        restricted = {
            name: self.edges[name] & vertex_set for name in remaining_edges
        }
        assigned: Dict[str, int] = {}
        components: List[Tuple[Set[str], List[str]]] = []
        for name in remaining_edges:
            attrs = restricted[name]
            if not attrs:
                components.append((set(), [name]))
                continue
            hit = {assigned[v] for v in attrs if v in assigned}
            if not hit:
                index = len(components)
                components.append((set(attrs), [name]))
            else:
                index = min(hit)
                target_vertices, target_edges = components[index]
                # merge any other touched components into the first
                for other in sorted(hit - {index}, reverse=True):
                    other_vertices, other_edges = components[other]
                    target_vertices |= other_vertices
                    target_edges.extend(other_edges)
                    for v in other_vertices:
                        assigned[v] = index
                    components[other] = (set(), [])
                target_vertices |= attrs
                target_edges.append(name)
            for v in attrs:
                assigned[v] = index
        return [
            (vertices_, edges_) for vertices_, edges_ in components if edges_
        ]

    def is_connected(self) -> bool:
        relevant = [c for c in self.components(self.vertices, self.edges) if c[1]]
        return len(relevant) <= 1

    # ------------------------------------------------------------------
    # GYO reduction
    # ------------------------------------------------------------------

    def is_acyclic(self) -> bool:
        """Alpha-acyclicity via the GYO ear-removal reduction.

        Repeatedly remove (1) vertices occurring in a single remaining edge
        and (2) edges contained in another remaining edge; the query is
        acyclic iff everything reduces away.
        """
        edges: Dict[str, Set[str]] = {
            name: set(attrs) for name, attrs in self.edges.items()
        }
        changed = True
        while changed and len(edges) > 1:
            changed = False
            # Rule 1: drop vertices local to one edge.
            counts: Dict[str, int] = {}
            for attrs in edges.values():
                for v in attrs:
                    counts[v] = counts.get(v, 0) + 1
            for attrs in edges.values():
                lonely = {v for v in attrs if counts[v] == 1}
                if lonely:
                    attrs -= lonely
                    changed = True
            # Rule 2: drop edges contained in other edges (incl. now-empty).
            names = list(edges)
            for name in names:
                attrs = edges[name]
                for other, other_attrs in edges.items():
                    if other != name and attrs <= other_attrs:
                        del edges[name]
                        changed = True
                        break
        if not edges:
            return True
        if len(edges) == 1:
            return True
        return all(not attrs for attrs in edges.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"{name}({', '.join(sorted(attrs))})" for name, attrs in self.edges.items()
        )
        return f"<Hypergraph {parts}>"
