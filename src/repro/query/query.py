"""Queries: natural joins with a compound aggregate payload.

A :class:`Query` is the paper's object of maintenance::

    SELECT free..., SUM(g_X1(X1) * ... * g_Xk(Xk))
    FROM R1 NATURAL JOIN ... NATURAL JOIN Rn
    GROUP BY free...

The ``spec`` (a :class:`~repro.rings.specs.PayloadSpec`) decides the ring
and which attributes are lifted; everything else — the join, the free
variables, the view tree — is ring-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.data.schema import RelationSchema
from repro.errors import QueryError
from repro.query.hypergraph import Hypergraph
from repro.rings.specs import CountSpec, PayloadPlan, PayloadSpec

__all__ = ["Query"]


@dataclass
class Query:
    """A natural-join query with a payload specification.

    Parameters
    ----------
    name:
        Identifier used in plans and rendered M3 code.
    relations:
        Schemas of the joined relations (at least one).
    spec:
        What to maintain (count / SUM / COVAR / MI). Default: count.
    free:
        Group-by attributes kept as keys of the result (often empty: the
        demo applications group inside the ring instead).
    """

    name: str
    relations: Tuple[RelationSchema, ...]
    spec: PayloadSpec = field(default_factory=CountSpec)
    free: Tuple[str, ...] = ()

    def __post_init__(self):
        if not self.relations:
            raise QueryError(f"query {self.name!r} joins no relations")
        names = [schema.name for schema in self.relations]
        if len(set(names)) != len(names):
            raise QueryError(f"query {self.name!r} joins a relation twice: {names}")
        attrs = self.attributes
        for attr in self.free:
            if attr not in attrs:
                raise QueryError(f"free variable {attr!r} not in any relation")
        for attr in self.spec.lifted_attributes:
            if attr not in attrs:
                raise QueryError(f"lifted attribute {attr!r} not in any relation")

    # ------------------------------------------------------------------

    @property
    def relation_names(self) -> Tuple[str, ...]:
        return tuple(schema.name for schema in self.relations)

    @property
    def attributes(self) -> Tuple[str, ...]:
        """All attributes, in first-seen order across relations."""
        seen: Dict[str, None] = {}
        for schema in self.relations:
            for attr in schema.attributes:
                seen.setdefault(attr)
        return tuple(seen)

    @property
    def join_attributes(self) -> Tuple[str, ...]:
        """Attributes occurring in at least two relations."""
        counts: Dict[str, int] = {}
        for schema in self.relations:
            for attr in schema.attributes:
                counts[attr] = counts.get(attr, 0) + 1
        return tuple(attr for attr in self.attributes if counts[attr] >= 2)

    def schema_of(self, relation_name: str) -> RelationSchema:
        for schema in self.relations:
            if schema.name == relation_name:
                return schema
        raise QueryError(f"relation {relation_name!r} not in query {self.name!r}")

    def hypergraph(self) -> Hypergraph:
        return Hypergraph(
            {schema.name: schema.attributes for schema in self.relations}
        )

    def is_acyclic(self) -> bool:
        return self.hypergraph().is_acyclic()

    def build_plan(self) -> PayloadPlan:
        """Build the payload ring and per-attribute lifting functions."""
        return self.spec.build()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rels = " ⋈ ".join(
            f"{s.name}({', '.join(s.attributes)})" for s in self.relations
        )
        return f"<Query {self.name}: {rels}>"
