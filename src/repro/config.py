"""One frozen description of how to build a maintenance engine.

Engine construction had accreted a kwarg sprawl — ``use_view_index``,
``use_columnar``, ``use_fused``, ``shards``, ``backend``,
``columnar_transport``, … — duplicated across :class:`FIVMEngine`,
:class:`ShardedEngine` and dozens of hand-registered CLI flags.
:class:`EngineConfig` consolidates all of it into a single frozen
dataclass:

- :func:`create_engine` builds the right engine (sharded coordinator or
  plain F-IVM) from a config;
- the legacy constructor kwargs keep working through
  :func:`resolve_engine_config`, a deprecation shim with a single
  ``DeprecationWarning`` path;
- :func:`add_engine_cli_args` / :func:`engine_config_from_args` derive
  the CLI's ``--engine-*`` flag namespace from the config fields (old
  spellings like ``--shards`` and ``--no-columnar`` stay as aliases), so
  ``repro bench``, ``repro checkpoint`` and ``repro serve`` share one
  source of truth;
- ``export_state`` / checkpoint headers record ``EngineConfig.to_dict``
  for provenance, so a snapshot knows exactly how its engine was built.
"""

from __future__ import annotations

import argparse
import warnings
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import DataError, EngineError, RingError

__all__ = [
    "EngineConfig",
    "create_engine",
    "resolve_engine_config",
    "add_engine_cli_args",
    "engine_config_from_args",
]

#: Values accepted by the ``backend`` field (before resolution).
BACKEND_CHOICES = ("auto", "serial", "process")
#: Values accepted by the ``transport`` field (before resolution).
TRANSPORT_CHOICES = ("auto", "pipe", "shm")


@dataclass(frozen=True)
class EngineConfig:
    """Every tunable of engine construction, in one immutable value.

    A config with ``shards == 1`` describes a plain
    :class:`~repro.engine.fivm.FIVMEngine`; ``shards > 1`` describes a
    :class:`~repro.engine.sharded.ShardedEngine` coordinator whose
    per-shard engines inherit the F-IVM fields. Validation happens at
    construction, so a config that exists is a config that builds.
    """

    #: Number of hash partitions (1 = unsharded F-IVM).
    shards: int = 1
    #: Shard execution backend: ``auto`` | ``serial`` | ``process``.
    backend: str = "auto"
    #: Shard data plane: ``auto`` (shared memory when available) |
    #: ``pipe`` | ``shm``. Only meaningful for the process backend.
    transport: str = "auto"
    #: Explicit shard attributes (default: derived from the view tree).
    shard_attrs: Optional[Tuple[str, ...]] = None
    #: Ship pipe-transport deltas in columnar wire form (ablation switch;
    #: the shm transport is always columnar).
    columnar_transport: bool = True
    #: F-IVM: persistent hash indexes on sibling views.
    use_view_index: bool = True
    #: F-IVM: adaptive probe-vs-scan choice per maintenance step.
    adaptive_probe: bool = True
    #: F-IVM: columnar maintenance ladder — ``"auto"`` | True | False.
    use_columnar: Any = "auto"
    #: F-IVM: fused per-path kernels over the columnar ladder.
    use_fused: bool = True
    #: F-IVM: accumulate per-stage wall-clock into ``stats.stage_seconds``.
    profile_stages: bool = False
    #: Windowed maintenance: ``"tumbling:SIZE"`` or ``"sliding:SIZE/SLIDE"``
    #: (event-time units). The stream layer compiles the window to delayed
    #: retractions (:class:`~repro.data.windows.WindowedStream`); snapshots
    #: carry the window bounds as provenance. ``None`` = full history.
    window: Optional[str] = None
    #: Exponential decay: ``"RATE/EVERY"`` (e.g. ``"0.99/1000"``: multiply
    #: history by 0.99 per 1000 events). Wraps the payload ring in a
    #: :class:`~repro.rings.decay.DecayRing`; requires a float-weighted
    #: ring (sum/covar). Mutually exclusive with ``window``.
    decay: Optional[str] = None
    #: Self-healing shards: keep a coordinator-side replay log and
    #: respawn dead/hung workers from the last baseline instead of
    #: fail-stopping (see :mod:`repro.engine.supervisor`). Forces a
    #: :class:`~repro.engine.sharded.ShardedEngine` even at 1 shard.
    supervise: bool = False
    #: Supervision: replay-log bound in logged delta entries; exceeding
    #: it rebases the baseline (one ``export_state`` gather) and
    #: truncates the log.
    replay_log_limit: int = 20000
    #: Supervision: seconds a worker may stay silent on a synchronous
    #: reply (or a shared-memory slot) before it is declared hung and
    #: respawned.
    heartbeat_timeout: float = 30.0

    def __post_init__(self):
        if not isinstance(self.shards, int) or isinstance(self.shards, bool):
            try:
                object.__setattr__(self, "shards", int(self.shards))
            except (TypeError, ValueError):
                raise EngineError(
                    f"shards must be an int, got {self.shards!r}"
                ) from None
        if self.shards < 1:
            raise EngineError("shards must be at least 1")
        if self.backend not in BACKEND_CHOICES:
            raise EngineError(
                f"unknown shard backend {self.backend!r}; expected one of "
                f"{BACKEND_CHOICES}"
            )
        if self.transport not in TRANSPORT_CHOICES:
            raise EngineError(
                f"unknown shard transport {self.transport!r}; expected one "
                f"of {TRANSPORT_CHOICES}"
            )
        if self.shard_attrs is not None:
            object.__setattr__(self, "shard_attrs", tuple(self.shard_attrs))
        if self.use_columnar not in ("auto", True, False):
            raise EngineError(
                f"use_columnar must be 'auto', True or False, "
                f"got {self.use_columnar!r}"
            )
        for name in (
            "columnar_transport", "use_view_index", "adaptive_probe",
            "use_fused", "profile_stages", "supervise",
        ):
            object.__setattr__(self, name, bool(getattr(self, name)))
        try:
            object.__setattr__(
                self, "replay_log_limit", int(self.replay_log_limit)
            )
        except (TypeError, ValueError):
            raise EngineError(
                f"replay_log_limit must be an int, got "
                f"{self.replay_log_limit!r}"
            ) from None
        if self.replay_log_limit < 1:
            raise EngineError("replay_log_limit must be at least 1")
        try:
            object.__setattr__(
                self, "heartbeat_timeout", float(self.heartbeat_timeout)
            )
        except (TypeError, ValueError):
            raise EngineError(
                f"heartbeat_timeout must be a number, got "
                f"{self.heartbeat_timeout!r}"
            ) from None
        if self.heartbeat_timeout <= 0:
            raise EngineError("heartbeat_timeout must be positive")
        if self.window is not None:
            from repro.data.windows import WindowSpec

            try:
                spec = WindowSpec.parse(self.window)
            except DataError as exc:
                raise EngineError(str(exc)) from None
            object.__setattr__(self, "window", spec.describe())
        if self.decay is not None:
            from repro.rings.decay import DecaySpec

            try:
                decay_spec = DecaySpec.parse(self.decay)
            except RingError as exc:
                raise EngineError(str(exc)) from None
            object.__setattr__(self, "decay", decay_spec.describe())
        if self.window is not None and self.decay is not None:
            raise EngineError(
                "window and decay are mutually exclusive: a window retracts "
                "events sharply while decay reweights them smoothly, and a "
                "retraction lifted at a later decay tick would no longer "
                "cancel its insert"
            )

    # ------------------------------------------------------------------

    def replace(self, **changes) -> "EngineConfig":
        """A new config with ``changes`` applied (re-validated)."""
        return replace(self, **changes)

    def window_spec(self):
        """The parsed :class:`~repro.data.windows.WindowSpec` (or ``None``)."""
        if self.window is None:
            return None
        from repro.data.windows import WindowSpec

        return WindowSpec.parse(self.window)

    def decay_spec(self):
        """The parsed :class:`~repro.rings.decay.DecaySpec` (or ``None``)."""
        if self.decay is None:
            return None
        from repro.rings.decay import DecaySpec

        return DecaySpec.parse(self.decay)

    def to_dict(self) -> Dict[str, Any]:
        """Primitive-only dict form (checkpoint headers, provenance)."""
        out: Dict[str, Any] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, tuple):
                value = list(value)
            out[spec.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EngineConfig":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise EngineError(
                f"unknown EngineConfig field(s) {unknown}; known: "
                f"{sorted(known)}"
            )
        return cls(**dict(data))

    def describe(self) -> str:
        """Compact one-line summary (CLI banners, logs)."""
        parts = [f"shards={self.shards}"]
        if self.shards > 1:
            parts.append(f"backend={self.backend}")
            parts.append(f"transport={self.transport}")
        parts.append(f"view-index={'on' if self.use_view_index else 'off'}")
        columnar = (
            self.use_columnar
            if isinstance(self.use_columnar, str)
            else ("on" if self.use_columnar else "off")
        )
        parts.append(f"columnar={columnar}")
        parts.append(f"fused={'on' if self.use_fused else 'off'}")
        if self.window is not None:
            parts.append(f"window={self.window}")
        if self.decay is not None:
            parts.append(f"decay={self.decay}")
        if self.supervise:
            parts.append("supervise=on")
        return " ".join(parts)


# ----------------------------------------------------------------------
# Factory + legacy-kwarg shim
# ----------------------------------------------------------------------


def create_engine(query, config: Optional[EngineConfig] = None, order=None):
    """Build the engine a config describes.

    ``shards > 1`` builds a :class:`~repro.engine.sharded.ShardedEngine`
    (the coordinator resolves backend/transport); otherwise a plain
    :class:`~repro.engine.fivm.FIVMEngine` with the config's F-IVM
    options. The returned engine still needs ``initialize()`` (or
    ``import_state()``).
    """
    if config is None:
        config = EngineConfig()
    elif not isinstance(config, EngineConfig):
        raise EngineError(
            f"config must be an EngineConfig, got {type(config).__name__}"
        )
    # Imported lazily: the engine modules import this one at module level.
    # Supervision lives in the sharded coordinator (it is what respawns
    # workers), so a supervised config builds one even at a single shard.
    if config.shards > 1 or config.supervise:
        from repro.engine.sharded import ShardedEngine

        return ShardedEngine(query, order=order, config=config)
    from repro.engine.fivm import FIVMEngine

    return FIVMEngine(query, order=order, config=config)


def resolve_engine_config(
    config: Optional[EngineConfig],
    legacy: Mapping[str, Any],
    cls_name: str,
    allowed: Tuple[str, ...],
    defaults: Optional[Mapping[str, Any]] = None,
) -> EngineConfig:
    """The deprecation shim behind every engine constructor.

    ``config=`` wins when given; legacy keyword arguments (the pre-config
    constructor surface, restricted to ``allowed`` per engine class so
    signatures stay strict) build an equivalent config through this one
    warning path. ``defaults`` preserves per-class defaults that differ
    from the config's (``ShardedEngine`` historically defaulted to 2
    shards).
    """
    merged = dict(defaults or {})
    if legacy:
        unknown = sorted(set(legacy) - set(allowed))
        if unknown:
            raise TypeError(
                f"{cls_name}() got unexpected keyword argument(s) {unknown}"
            )
        if config is not None:
            raise EngineError(
                f"{cls_name}: pass config=EngineConfig(...) or legacy "
                "keyword arguments, not both"
            )
        warnings.warn(
            f"passing engine options to {cls_name}(...) as keyword "
            "arguments is deprecated; pass config=repro.EngineConfig(...) "
            "or use repro.create_engine(query, config)",
            DeprecationWarning,
            stacklevel=3,
        )
        merged.update(legacy)
        return EngineConfig(**merged)
    if config is None:
        return EngineConfig(**merged)
    if not isinstance(config, EngineConfig):
        raise EngineError(
            f"{cls_name}: config must be an EngineConfig, "
            f"got {type(config).__name__}"
        )
    return config


# ----------------------------------------------------------------------
# CLI derivation: one --engine-* namespace for every subcommand
# ----------------------------------------------------------------------


def add_engine_cli_args(parser: argparse.ArgumentParser, shards_default: int = 1) -> None:
    """Register the shared ``--engine-*`` flag namespace on a subparser.

    Every flag maps to one :class:`EngineConfig` field; the old hand-
    registered spellings (``--shards``, ``--shard-backend``,
    ``--no-view-index``, ``--no-columnar``, ``--no-fused``,
    ``--profile``) remain as aliases of the same destinations, so
    existing invocations keep working unchanged.
    """
    group = parser.add_argument_group(
        "engine options", "shared --engine-* namespace (see repro.EngineConfig)"
    )
    group.add_argument(
        "--engine-shards", "--shards",
        dest="engine_shards", type=int, default=shards_default, metavar="N",
        help=(
            "hash partitions: 1 = plain F-IVM, >1 = ShardedEngine "
            f"(default {shards_default})"
        ),
    )
    group.add_argument(
        "--engine-backend", "--shard-backend",
        dest="engine_backend", choices=BACKEND_CHOICES, default="auto",
        help="shard execution backend (auto: fork processes when available)",
    )
    group.add_argument(
        "--engine-transport",
        dest="engine_transport", choices=TRANSPORT_CHOICES, default="auto",
        help=(
            "shard data plane: shared-memory rings (shm, the default when "
            "available) or pickled pipes (pipe)"
        ),
    )
    group.add_argument(
        "--engine-shard-attrs",
        dest="engine_shard_attrs", default=None, metavar="A[,B...]",
        help=(
            "explicit comma-separated shard attributes "
            "(default: derived from the view tree)"
        ),
    )
    group.add_argument(
        "--engine-view-index", "--view-index",
        dest="engine_view_index", action=argparse.BooleanOptionalAction,
        default=True,
        help="F-IVM persistent view indexes (--no-view-index: scan siblings)",
    )
    group.add_argument(
        "--engine-columnar", "--columnar",
        dest="engine_columnar", action=argparse.BooleanOptionalAction,
        default=None,
        help=(
            "columnar maintenance + columnar pipe wire form "
            "(default: auto; --no-columnar: per-tuple everywhere)"
        ),
    )
    group.add_argument(
        "--engine-fused", "--fused",
        dest="engine_fused", action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "fused per-path kernels "
            "(--no-fused: interpreted columnar ladder)"
        ),
    )
    group.add_argument(
        "--engine-profile", "--profile",
        dest="engine_profile", action="store_true",
        help=(
            "accumulate per-stage wall time "
            "(lift/probe/multiply/group/scatter) in engine stats"
        ),
    )
    group.add_argument(
        "--engine-window",
        dest="engine_window", default=None, metavar="SPEC",
        help=(
            "windowed maintenance over event time: 'tumbling:SIZE' or "
            "'sliding:SIZE/SLIDE' (default: full history)"
        ),
    )
    group.add_argument(
        "--engine-decay",
        dest="engine_decay", default=None, metavar="RATE/EVERY",
        help=(
            "exponential decay: multiply history by RATE every EVERY "
            "events (e.g. 0.99/1000; float-weighted rings only)"
        ),
    )
    group.add_argument(
        "--engine-supervise",
        dest="engine_supervise", action=argparse.BooleanOptionalAction,
        default=False,
        help=(
            "self-healing shards: respawn dead/hung workers from the last "
            "baseline + replay log instead of fail-stopping"
        ),
    )
    group.add_argument(
        "--engine-replay-log-limit",
        dest="engine_replay_log_limit", type=int, default=20000, metavar="N",
        help=(
            "supervision replay-log bound in logged delta entries "
            "(exceeding it rebases the baseline; default 20000)"
        ),
    )
    group.add_argument(
        "--engine-heartbeat-timeout",
        dest="engine_heartbeat_timeout", type=float, default=30.0,
        metavar="SECONDS",
        help=(
            "seconds a worker may stay silent before it is declared hung "
            "and respawned (default 30)"
        ),
    )


def engine_config_from_args(args: argparse.Namespace) -> EngineConfig:
    """Build the :class:`EngineConfig` an ``--engine-*`` namespace encodes.

    The tri-state ``--engine-columnar`` maps to the config exactly as the
    historical flags did: absent -> ``use_columnar="auto"`` with the
    columnar pipe wire form on; ``--no-columnar`` disables both.
    """
    columnar = getattr(args, "engine_columnar", None)
    attrs = getattr(args, "engine_shard_attrs", None)
    shard_attrs = (
        tuple(a.strip() for a in attrs.split(",") if a.strip()) if attrs else None
    )
    return EngineConfig(
        shards=int(getattr(args, "engine_shards", 1)),
        backend=getattr(args, "engine_backend", "auto"),
        transport=getattr(args, "engine_transport", "auto"),
        shard_attrs=shard_attrs,
        columnar_transport=columnar is not False,
        use_view_index=bool(getattr(args, "engine_view_index", True)),
        use_columnar="auto" if columnar is None else bool(columnar),
        use_fused=bool(getattr(args, "engine_fused", True)),
        profile_stages=bool(getattr(args, "engine_profile", False)),
        window=getattr(args, "engine_window", None),
        decay=getattr(args, "engine_decay", None),
        supervise=bool(getattr(args, "engine_supervise", False)),
        replay_log_limit=int(getattr(args, "engine_replay_log_limit", 20000)),
        heartbeat_timeout=float(
            getattr(args, "engine_heartbeat_timeout", 30.0)
        ),
    )
