"""Exception hierarchy for the F-IVM reproduction.

All library errors derive from :class:`FIVMError` so callers can catch one
base class. Sub-classes partition errors by layer (rings, data, query,
engine), mirroring the package layout.
"""

from __future__ import annotations


class FIVMError(Exception):
    """Base class for all errors raised by this library."""


class RingError(FIVMError):
    """Invalid ring operation, e.g. adding values from incompatible rings."""


class SchemaError(FIVMError):
    """Schema mismatch: wrong arity, unknown attribute, duplicate attribute."""


class DataError(FIVMError):
    """Malformed relation contents (bad key arity, non-integer multiplicity)."""


class QueryError(FIVMError):
    """Ill-formed query or invalid variable order for a query."""


class EngineError(FIVMError):
    """Engine misuse: applying updates before initialization, unknown relation."""


class CheckpointError(FIVMError):
    """Unreadable or incompatible on-disk checkpoint (bad magic, truncated
    payload, unknown file version, unsupported compression)."""


class SupervisionError(EngineError):
    """Worker recovery itself failed: the respawn budget is exhausted or
    the supervisor has no baseline to rebuild a shard from. The engine is
    closed when this is raised — fail-stop is the fallback behind the
    self-healing path."""
