"""Datasets: the Figure-1 toy database, synthetic Retailer and Favorita,
and deterministic update streams."""

from repro.datasets.favorita import (
    FAVORITA_SCHEMAS,
    FavoritaConfig,
    favorita_query,
    favorita_regression_features,
    favorita_row_factories,
    favorita_variable_order,
    generate_favorita,
)
from repro.datasets.retailer import (
    RETAILER_SCHEMAS,
    RetailerConfig,
    continuous_covar_features,
    generate_retailer,
    mi_features,
    regression_features,
    retailer_query,
    retailer_row_factories,
    retailer_variable_order,
)
from repro.datasets.toy import (
    toy_count_query,
    toy_covar_categorical_query,
    toy_covar_continuous_query,
    toy_database,
    toy_mi_query,
    toy_query,
    toy_row_factories,
    toy_variable_order,
)
from repro.datasets.updates import UpdateStream

__all__ = [
    "toy_database",
    "toy_query",
    "toy_row_factories",
    "toy_variable_order",
    "toy_count_query",
    "toy_covar_continuous_query",
    "toy_covar_categorical_query",
    "toy_mi_query",
    "RetailerConfig",
    "RETAILER_SCHEMAS",
    "generate_retailer",
    "retailer_query",
    "retailer_variable_order",
    "retailer_row_factories",
    "regression_features",
    "continuous_covar_features",
    "mi_features",
    "FavoritaConfig",
    "FAVORITA_SCHEMAS",
    "generate_favorita",
    "favorita_query",
    "favorita_variable_order",
    "favorita_row_factories",
    "favorita_regression_features",
    "UpdateStream",
]
