"""The paper's Figure 1 toy database and query.

Relations ``R(A, B)`` and ``S(A, C, D)`` with ``b_i = c_i = d_i = i``:

    R = {(a1, b1), (a2, b2)}
    S = {(a1, c1, d1), (a1, c2, d3), (a2, c2, d2)}

The query is ``SUM(g_B(B) * g_C(C) * g_D(D))`` over ``R ⋈ S``. Swapping
the payload spec reproduces each payload column of the figure: counts
(Z ring), COVAR over continuous B, C, D (degree-3 ring), COVAR with C
categorical, and MI with B, C, D categorical.
"""

from __future__ import annotations

from repro.data.database import Database
from repro.data.relation import Relation
from repro.data.schema import RelationSchema
from repro.query.query import Query
from repro.query.variable_order import VONode, VariableOrder
from repro.rings.lifting import Feature
from repro.rings.specs import CountSpec, CovarSpec, MISpec, PayloadSpec

__all__ = [
    "toy_database",
    "toy_query",
    "toy_row_factories",
    "toy_variable_order",
    "toy_count_query",
    "toy_covar_continuous_query",
    "toy_covar_categorical_query",
    "toy_mi_query",
]

R_SCHEMA = RelationSchema("R", ("A", "B"))
S_SCHEMA = RelationSchema("S", ("A", "C", "D"))


def toy_database() -> Database:
    """Fresh copy of the Figure 1 database (B/C/D values are the integers i)."""
    r = Relation.from_tuples(("A", "B"), [("a1", 1), ("a2", 2)], name="R")
    s = Relation.from_tuples(
        ("A", "C", "D"),
        [("a1", 1, 1), ("a1", 2, 3), ("a2", 2, 2)],
        name="S",
    )
    return Database([r, s])


def toy_query(spec: PayloadSpec, name: str = "Q") -> Query:
    """The Figure 1 query with an arbitrary payload spec."""
    return Query(name, (R_SCHEMA, S_SCHEMA), spec=spec)


def toy_row_factories():
    """Insert factories for an :class:`~repro.datasets.updates.UpdateStream`
    over the toy schema.

    Join keys stay in a small domain (``a1``..``a4``) so inserts keep
    joining across R and S; B/C/D values stay small integers, matching
    the figure's ``b_i = c_i = d_i = i`` convention.
    """

    def r_row(rng):
        return (f"a{int(rng.integers(1, 5))}", int(rng.integers(1, 9)))

    def s_row(rng):
        return (
            f"a{int(rng.integers(1, 5))}",
            int(rng.integers(1, 9)),
            int(rng.integers(1, 9)),
        )

    return {"R": r_row, "S": s_row}


def toy_variable_order() -> VariableOrder:
    """The figure's strategy: V_R and V_S grouped by A, joined at A."""
    return VariableOrder([VONode("A", relations=("R", "S"))])


def toy_count_query() -> Query:
    """Scenario 1: the count aggregate over the Z ring."""
    return toy_query(CountSpec(), name="Q_count")


def toy_covar_continuous_query() -> Query:
    """Scenario 2: COVAR with continuous B, C, D (degree-3 matrix ring)."""
    spec = CovarSpec(
        (Feature.continuous("B"), Feature.continuous("C"), Feature.continuous("D"))
    )
    return toy_query(spec, name="Q_covar")


def toy_covar_categorical_query() -> Query:
    """Scenario 3: COVAR with categorical C, continuous B and D."""
    spec = CovarSpec(
        (Feature.continuous("B"), Feature.categorical("C"), Feature.continuous("D"))
    )
    return toy_query(spec, name="Q_covar_cat")


def toy_mi_query() -> Query:
    """Scenario 4: MI counts with categorical B, C, D."""
    spec = MISpec(
        (Feature.categorical("B"), Feature.categorical("C"), Feature.categorical("D"))
    )
    return toy_query(spec, name="Q_mi")
