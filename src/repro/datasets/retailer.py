"""Synthetic Retailer database (the paper's primary demo dataset).

Substitution note (see DESIGN.md): the real Retailer dataset is
proprietary. This generator reproduces its published *shape* — the five
relations, the 43 attributes listed in the demo's Figure 2c, the join keys
(``locn``, ``dateid``, ``ksn``, ``zip``) and a skewed fact table — with
seeded, correlated synthetic values so that the ML applications produce
meaningful (and deterministic) output:

- ``inventoryunits`` depends on the item's price, its subcategory and the
  location's population, plus noise — so COVAR-based regression has signal
  to find and MI-based model selection ranks those attributes highly;
- census attributes are correlated with each other through ``population``;
- weather attributes are correlated with ``dateid`` (seasonality).

Scales are configurable; defaults keep pure-Python maintenance fast while
preserving relative engine behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.data.database import Database
from repro.data.relation import Relation
from repro.data.schema import RelationSchema
from repro.query.query import Query
from repro.query.variable_order import VONode, VariableOrder
from repro.rings.lifting import Feature
from repro.rings.specs import PayloadSpec

__all__ = [
    "RetailerConfig",
    "RETAILER_SCHEMAS",
    "generate_retailer",
    "retailer_query",
    "retailer_variable_order",
    "retailer_row_factories",
    "regression_features",
    "continuous_covar_features",
    "mi_features",
]

INVENTORY = RelationSchema(
    "Inventory", ("locn", "dateid", "ksn", "inventoryunits")
)
LOCATION = RelationSchema(
    "Location",
    (
        "locn",
        "zip",
        "rgn_cd",
        "clim_zn_nbr",
        "tot_area_sq_ft",
        "sell_area_sq_ft",
        "avghhi",
        "supertargetdistance",
        "supertargetdrivetime",
        "targetdistance",
        "targetdrivetime",
        "walmartdistance",
        "walmartdrivetime",
        "walmartsupercenterdistance",
        "walmartsupercenterdrivetime",
    ),
)
CENSUS = RelationSchema(
    "Census",
    (
        "zip",
        "population",
        "white",
        "asian",
        "pacific",
        "black",
        "medianage",
        "occupiedhouseunits",
        "houseunits",
        "families",
        "households",
        "husbwife",
        "males",
        "females",
        "householdschildren",
        "hispanic",
    ),
)
ITEM = RelationSchema(
    "Item", ("ksn", "subcategory", "category", "categoryCluster", "prize")
)
WEATHER = RelationSchema(
    "Weather",
    ("locn", "dateid", "rain", "snow", "maxtemp", "mintemp", "meanwind", "thunder"),
)

RETAILER_SCHEMAS: Tuple[RelationSchema, ...] = (
    INVENTORY,
    LOCATION,
    CENSUS,
    ITEM,
    WEATHER,
)


@dataclass(frozen=True)
class RetailerConfig:
    """Scale and randomness knobs for the generator."""

    locations: int = 20
    dates: int = 60
    items: int = 120
    inventory_rows: int = 4000
    subcategories: int = 12
    categories: int = 6
    clusters: int = 3
    seed: int = 20180601

    def rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)


def _item_row(rng: np.random.Generator, ksn: int, config: RetailerConfig) -> Tuple:
    subcategory = int(rng.integers(0, config.subcategories))
    category = subcategory % config.categories
    cluster = category % config.clusters
    # Price has a per-subcategory base so it correlates with the category tree.
    prize = round(5.0 + 3.0 * subcategory + float(rng.normal(0.0, 2.0)), 2)
    return (ksn, subcategory, category, cluster, prize)


def _census_row(rng: np.random.Generator, zip_code: int) -> Tuple:
    population = int(rng.integers(5_000, 100_000))
    white = int(population * rng.uniform(0.3, 0.8))
    asian = int(population * rng.uniform(0.01, 0.2))
    pacific = int(population * rng.uniform(0.0, 0.05))
    black = int(population * rng.uniform(0.05, 0.4))
    hispanic = int(population * rng.uniform(0.05, 0.4))
    households = int(population / rng.uniform(2.0, 3.5))
    return (
        zip_code,
        population,
        white,
        asian,
        pacific,
        black,
        int(rng.integers(25, 55)),              # medianage
        int(households * rng.uniform(0.85, 0.99)),  # occupiedhouseunits
        int(households * rng.uniform(1.0, 1.15)),   # houseunits
        int(households * rng.uniform(0.55, 0.8)),   # families
        households,
        int(households * rng.uniform(0.35, 0.6)),   # husbwife
        int(population * rng.uniform(0.47, 0.52)),  # males
        int(population * rng.uniform(0.48, 0.53)),  # females
        int(households * rng.uniform(0.2, 0.45)),   # householdschildren
        hispanic,
    )


def _location_row(rng: np.random.Generator, locn: int, zip_code: int) -> Tuple:
    total_area = float(rng.uniform(20_000, 200_000))
    return (
        locn,
        zip_code,
        int(rng.integers(1, 10)),       # rgn_cd
        int(rng.integers(1, 8)),        # clim_zn_nbr
        round(total_area, 1),
        round(total_area * rng.uniform(0.5, 0.9), 1),  # sell_area_sq_ft
        round(float(rng.uniform(30_000, 120_000)), 0),  # avghhi
        round(float(rng.uniform(1, 40)), 1),   # supertargetdistance
        round(float(rng.uniform(2, 60)), 1),   # supertargetdrivetime
        round(float(rng.uniform(1, 30)), 1),   # targetdistance
        round(float(rng.uniform(2, 45)), 1),   # targetdrivetime
        round(float(rng.uniform(0.5, 20)), 1),  # walmartdistance
        round(float(rng.uniform(1, 30)), 1),   # walmartdrivetime
        round(float(rng.uniform(1, 35)), 1),   # walmartsupercenterdistance
        round(float(rng.uniform(2, 50)), 1),   # walmartsupercenterdrivetime
    )


def _weather_row(rng: np.random.Generator, locn: int, dateid: int) -> Tuple:
    # Seasonality: temperature swings with the date index.
    season = 20.0 + 15.0 * np.sin(2.0 * np.pi * dateid / 365.0)
    maxtemp = round(float(season + rng.normal(8.0, 3.0)), 1)
    mintemp = round(float(season - rng.normal(8.0, 3.0)), 1)
    return (
        locn,
        dateid,
        int(rng.random() < 0.25),        # rain
        int(rng.random() < 0.05),        # snow
        maxtemp,
        mintemp,
        round(float(rng.uniform(0, 25)), 1),  # meanwind
        int(rng.random() < 0.08),        # thunder
    )


def _inventory_row(
    rng: np.random.Generator,
    config: RetailerConfig,
    item_price: Dict[int, float],
    item_subcategory: Dict[int, int],
    zip_population: Dict[int, int],
    location_zip: Dict[int, int],
) -> Tuple:
    # Popularity skew: low item ids are ordered far more often.
    ksn = int(min(rng.zipf(1.4), config.items) - 1)
    locn = int(rng.integers(0, config.locations))
    dateid = int(rng.integers(0, config.dates))
    price = item_price[ksn]
    subcategory = item_subcategory[ksn]
    population = zip_population[location_zip[locn]]
    units = (
        40.0
        - 0.8 * price
        + 2.0 * (subcategory % 4)
        + population / 25_000.0
        + float(rng.normal(0.0, 4.0))
    )
    return (locn, dateid, ksn, max(0, int(round(units))))


def generate_retailer(config: RetailerConfig = RetailerConfig()) -> Database:
    """Generate a full five-relation Retailer database."""
    rng = config.rng()
    items = [_item_row(rng, ksn, config) for ksn in range(config.items)]
    zips = [30000 + i for i in range(config.locations)]
    location_zip = {locn: zips[locn] for locn in range(config.locations)}
    census = [_census_row(rng, zip_code) for zip_code in zips]
    locations = [
        _location_row(rng, locn, location_zip[locn])
        for locn in range(config.locations)
    ]
    weather = [
        _weather_row(rng, locn, dateid)
        for locn in range(config.locations)
        for dateid in range(config.dates)
    ]
    item_price = {row[0]: row[4] for row in items}
    item_subcategory = {row[0]: row[1] for row in items}
    zip_population = {row[0]: row[1] for row in census}
    inventory = [
        _inventory_row(rng, config, item_price, item_subcategory, zip_population, location_zip)
        for _ in range(config.inventory_rows)
    ]
    return Database(
        [
            Relation.from_tuples(INVENTORY.attributes, inventory, name="Inventory"),
            Relation.from_tuples(LOCATION.attributes, locations, name="Location"),
            Relation.from_tuples(CENSUS.attributes, census, name="Census"),
            Relation.from_tuples(ITEM.attributes, items, name="Item"),
            Relation.from_tuples(WEATHER.attributes, weather, name="Weather"),
        ]
    )


def retailer_row_factories(
    config: RetailerConfig, database: Database
) -> Dict[str, Callable[[np.random.Generator], Tuple]]:
    """Row factories for the update stream (fresh plausible inserts).

    Only the fact tables receive a factory — the demo streams updates to
    ``Inventory`` (and ``Weather``); dimension tables stay fixed, matching
    the original experiments.
    """
    item_price = {
        key[0]: key[4] for key in database.relation("Item").data
    }
    item_subcategory = {
        key[0]: key[1] for key in database.relation("Item").data
    }
    location_zip = {
        key[0]: key[1] for key in database.relation("Location").data
    }
    zip_population = {
        key[0]: key[1] for key in database.relation("Census").data
    }

    def inventory_factory(rng: np.random.Generator) -> Tuple:
        return _inventory_row(
            rng, config, item_price, item_subcategory, zip_population, location_zip
        )

    def weather_factory(rng: np.random.Generator) -> Tuple:
        locn = int(rng.integers(0, config.locations))
        dateid = int(rng.integers(0, config.dates))
        return _weather_row(rng, locn, dateid)

    return {"Inventory": inventory_factory, "Weather": weather_factory}


def retailer_query(spec: PayloadSpec, name: str = "Retailer") -> Query:
    """The five-relation natural join of the demo."""
    return Query(name, RETAILER_SCHEMAS, spec=spec)


def retailer_variable_order() -> VariableOrder:
    """The view tree of Figure 2d.

    ``locn`` at the root; the date/item branch carries Inventory, Item and
    Weather; the zip branch carries Location and Census.
    """
    return VariableOrder(
        [
            VONode(
                "locn",
                children=(
                    VONode(
                        "dateid",
                        children=(
                            VONode("ksn", relations=("Inventory", "Item")),
                        ),
                        relations=("Weather",),
                    ),
                    VONode("zip", relations=("Location", "Census")),
                ),
            )
        ]
    )


def regression_features() -> Tuple[Tuple[Feature, ...], str]:
    """The demo's Figure 2b feature set and label.

    Features: ``ksn``, ``prize`` (price), ``subcategory``, ``category``,
    ``categoryCluster``; label: ``inventoryunits``. ``ksn`` and the
    category attributes are categorical, price and the label continuous.
    """
    features = (
        Feature.categorical("ksn"),
        Feature.continuous("prize"),
        Feature.categorical("subcategory"),
        Feature.categorical("category"),
        Feature.categorical("categoryCluster"),
        Feature.continuous("inventoryunits"),
    )
    return features, "inventoryunits"


def continuous_covar_features(limit: int = 43) -> Tuple[Feature, ...]:
    """All-continuous features over the Retailer attributes.

    Used by the "thousands of aggregates" experiment: the full 43-attribute
    COVAR matrix has 1 + 43 + 43*44/2 = 990 aggregates maintained as one
    compound payload (44^2 = 1936 scalar entries counting symmetry).
    """
    attrs: List[str] = []
    for schema in RETAILER_SCHEMAS:
        for attr in schema.attributes:
            if attr not in attrs:
                attrs.append(attr)
    return tuple(Feature.continuous(attr) for attr in attrs[:limit])


def mi_features(database: Database, bins: int = 8) -> Tuple[Feature, ...]:
    """MI features over all 43 attributes (Figure 2c).

    Join keys and category-coded attributes are categorical; continuous
    attributes are discretized into equi-width bins derived from the data.
    """
    from repro.ml.discretize import binning_for_attribute

    categorical = {
        "locn",
        "dateid",
        "ksn",
        "zip",
        "rgn_cd",
        "clim_zn_nbr",
        "subcategory",
        "category",
        "categoryCluster",
        "rain",
        "snow",
        "thunder",
    }
    features: List[Feature] = []
    seen = set()
    for schema in RETAILER_SCHEMAS:
        relation = database.relation(schema.name)
        for attr in schema.attributes:
            if attr in seen:
                continue
            seen.add(attr)
            if attr in categorical:
                features.append(Feature.categorical(attr))
            else:
                binning = binning_for_attribute(relation, attr, bins)
                features.append(Feature(attr, "continuous", binning))
    return tuple(features)
