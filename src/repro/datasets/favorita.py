"""Synthetic Favorita database (the demo's second dataset, ref [2]).

The Kaggle "Corporación Favorita Grocery Sales Forecasting" data joins a
sales fact table with items, stores, daily transactions, the oil price and
a holiday calendar on ``date``, ``store`` and ``item``. As with Retailer
(see DESIGN.md), we reproduce the schema, join keys and value correlations
synthetically: unit sales depend on the item family, promotions, the oil
price (fuel costs) and holidays, so the learned models have real signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from repro.data.database import Database
from repro.data.relation import Relation
from repro.data.schema import RelationSchema
from repro.query.query import Query
from repro.query.variable_order import VONode, VariableOrder
from repro.rings.lifting import Feature
from repro.rings.specs import PayloadSpec

__all__ = [
    "FavoritaConfig",
    "FAVORITA_SCHEMAS",
    "generate_favorita",
    "favorita_query",
    "favorita_variable_order",
    "favorita_row_factories",
    "favorita_regression_features",
]

SALES = RelationSchema("Sales", ("date", "store", "item", "unitsales", "onpromotion"))
ITEMS = RelationSchema("Items", ("item", "family", "itemclass", "perishable"))
STORES = RelationSchema("Stores", ("store", "city", "state", "storetype", "cluster"))
TRANSACTIONS = RelationSchema("Transactions", ("date", "store", "transactions"))
OIL = RelationSchema("Oil", ("date", "oilprize"))
HOLIDAY = RelationSchema("Holiday", ("date", "holidaytype", "locale", "transferred"))

FAVORITA_SCHEMAS: Tuple[RelationSchema, ...] = (
    SALES,
    ITEMS,
    STORES,
    TRANSACTIONS,
    OIL,
    HOLIDAY,
)


@dataclass(frozen=True)
class FavoritaConfig:
    """Scale and randomness knobs."""

    stores: int = 15
    dates: int = 60
    items: int = 80
    sales_rows: int = 3000
    families: int = 8
    seed: int = 20170817

    def rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)


def _oil_price(dateid: int, rng: np.random.Generator) -> float:
    return round(45.0 + 10.0 * np.sin(dateid / 9.0) + float(rng.normal(0, 1.5)), 2)


def generate_favorita(config: FavoritaConfig = FavoritaConfig()) -> Database:
    rng = config.rng()
    items = [
        (
            item,
            int(rng.integers(0, config.families)),       # family
            int(rng.integers(1000, 1000 + 4 * config.families)),  # itemclass
            int(rng.random() < 0.3),                      # perishable
        )
        for item in range(config.items)
    ]
    stores = [
        (
            store,
            int(rng.integers(0, 12)),     # city
            int(rng.integers(0, 6)),      # state
            int(rng.integers(0, 5)),      # storetype
            int(rng.integers(1, 18)),     # cluster
        )
        for store in range(config.stores)
    ]
    oil = [(dateid, _oil_price(dateid, rng)) for dateid in range(config.dates)]
    holiday = [
        (
            dateid,
            int(rng.integers(0, 3)),   # holidaytype (0 = workday)
            int(rng.integers(0, 3)),   # locale
            int(rng.random() < 0.1),   # transferred
        )
        for dateid in range(config.dates)
    ]
    transactions = [
        (dateid, store, int(rng.integers(500, 4000)))
        for dateid in range(config.dates)
        for store in range(config.stores)
    ]
    oil_by_date = {row[0]: row[1] for row in oil}
    holiday_by_date = {row[0]: row[1] for row in holiday}
    family_by_item = {row[0]: row[1] for row in items}
    sales = [
        _sales_row(rng, config, oil_by_date, holiday_by_date, family_by_item)
        for _ in range(config.sales_rows)
    ]
    return Database(
        [
            Relation.from_tuples(SALES.attributes, sales, name="Sales"),
            Relation.from_tuples(ITEMS.attributes, items, name="Items"),
            Relation.from_tuples(STORES.attributes, stores, name="Stores"),
            Relation.from_tuples(
                TRANSACTIONS.attributes, transactions, name="Transactions"
            ),
            Relation.from_tuples(OIL.attributes, oil, name="Oil"),
            Relation.from_tuples(HOLIDAY.attributes, holiday, name="Holiday"),
        ]
    )


def _sales_row(
    rng: np.random.Generator,
    config: FavoritaConfig,
    oil_by_date: Dict[int, float],
    holiday_by_date: Dict[int, int],
    family_by_item: Dict[int, int],
) -> Tuple:
    item = int(min(rng.zipf(1.3), config.items) - 1)
    store = int(rng.integers(0, config.stores))
    dateid = int(rng.integers(0, config.dates))
    onpromotion = int(rng.random() < 0.2)
    units = (
        8.0
        + 3.0 * (family_by_item[item] % 3)
        + 6.0 * onpromotion
        + 4.0 * (holiday_by_date[dateid] > 0)
        - 0.1 * oil_by_date[dateid]
        + float(rng.normal(0.0, 2.0))
    )
    return (dateid, store, item, max(0, int(round(units))), onpromotion)


def favorita_row_factories(
    config: FavoritaConfig, database: Database
) -> Dict[str, Callable[[np.random.Generator], Tuple]]:
    """Insert factories for the update stream (Sales is the moving table)."""
    oil_by_date = {key[0]: key[1] for key in database.relation("Oil").data}
    holiday_by_date = {key[0]: key[1] for key in database.relation("Holiday").data}
    family_by_item = {key[0]: key[1] for key in database.relation("Items").data}

    def sales_factory(rng: np.random.Generator) -> Tuple:
        return _sales_row(rng, config, oil_by_date, holiday_by_date, family_by_item)

    return {"Sales": sales_factory}


def favorita_query(spec: PayloadSpec, name: str = "Favorita") -> Query:
    """The six-relation natural join."""
    return Query(name, FAVORITA_SCHEMAS, spec=spec)


def favorita_variable_order() -> VariableOrder:
    """date at the root, store below it, item below that (fact at item)."""
    return VariableOrder(
        [
            VONode(
                "date",
                children=(
                    VONode(
                        "store",
                        children=(VONode("item", relations=("Sales", "Items")),),
                        relations=("Stores", "Transactions"),
                    ),
                ),
                relations=("Oil", "Holiday"),
            )
        ]
    )


def favorita_regression_features() -> Tuple[Tuple[Feature, ...], str]:
    """Predict unit sales from promotion, family, oil price and holidays."""
    features = (
        Feature.categorical("onpromotion"),
        Feature.categorical("family"),
        Feature.continuous("oilprize"),
        Feature.categorical("holidaytype"),
        Feature.continuous("unitsales"),
    )
    return features, "unitsales"
