"""Update streams: batched inserts and deletes against a database.

The demo "processes one bulk of 10K updates before pausing"; the engine
paper measures throughput over round-robin per-relation batches mixing
inserts and deletes. :class:`UpdateStream` reproduces both modes: it owns
a shadow copy of the database so deletes always target live tuples and
repeated runs with one seed yield identical streams.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.database import Database
from repro.data.delta import tuple_events
from repro.data.relation import Relation
from repro.errors import DataError

__all__ = ["UpdateStream"]

RowFactory = Callable[[np.random.Generator], Tuple]


class UpdateStream:
    """Deterministic generator of per-relation update batches.

    Parameters
    ----------
    database:
        The *initial* database; the stream keeps its own shadow copy and
        never mutates the argument.
    factories:
        ``relation -> rng -> row``; relations with a factory receive
        inserts. Relations without one can still be delete targets.
    targets:
        Relations to update, visited round-robin. Defaults to the
        factories' keys.
    batch_size:
        Updates per batch (single-tuple updates = ``batch_size=1``).
    insert_ratio:
        Fraction of updates that are inserts; the rest delete live tuples
        (falling back to inserts if the shadow relation is empty).
    seed:
        RNG seed for reproducible streams.
    """

    def __init__(
        self,
        database: Database,
        factories: Dict[str, RowFactory],
        targets: Optional[Sequence[str]] = None,
        batch_size: int = 1000,
        insert_ratio: float = 0.8,
        seed: int = 0,
    ):
        if batch_size < 1:
            raise DataError("batch_size must be at least 1")
        if not 0.0 <= insert_ratio <= 1.0:
            raise DataError("insert_ratio must be in [0, 1]")
        self.shadow = database.copy()
        self.factories = dict(factories)
        self.targets: Tuple[str, ...] = tuple(targets or self.factories)
        if not self.targets:
            raise DataError("update stream needs at least one target relation")
        for name in self.targets:
            self.shadow.relation(name)  # validates existence
        self.batch_size = batch_size
        self.insert_ratio = insert_ratio
        self.rng = np.random.default_rng(seed)
        self._cursor = 0

    # ------------------------------------------------------------------

    def next_batch(self) -> Tuple[str, Relation]:
        """Produce one batch for the next round-robin target and apply it
        to the shadow database."""
        name = self.targets[self._cursor % len(self.targets)]
        self._cursor += 1
        relation = self.shadow.relation(name)
        factory = self.factories.get(name)
        delta = Relation(relation.schema, name=name)
        data = delta.data
        # Working multiset of deletable keys: live multiplicity minus
        # deletions already queued in this batch.
        deletable: List[Tuple] = list(relation.data)
        for _ in range(self.batch_size):
            do_insert = factory is not None and (
                float(self.rng.random()) < self.insert_ratio or not deletable
            )
            if do_insert:
                row = tuple(factory(self.rng))
                if len(row) != len(relation.schema):
                    raise DataError(
                        f"factory for {name!r} produced arity {len(row)}, "
                        f"expected {len(relation.schema)}"
                    )
                data[row] = data.get(row, 0) + 1
            else:
                if not deletable:
                    break
                index = int(self.rng.integers(0, len(deletable)))
                key = deletable[index]
                live = relation.data.get(key, 0) + data.get(key, 0)
                data[key] = data.get(key, 0) - 1
                if data[key] == 0:
                    del data[key]
                if live - 1 <= 0:
                    deletable[index] = deletable[-1]
                    deletable.pop()
        self.shadow.apply(name, delta)
        return name, delta

    def batches(self, count: int) -> Iterator[Tuple[str, Relation]]:
        """Yield ``count`` batches."""
        for _ in range(count):
            yield self.next_batch()

    def bulk(self, total_updates: int) -> Iterator[Tuple[str, Relation]]:
        """Yield batches until ~``total_updates`` single updates are out
        (the demo's 10K-update bulks)."""
        emitted = 0
        while emitted < total_updates:
            name, delta = self.next_batch()
            emitted += sum(abs(m) for m in delta.data.values())
            yield name, delta

    def tuples(self, total_updates: int) -> Iterator[Tuple[str, Tuple, int]]:
        """Yield ~``total_updates`` single-tuple events ``(name, row, ±1)``.

        The events decompose the same batches :meth:`bulk` would produce
        (same seed → same cumulative effect), so one stream instance can
        feed the tuple-at-a-time baseline and a fresh instance with the
        same seed the batched pipeline, and the results must agree.
        """
        yield from tuple_events(self.bulk(total_updates))

    def timed_tuples(
        self, total_updates: int, start: int = 0
    ) -> Iterator[Tuple[str, Tuple, int, int]]:
        """Single-tuple events stamped with an event time (their index).

        The timed form :class:`~repro.data.windows.WindowedStream`
        consumes: ``(name, row, ±1, time)`` with times non-decreasing
        from ``start``. The default index clock means window sizes are
        measured in event counts, which keeps windowed runs exactly
        reproducible from ``(seed, total_updates)`` alone.
        """
        for index, (name, row, step) in enumerate(
            self.tuples(total_updates), start
        ):
            yield name, row, step, index
