"""View trees: construction (τ), M3 rendering and DOT export."""

from repro.viewtree.builder import (
    ProbePlan,
    ProbeStep,
    ShardPlan,
    ViewTree,
    build_probe_plan,
    build_shard_plan,
    build_view_tree,
)
from repro.viewtree.dot import render_tree_dot
from repro.viewtree.m3 import render_tree_m3, render_view_m3, ring_type_name
from repro.viewtree.node import View

__all__ = [
    "View",
    "ViewTree",
    "build_view_tree",
    "ProbePlan",
    "ProbeStep",
    "build_probe_plan",
    "ShardPlan",
    "build_shard_plan",
    "render_tree_m3",
    "render_view_m3",
    "render_tree_dot",
    "ring_type_name",
]
