"""View definitions: the nodes of F-IVM's view tree.

A :class:`View` is a group-by aggregate over the join of its children
(Section 1: "each view defined by the join of its children possibly
followed by projecting away attributes"). Leaf views aggregate a base
relation directly — converting integer multiplicities into ring payloads
and lifting/aggregating the relation's non-variable attributes. Inner
views join their children and marginalize one variable (unless it is
free, in which case it stays a key).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["View"]


@dataclass
class View:
    """One view of the tree.

    Attributes
    ----------
    name:
        Unique identifier, e.g. ``V@ksn`` or ``V_Inventory``.
    key:
        Group-by attributes (the view's key schema).
    relation:
        For leaf views, the base relation aggregated; ``None`` for inner
        views.
    variable:
        For inner views, the variable owned by this node; marginalized
        here unless free.
    children:
        Child views joined by this view (empty for leaves).
    lifted:
        Attributes whose lifting functions apply at this view: the
        relation's local payload attributes for a leaf, ``(variable,)``
        for an inner node whose variable is lifted.
    marginalized:
        Attributes aggregated away at this view.
    is_free:
        Whether ``variable`` is a free (group-by) variable.
    """

    name: str
    key: Tuple[str, ...]
    relation: Optional[str] = None
    variable: Optional[str] = None
    children: Tuple["View", ...] = ()
    lifted: Tuple[str, ...] = ()
    marginalized: Tuple[str, ...] = ()
    is_free: bool = False

    @property
    def is_leaf(self) -> bool:
        return self.relation is not None

    def describe(self) -> str:
        """One-line summary used by plans and the maintenance-strategy app."""
        keys = ", ".join(self.key)
        if self.is_leaf:
            body = self.relation
            if self.lifted:
                body += " lifting (" + ", ".join(self.lifted) + ")"
        else:
            body = " ⋈ ".join(child.name for child in self.children)
            if self.variable is not None and not self.is_free:
                prefix = f"Σ_{self.variable} "
                if self.variable in self.lifted:
                    prefix = f"Σ_{self.variable} g_{self.variable}·"
                body = prefix + body
        return f"{self.name}[{keys}] = {body}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<View {self.name}[{', '.join(self.key)}]>"
