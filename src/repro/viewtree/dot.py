"""Graphviz DOT rendering of view trees (for docs and the demo tab)."""

from __future__ import annotations

from typing import List

from repro.viewtree.builder import ViewTree
from repro.viewtree.node import View

__all__ = ["render_tree_dot"]


def render_tree_dot(tree: ViewTree) -> str:
    """A ``digraph`` with views as boxes and base relations as ellipses."""
    lines: List[str] = [
        "digraph viewtree {",
        "  rankdir=BT;",
        '  node [shape=box, fontname="monospace"];',
    ]

    def node_id(view: View) -> str:
        return view.name.replace("@", "_")

    def visit(view: View) -> None:
        label = f"{view.name}[{', '.join(view.key)}]"
        lines.append(f'  {node_id(view)} [label="{label}"];')
        if view.is_leaf:
            schema = tree.query.schema_of(view.relation)
            rel_id = f"rel_{view.relation}"
            rel_label = f"{view.relation}({', '.join(schema.attributes)})"
            lines.append(f'  {rel_id} [label="{rel_label}", shape=ellipse];')
            lines.append(f"  {rel_id} -> {node_id(view)};")
        for child in view.children:
            visit(child)
            lines.append(f"  {node_id(child)} -> {node_id(view)};")

    visit(tree.root)
    lines.append("}")
    return "\n".join(lines)
