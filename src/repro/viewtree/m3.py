"""Rendering view trees as M3-style declarations (Figure 2d).

The original system compiles its views to DBToaster's M3 intermediate
language; our engine interprets the tree directly, but the Maintenance
Strategy tab's output is reproduced faithfully: one ``DECLARE MAP`` per
view with the ring type, key schema and defining ``AggSum`` expression.
"""

from __future__ import annotations

from typing import List

from repro.rings.cofactor import GeneralCofactorRing, NumericCofactorRing
from repro.rings.relational import RelationRing
from repro.rings.scalar import FloatRing, IntegerRing
from repro.rings.specs import PayloadPlan
from repro.viewtree.builder import ViewTree
from repro.viewtree.node import View

__all__ = ["ring_type_name", "render_view_m3", "render_tree_m3"]


def ring_type_name(plan: PayloadPlan) -> str:
    """M3-ish type of the plan's payload ring."""
    ring = plan.ring
    if isinstance(ring, IntegerRing):
        return "long"
    if isinstance(ring, FloatRing):
        return "double"
    if isinstance(ring, NumericCofactorRing):
        return f"RingCofactor<double, {ring.degree}>"
    if isinstance(ring, GeneralCofactorRing):
        scalar = "RingRelation" if isinstance(ring.scalar, RelationRing) else "double"
        return f"RingCofactor<{scalar}, {ring.degree}>"
    return ring.name


def _lift_term(plan: PayloadPlan, attr: str) -> str:
    if plan.layout is not None and attr in plan.layout:
        index = plan.layout.index(attr)
        return f"[lift<{index}>: {ring_type_name(plan)}]({attr})"
    return f"[lift: {ring_type_name(plan)}]({attr})"


def render_view_m3(tree: ViewTree, view: View) -> str:
    """One DECLARE MAP block in the style of the demo's Figure 2d."""
    plan = tree.plan
    keys = ", ".join(f"{attr}: key" for attr in view.key)
    header = f"DECLARE MAP {view.name.replace('@', '_')}({ring_type_name(plan)})[][{keys}] :="
    if view.is_leaf:
        schema = tree.query.schema_of(view.relation)
        body_terms = [f"{view.relation}[][{', '.join(schema.attributes)}]<Local>"]
        body_terms.extend(_lift_term(plan, attr) for attr in view.lifted)
    else:
        body_terms = [
            f"{child.name.replace('@', '_')}[][{', '.join(child.key)}]<Local>"
            for child in view.children
        ]
        body_terms.extend(_lift_term(plan, attr) for attr in view.lifted)
    body = " * ".join(body_terms) if body_terms else "1"
    if view.marginalized:
        agg_keys = ", ".join(view.key)
        return f"{header}\n  AggSum([{agg_keys}],\n    ({body})\n  );"
    return f"{header}\n  ({body});"


def render_tree_m3(tree: ViewTree) -> str:
    """All views of the tree, bottom-up, as M3 declarations."""
    blocks: List[str] = [render_view_m3(tree, view) for view in tree.all_views()]
    return "\n\n".join(blocks)
