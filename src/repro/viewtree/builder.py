"""View-tree construction (the paper's τ mapping).

Given a query, a valid variable order and a payload plan, build the tree
of views: one leaf view per base relation (lift + aggregate its local
attributes), one inner view per variable (join children, marginalize the
variable through its lifting function). The root view is keyed by the free
variables and holds the query result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import QueryError
from repro.query.planner import plan_variable_order
from repro.query.query import Query
from repro.query.variable_order import VONode, VariableOrder
from repro.rings.specs import PayloadPlan
from repro.viewtree.node import View

__all__ = [
    "ViewTree",
    "build_view_tree",
    "ProbeStep",
    "ProbePlan",
    "build_probe_plan",
    "ShardPlan",
    "build_shard_plan",
]


@dataclass
class ViewTree:
    """The constructed tree plus the indexes engines need."""

    query: Query
    order: VariableOrder
    plan: PayloadPlan
    root: View
    views: Dict[str, View] = field(default_factory=dict)
    leaf_of: Dict[str, View] = field(default_factory=dict)
    parent: Dict[str, Optional[str]] = field(default_factory=dict)

    def path_to_root(self, relation_name: str) -> Tuple[View, ...]:
        """Views from the relation's leaf up to (and including) the root."""
        try:
            view = self.leaf_of[relation_name]
        except KeyError:
            raise QueryError(
                f"relation {relation_name!r} has no leaf view in this tree"
            ) from None
        path = [view]
        while True:
            parent_name = self.parent[path[-1].name]
            if parent_name is None:
                break
            path.append(self.views[parent_name])
        return tuple(path)

    def all_views(self) -> Tuple[View, ...]:
        """Views in bottom-up (children before parents) order."""
        ordered: List[View] = []

        def visit(view: View) -> None:
            for child in view.children:
                visit(child)
            ordered.append(view)

        visit(self.root)
        return tuple(ordered)

    def render(self) -> str:
        """ASCII tree, root at the top (cf. the Maintenance Strategy tab)."""
        lines: List[str] = []

        def visit(view: View, depth: int) -> None:
            lines.append("  " * depth + view.describe())
            for child in view.children:
                visit(child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)


def build_view_tree(
    query: Query,
    order: Optional[VariableOrder] = None,
    plan: Optional[PayloadPlan] = None,
) -> ViewTree:
    """Construct the view tree for ``query`` along ``order``.

    ``order`` defaults to the greedy planner's choice; ``plan`` defaults to
    building the query's payload spec. The order is validated first.
    """
    if order is None:
        order = plan_variable_order(query)
    order.validate(query)
    if plan is None:
        plan = query.build_plan()
    variables = set(order.variables)
    free = set(query.free)
    for attr in free:
        if attr in plan.lifts:
            raise QueryError(
                f"free variable {attr!r} cannot be lifted: group-by attributes "
                "stay keys (group inside the ring instead, as the demo does)"
            )
    for attr in plan.lifts:
        if attr not in query.attributes:
            raise QueryError(f"lifted attribute {attr!r} not in query")

    def leaf_view(relation_name: str) -> View:
        schema = query.schema_of(relation_name)
        key = tuple(attr for attr in schema.attributes if attr in variables)
        local = tuple(attr for attr in schema.attributes if attr not in variables)
        lifted = tuple(attr for attr in local if attr in plan.lifts)
        return View(
            name=f"V_{relation_name}",
            key=key,
            relation=relation_name,
            lifted=lifted,
            marginalized=local,
        )

    def inner_view(node: VONode) -> View:
        children: List[View] = [leaf_view(name) for name in node.relations]
        children.extend(inner_view(child) for child in node.children)
        if not children:
            raise QueryError(
                f"variable {node.variable!r} has neither relations nor children"
            )
        variable = node.variable
        is_free = variable in free
        dep = order.dependency_set(query, variable)
        carried = tuple(
            v for v in order.free_below(query, variable) if v != variable
        )
        if is_free:
            key = dep + (variable,) + carried
            lifted: Tuple[str, ...] = ()
            marginalized: Tuple[str, ...] = ()
        else:
            key = dep + carried
            lifted = (variable,) if variable in plan.lifts else ()
            marginalized = (variable,)
        return View(
            name=f"V@{variable}",
            key=key,
            variable=variable,
            children=tuple(children),
            lifted=lifted,
            marginalized=marginalized,
            is_free=is_free,
        )

    top_views: List[View] = [inner_view(root) for root in order.roots]
    top_views.extend(leaf_view(name) for name in order.root_relations)
    if not top_views:
        raise QueryError(f"query {query.name!r} produced an empty view tree")
    if len(top_views) == 1 and top_views[0].key == tuple(query.free):
        root = top_views[0]
    else:
        # Virtual root: joins the forest's top views (cartesian across
        # disconnected components) and exposes exactly the free variables.
        root = View(
            name=f"V_{query.name}",
            key=tuple(query.free),
            children=tuple(top_views),
            marginalized=tuple(
                attr
                for view in top_views
                for attr in view.key
                if attr not in free
            ),
        )

    tree = ViewTree(query=query, order=order, plan=plan, root=root)

    def index(view: View, parent_name: Optional[str]) -> None:
        if view.name in tree.views:
            raise QueryError(f"duplicate view name {view.name!r}")
        tree.views[view.name] = view
        tree.parent[view.name] = parent_name
        if view.relation is not None:
            tree.leaf_of[view.relation] = view
        for child in view.children:
            index(child, view.name)

    index(root, None)
    missing = set(query.relation_names) - set(tree.leaf_of)
    if missing:
        raise QueryError(f"relations without leaf views: {sorted(missing)}")
    return tree


# ----------------------------------------------------------------------
# Probe plans: which sibling views each delta path probes on which keys.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ProbeStep:
    """One sibling probe along a maintenance path.

    ``attrs`` is the probe key — the sibling view's key attributes shared
    with the running delta at this point of the path, in the sibling-key
    order the persistent index is built on. An empty ``attrs`` is a
    cartesian sibling (everything matches)."""

    sibling: str
    attrs: Tuple[str, ...]


@dataclass(frozen=True)
class ProbePlan:
    """Static per-relation probe schedule plus the indexes it requires.

    ``path_steps[R][i]`` lists, for the i-th inner view on R's
    leaf-to-root path, the sibling probes in execution order;
    ``index_specs[view]`` is every attribute tuple that view must keep a
    persistent index on. The plan is a pure function of the view tree, so
    engines compute it once at construction and the index set never
    changes at runtime."""

    path_steps: Dict[str, Tuple[Tuple[ProbeStep, ...], ...]]
    index_specs: Dict[str, Tuple[Tuple[str, ...], ...]]


def build_probe_plan(tree: ViewTree) -> ProbePlan:
    """Compute the probe schedule for every base relation of ``tree``.

    Walks each leaf-to-root path tracking the attribute set of the running
    delta: lifted to the leaf key, widened by every sibling join, narrowed
    to the view key by each marginalization. Sibling order is the view's
    static child order — with index probes the running delta stays
    delta-sized, so the dynamic smallest-sibling-first heuristic of the
    scan path buys nothing.
    """
    path_steps: Dict[str, Tuple[Tuple[ProbeStep, ...], ...]] = {}
    index_specs: Dict[str, set] = {}
    for relation_name in tree.leaf_of:
        path = tree.path_to_root(relation_name)
        attrs_now = set(path[0].key)
        previous = path[0].name
        per_view: List[Tuple[ProbeStep, ...]] = []
        for view in path[1:]:
            steps: List[ProbeStep] = []
            for child in view.children:
                if child.name == previous:
                    continue
                shared = tuple(attr for attr in child.key if attr in attrs_now)
                steps.append(ProbeStep(sibling=child.name, attrs=shared))
                index_specs.setdefault(child.name, set()).add(shared)
                attrs_now |= set(child.key)
            per_view.append(tuple(steps))
            attrs_now = set(view.key)
            previous = view.name
        path_steps[relation_name] = tuple(per_view)
    return ProbePlan(
        path_steps=path_steps,
        index_specs={
            name: tuple(sorted(specs)) for name, specs in index_specs.items()
        },
    )


# ----------------------------------------------------------------------
# Shard plans: how to hash-partition the base relations across engines.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardPlan:
    """Static partitioning scheme for multi-core ingestion.

    ``attrs`` is the hash key; ``routed`` are the relations containing all
    of it (hash-partitioned on its values) and ``broadcast`` the rest
    (replicated to every shard). Correctness rests on the natural join
    equating ``attrs`` across every pair of routed relations — tuples in
    different shards then join to nothing, so per-shard results sum to
    the unsharded result (see :mod:`repro.data.sharding`). Like the probe
    plan, a shard plan is a pure function of the view tree, so the
    partitioning never changes at runtime and per-shard probe plans are
    simply the unsharded plan over smaller views.
    """

    attrs: Tuple[str, ...]
    routed: Tuple[str, ...]
    broadcast: Tuple[str, ...]


def build_shard_plan(
    tree: ViewTree, attrs: Optional[Tuple[str, ...]] = None
) -> ShardPlan:
    """Choose shard attributes for ``tree``'s query (or validate ``attrs``).

    The automatic choice considers each variable of the order as a
    singleton hash key and takes the one contained in the most relations
    — maximizing the share of the database (and of the update stream)
    that is partitioned instead of replicated. Ties break toward the
    root-most variable, whose views sit highest in the tree. An explicit
    ``attrs`` must partition at least one relation; a query whose
    relations share no attribute cannot be sharded and raises.
    """
    query = tree.query
    schemas = {
        name: set(query.schema_of(name).attributes)
        for name in query.relation_names
    }
    if attrs is not None:
        attrs = tuple(attrs)
        for attr in attrs:
            if attr not in query.attributes:
                raise QueryError(
                    f"shard attribute {attr!r} not in query {query.name!r}"
                )
        routed = tuple(
            name for name in query.relation_names
            if all(attr in schemas[name] for attr in attrs)
        )
        if not routed:
            raise QueryError(
                f"shard attributes {attrs!r} partition no relation of "
                f"query {query.name!r}"
            )
    else:
        best = None
        for position, variable in enumerate(tree.order.variables):
            covered = sum(1 for name in schemas if variable in schemas[name])
            if covered < 1:
                continue
            # More covered relations first; root-most variable on ties
            # (pre-order position is the tie-break).
            rank = (-covered, position)
            if best is None or rank < best[0]:
                best = (rank, variable)
        if best is None or -best[0][0] < 1:
            raise QueryError(
                f"query {query.name!r} has no shardable attribute"
            )
        attrs = (best[1],)
        routed = tuple(
            name for name in query.relation_names if attrs[0] in schemas[name]
        )
    broadcast = tuple(
        name for name in query.relation_names if name not in routed
    )
    return ShardPlan(attrs=attrs, routed=routed, broadcast=broadcast)
