"""Command-line interface: the demo's tabs from a terminal.

The original system is driven through a web UI (Section 3); this CLI is
its scriptable equivalent:

- ``repro info``    — the Maintenance Strategy tab: view tree + M3 code;
- ``repro run``     — Model Selection / Regression / Chow-Liu over bulks
  of updates on a chosen dataset;
- ``repro bench``   — a one-command engine comparison;
- ``repro checkpoint`` — save/restore engine state mid-stream
  (``save``/``load``/``info``), including across shard counts;
- ``repro serve``   — the demo's web serving loop: an HTTP endpoint
  answering model reads from epoch snapshots while a writer thread
  ingests a seeded update stream.

Usage (installed entry point or module)::

    python -m repro info --dataset retailer --payload covar
    python -m repro run --dataset retailer --app regression --bulks 3
    python -m repro run --dataset favorita --app model-selection
    python -m repro bench --dataset retailer --batches 5
    python -m repro checkpoint save ckpt.fivm --updates 2000 --shards 4
    python -m repro checkpoint load ckpt.fivm --shards 2 --verify
    python -m repro serve --dataset toy --payload covar --port 8321
"""

from __future__ import annotations

import argparse
import contextlib
import datetime
import itertools
import signal
import sys
import time
from typing import List, Optional

from repro.checkpoint import (
    remove_stale_increments,
    checkpoint_sink,
    read_checkpoint_info,
    resolve_chain_head,
    restore_checkpoint,
    write_checkpoint,
)

from repro.apps import (
    ChowLiuApp,
    MaintenanceStrategyApp,
    ModelSelectionApp,
    RegressionApp,
)
from repro.config import (
    EngineConfig,
    add_engine_cli_args,
    create_engine,
    engine_config_from_args,
)
from repro.data import WindowedStream, single, tuple_events
from repro.datasets import (
    FAVORITA_SCHEMAS,
    RETAILER_SCHEMAS,
    FavoritaConfig,
    RetailerConfig,
    UpdateStream,
    favorita_query,
    favorita_regression_features,
    favorita_row_factories,
    favorita_variable_order,
    generate_favorita,
    generate_retailer,
    regression_features,
    retailer_query,
    retailer_row_factories,
    retailer_variable_order,
)
from repro.engine import FIVMEngine, FirstOrderEngine, NaiveEngine, ShardedEngine
from repro.ml.discretize import binning_for_attribute
from repro.rings import CountSpec, CovarSpec, Feature, MISpec, result_drift
from repro.serving import (
    IngestThread,
    ServerThread,
    ServingApp,
    build_serving_scenario,
)

__all__ = ["main", "build_parser"]


@contextlib.contextmanager
def _graceful_sigterm():
    """Route SIGTERM through the KeyboardInterrupt unwind path.

    The long-running commands (serve, bench, checkpoint save) already
    shut down cleanly on Ctrl-C — engines closed, /dev/shm segments
    unlinked, final checkpoints flushed. `kill` and container stops
    send SIGTERM, which would otherwise bypass all of that; translating
    it to KeyboardInterrupt makes both paths identical. Signal handlers
    can only be installed from the main thread; elsewhere (tests
    driving main() from a worker thread) this is a no-op.
    """

    def _interrupt(signum, frame):
        raise KeyboardInterrupt

    try:
        previous = signal.signal(signal.SIGTERM, _interrupt)
    except ValueError:  # pragma: no cover - not the main thread
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _dataset(args):
    """Resolve (database, schemas, order, query factory, stream factory)."""
    if args.dataset == "retailer":
        config = RetailerConfig(
            locations=args.scale * 8,
            dates=args.scale * 15,
            items=args.scale * 60,
            inventory_rows=args.scale * 1200,
            seed=args.seed,
        )
        db = generate_retailer(config)
        factories = retailer_row_factories(config, db)
        return db, RETAILER_SCHEMAS, retailer_variable_order(), retailer_query, factories, ("Inventory",)
    config = FavoritaConfig(
        stores=args.scale * 8,
        dates=args.scale * 20,
        items=args.scale * 50,
        sales_rows=args.scale * 1000,
        seed=args.seed,
    )
    db = generate_favorita(config)
    factories = favorita_row_factories(config, db)
    return db, FAVORITA_SCHEMAS, favorita_variable_order(), favorita_query, factories, ("Sales",)


def _mi_features(args, db):
    if args.dataset == "retailer":
        item = db.relation("Item")
        inventory = db.relation("Inventory")
        return (
            Feature.categorical("ksn"),
            Feature.categorical("subcategory"),
            Feature.categorical("category"),
            Feature.categorical("categoryCluster"),
            Feature("prize", "continuous", binning_for_attribute(item, "prize", 8)),
            Feature(
                "inventoryunits",
                "continuous",
                binning_for_attribute(inventory, "inventoryunits", 8),
            ),
            Feature.categorical("rain"),
        ), "inventoryunits"
    sales = db.relation("Sales")
    oil = db.relation("Oil")
    return (
        Feature.categorical("onpromotion"),
        Feature.categorical("family"),
        Feature.categorical("holidaytype"),
        Feature("oilprize", "continuous", binning_for_attribute(oil, "oilprize", 6)),
        Feature(
            "unitsales", "continuous", binning_for_attribute(sales, "unitsales", 8)
        ),
    ), "unitsales"


def _regression_features(args):
    if args.dataset == "retailer":
        return regression_features()
    return favorita_regression_features()


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------


def cmd_info(args) -> int:
    db, _schemas, order, query_of, _factories, _targets = _dataset(args)
    if args.payload == "count":
        spec = CountSpec()
    elif args.payload == "covar":
        features, _label = _regression_features(args)
        spec = CovarSpec(features)
    else:
        features, _label = _mi_features(args, db)
        spec = MISpec(features)
    app = MaintenanceStrategyApp(query_of(spec), order=order)
    print(f"# dataset: {args.dataset}   payload: {args.payload}")
    print("\n## View tree\n")
    print(app.render_tree())
    print("\n## M3 code\n")
    print(app.render_m3())
    if args.dot:
        print("\n## DOT\n")
        print(app.render_dot())
    return 0


def cmd_run(args) -> int:
    db, schemas, order, _query_of, factories, targets = _dataset(args)
    if args.app == "model-selection":
        features, label = _mi_features(args, db)
        app = ModelSelectionApp(
            db, schemas, features, label=label, threshold=args.threshold, order=order
        )
        render = app.render
    elif args.app == "regression":
        features, label = _regression_features(args)
        app = RegressionApp(db, schemas, features, label, order=order)
        app.refresh_model()

        def render():
            app.refresh_model()
            return app.render()

    else:
        features, _label = _mi_features(args, db)
        app = ChowLiuApp(db, schemas, features, order=order)

        def render():
            return app.tree().render()

    print(f"# {args.app} on {args.dataset}\n")
    print(render())
    stream = UpdateStream(
        app.session.database,
        factories,
        targets=targets,
        batch_size=args.batch_size,
        insert_ratio=args.insert_ratio,
        seed=args.seed,
    )
    for bulk in range(1, args.bulks + 1):
        report = app.process_bulk(stream.bulk(args.bulk_updates))
        print(
            f"\n--- bulk {bulk}: {report.updates} updates, "
            f"{report.throughput:.0f} updates/s ---\n"
        )
        print(render())
    return 0


def _columnar_sweep(db, order, query_of, factories, targets, args) -> None:
    """Updates/s for the columnar path at batch 1/10/100/1000.

    Same count ring / stream ingest as ``bench_delta_latency.py``'s
    batch-size sweep, so the two stay comparable; ``use_columnar=True``
    forces the columnar ladder even for the scalar count ring (which
    ``"auto"`` would keep on its dict fast path).
    """
    stream = UpdateStream(
        db,
        factories,
        targets=targets,
        batch_size=max(args.batch_size, 1000),
        insert_ratio=args.insert_ratio,
        seed=args.seed,
    )
    total = max(args.batches * args.batch_size, 2000)
    events = list(stream.tuples(total))
    print(
        f"\n# columnar batch-size sweep ({len(events)} updates, count ring, "
        "stream ingest)"
    )
    print(f"{'batch':>6} {'columnar':>9} {'seconds':>9} {'updates/s':>11}")
    results = []
    for batch_size in (1, 10, 100, 1000):
        for use_columnar in (True, False):
            engine = FIVMEngine(
                query_of(CountSpec()),
                order=order,
                config=EngineConfig(use_columnar=use_columnar),
            )
            engine.initialize(db)
            started = time.perf_counter()
            engine.apply_stream(iter(events), batch_size=batch_size)
            seconds = time.perf_counter() - started
            results.append(engine.result())
            print(
                f"{batch_size:>6} {'on' if use_columnar else 'off':>9} "
                f"{seconds:>9.3f} {len(events) / seconds:>11.0f}"
            )
    assert all(result == results[0] for result in results[1:]), (
        "columnar sweep results diverged"
    )
    print("columnar and per-tuple results agree across the sweep ✓")


def _bench_spec(args, config):
    """Payload for the engine comparison: count ring by default, the
    numeric covar ring over the continuous features when decay is on —
    decay needs float-weighted payloads, exact count rings refuse it."""
    if config.decay is None:
        return CountSpec(), "count ring"
    features, _label = _regression_features(args)
    continuous = tuple(f for f in features if f.kind == "continuous")
    return CovarSpec(continuous, backend="numeric"), "numeric covar ring"


def cmd_bench(args) -> int:
    try:
        with _graceful_sigterm():
            return _run_bench(args)
    except KeyboardInterrupt:
        # The per-contender finally already closed the live engine (and
        # its shm segments) on the way out.
        print("\ninterrupted; engines closed", file=sys.stderr)
        return 130


def _run_bench(args) -> int:
    db, _schemas, order, query_of, factories, targets = _dataset(args)
    config = engine_config_from_args(args)
    window_spec = config.window_spec()
    if (window_spec is not None or config.decay is not None) and args.ingest != "stream":
        # Windows fire retractions on the event clock and decay ticks on
        # it; pre-built batches have no clock.
        print("# note: window/decay ride the event stream; using --ingest stream")
        args.ingest = "stream"
    spec, ring_label = _bench_spec(args, config)
    stream = UpdateStream(
        db,
        factories,
        targets=targets,
        batch_size=args.batch_size,
        insert_ratio=args.insert_ratio,
        seed=args.seed,
    )
    batches = list(stream.batches(args.batches))
    n_updates = sum(
        sum(abs(m) for m in delta.data.values()) for _n, delta in batches
    )
    if args.ingest == "tuple":
        # Tuple-at-a-time baseline: one apply() per single ±1 update.
        schemas = {name: delta.schema for name, delta in batches}
        updates = [
            (name, single(schemas[name], row, step))
            for name, row, step in tuple_events(batches)
        ]
    else:
        updates = batches
    columnar = (
        config.use_columnar
        if isinstance(config.use_columnar, str)
        else ("on" if config.use_columnar else "off")
    )
    print(
        f"# engine comparison on {args.dataset} "
        f"({ring_label}, ingest={args.ingest}, batch size {args.batch_size}, "
        f"view-index={'on' if config.use_view_index else 'off'}, "
        f"columnar={columnar}, "
        f"fused={'on' if config.use_fused else 'off'}"
        + (f", shards={config.shards}" if config.shards > 1 else "")
        + (f", window={config.window}" if config.window else "")
        + (f", decay={config.decay}" if config.decay else "")
        + ")"
    )
    print(f"{'engine':>14} {'init (s)':>9} {'maintain (s)':>13} {'updates/s':>11}")
    contenders = [
        (
            FIVMEngine.strategy,
            lambda: FIVMEngine(
                query_of(spec), order=order, config=config.replace(shards=1)
            ),
        ),
    ]
    if config.decay is None:
        # First-order/naive engines take no EngineConfig, so they cannot
        # decay — windowed streams are fine (retractions are plain deltas).
        contenders += [
            (
                FirstOrderEngine.strategy,
                lambda: FirstOrderEngine(query_of(spec), order=order),
            ),
            (
                NaiveEngine.strategy,
                lambda: NaiveEngine(query_of(spec), order=order),
            ),
        ]
    if config.shards > 1:
        contenders.insert(
            0,
            (
                f"fivm x{config.shards}",
                lambda: ShardedEngine(
                    query_of(spec), order=order, config=config
                ),
            ),
        )
    results = []
    profiled = None
    for label, factory in contenders:
        engine = factory()
        try:
            started = time.perf_counter()
            engine.initialize(db)
            init_s = time.perf_counter() - started
            started = time.perf_counter()
            if args.ingest == "stream":
                # Decompose to single-tuple events; the engine's
                # UpdateBatcher coalesces them back into --batch-size
                # batches. A fresh WindowedStream per engine: its
                # retraction queue is stateful.
                events = tuple_events(batches)
                if window_spec is not None:
                    events = WindowedStream(window_spec, events)
                engine.apply_stream(events, batch_size=args.batch_size)
            else:
                engine.apply_batch(updates)
            # result() before stopping the clock: on the sharded process
            # backend applies are fire-and-forget, so this is the barrier
            # that waits for in-flight worker maintenance (trivial for
            # the in-process engines).
            results.append(engine.result())
            seconds = time.perf_counter() - started
            if config.profile_stages and isinstance(engine, FIVMEngine):
                profiled = engine.stats
        finally:
            if isinstance(engine, ShardedEngine):
                engine.close()
        print(
            f"{label:>14} {init_s:>9.3f} {seconds:>13.3f} "
            f"{n_updates / seconds:>11.0f}"
        )
    if config.decay is not None and config.shards > 1:
        # Sharded decay settles per shard before merging; float multiply
        # does not distribute bit-exactly over add, so sharded vs
        # unsharded agree to rounding, not bit-for-bit.
        assert all(
            results[0].close_to(other, 1e-9) for other in results[1:]
        ), "engines disagree"
        print("all engines agree on the final result (within 1e-9) ✓")
    else:
        assert all(results[0] == other for other in results[1:]), "engines disagree"
        print("all engines agree on the final result ✓")
    if config.decay is not None and config.profile_stages:
        # Quantify what decay is doing: distance of the recency-weighted
        # result from the same stream aggregated without decay.
        reference = FIVMEngine(
            query_of(spec), order=order,
            config=config.replace(shards=1, decay=None),
        )
        reference.initialize(db)
        events = tuple_events(batches)
        if window_spec is not None:
            events = WindowedStream(window_spec, events)
        reference.apply_stream(events, batch_size=args.batch_size)
        drift = result_drift(results[-1], reference.result())
        stats = profiled
        print(
            f"\n# decay: drift vs undecayed run {drift:.6g} "
            f"(ticks {stats.decay_ticks}, settles {stats.decay_settles}, "
            f"rescales {stats.decay_rescales})"
        )
    if profiled is not None:
        stages = profiled.stage_seconds
        print("\n# fivm per-stage time (fused ladder)")
        if stages:
            total = sum(stages.values())
            for stage in ("lift", "probe", "multiply", "group", "scatter"):
                if stage in stages:
                    spent = stages[stage]
                    print(
                        f"{stage:>10} {spent:>9.4f}s {100 * spent / total:>5.1f}%"
                    )
            print(
                f"  (fused batches: {profiled.fused_batches}, "
                f"mirror hits/builds: "
                f"{profiled.mirror_hits}/{profiled.mirror_builds})"
            )
        else:
            print("  no fused batches ran (per-tuple path or fusion off)")
    if args.columnar_sweep:
        _columnar_sweep(db, order, query_of, factories, targets, args)
    return 0


# ----------------------------------------------------------------------
# Checkpointing
# ----------------------------------------------------------------------


def _checkpoint_spec(args, payload: str):
    if payload == "covar":
        features, _label = _regression_features(args)
        return CovarSpec(features)
    return CountSpec()


def _counting(events, counter):
    """Pass events through, tallying them in ``counter[0]`` — keeps the
    CLI's memory O(batch) instead of materializing the whole stream."""
    for event in events:
        counter[0] += 1
        yield event


def _checkpoint_stream(meta, db, factories, targets):
    return UpdateStream(
        db,
        factories,
        targets=targets,
        batch_size=int(meta["batch_size"]),
        insert_ratio=float(meta["insert_ratio"]),
        seed=int(meta["seed"]),
    )


def _windowed(events, config):
    """Wrap raw events in a WindowedStream when the config asks for one."""
    spec = config.window_spec()
    if spec is None:
        return events
    return WindowedStream(spec, events)


def cmd_checkpoint_save(args) -> int:
    try:
        with _graceful_sigterm():
            return _run_checkpoint_save(args)
    except KeyboardInterrupt:
        # Periodic snapshots from --every (if any) remain on disk and
        # restorable; the engine was closed by the inner finally.
        print("\ninterrupted; engine closed", file=sys.stderr)
        return 130


def _run_checkpoint_save(args) -> int:
    db, _schemas, order, query_of, factories, targets = _dataset(args)
    query = query_of(_checkpoint_spec(args, args.payload))
    stream = UpdateStream(
        db,
        factories,
        targets=targets,
        batch_size=args.batch_size,
        insert_ratio=args.insert_ratio,
        seed=args.seed,
    )
    # "updates" starts as the requested target; periodic snapshots carry
    # the exact position as events_processed, and the final write below
    # replaces it with the exact emitted count (streams emit in whole
    # batches, so the count can slightly exceed the target).
    metadata = {
        "dataset": args.dataset,
        "scale": args.scale,
        "seed": args.seed,
        "payload": args.payload,
        "updates": args.updates,
        "batch_size": args.batch_size,
        "insert_ratio": args.insert_ratio,
    }
    counter = [0]
    config = engine_config_from_args(args)
    # Counting sits on the *source* stream, so positions stay in source
    # units even when the window wrapper interleaves retractions.
    events = _windowed(_counting(stream.tuples(args.updates), counter), config)
    engine = create_engine(query, config=config, order=order)
    try:
        engine.initialize(db)
        if args.every:
            engine.apply_stream(
                events,
                batch_size=args.batch_size,
                checkpoint_every=args.every,
                on_checkpoint=checkpoint_sink(
                    args.path,
                    compression=args.compression,
                    metadata=metadata,
                    full_every=args.full_every,
                ),
            )
        else:
            engine.apply_stream(events, batch_size=args.batch_size)
        metadata["updates"] = counter[0]
        info = write_checkpoint(
            engine, args.path, compression=args.compression, metadata=metadata
        )
        # The final write starts a fresh chain; mid-run increments from
        # --full-every now chain to a base that no longer exists.
        remove_stale_increments(args.path)
    finally:
        if isinstance(engine, ShardedEngine):
            engine.close()
    shard_note = (
        f", {args.engine_shards} shards" if args.engine_shards > 1 else ""
    )
    print(
        f"# saved checkpoint after {counter[0]} updates "
        f"({args.dataset}, {args.payload} payload{shard_note})"
    )
    print(info.describe())
    return 0


def _skip_windowed_prefix(windowed: WindowedStream, counter, position: int):
    """Replay a windowed stream, dropping the outputs the engine already
    holds.

    The restored engine consumed the windowed compilation of the first
    ``position`` *source* events, including the retractions those events
    triggered. Draining the wrapper while ``counter`` (which counts
    source events) is within the prefix rebuilds the retraction
    scheduler without touching the engine; everything after flows
    through, starting with the boundary retractions the checkpointed run
    had not yet fired.
    """
    for event in windowed:
        if counter[0] <= position:
            continue
        yield event


def cmd_checkpoint_load(args) -> int:
    head = resolve_chain_head(args.path)
    if head != args.path:
        print(f"# chain head: {head}")
    info = read_checkpoint_info(head)
    meta = info.metadata
    required = (
        "dataset", "scale", "seed", "payload",
        "updates", "batch_size", "insert_ratio",
    )
    missing = [key for key in required if key not in meta]
    if missing:
        print(
            f"checkpoint lacks stream metadata {missing}; was it written "
            "by 'repro checkpoint save'?",
            file=sys.stderr,
        )
        return 1
    # Rebuild the dataset and stream exactly as `save` did (seeded, hence
    # deterministic), then restore into the *requested* topology — the
    # checkpoint's shard count need not match --shards. Time semantics
    # (window/decay) come from the checkpoint's own config provenance so
    # the resumed stream means the same thing it did at save time.
    args.dataset, args.scale, args.seed = (
        meta["dataset"], int(meta["scale"]), int(meta["seed"]),
    )
    db, _schemas, order, query_of, factories, targets = _dataset(args)
    query = query_of(_checkpoint_spec(args, meta["payload"]))
    config = engine_config_from_args(args).replace(
        window=info.config.get("window"), decay=info.config.get("decay"),
    )
    engine = create_engine(query, config=config, order=order)
    try:
        restore_checkpoint(engine, head)
        position = int(meta.get("events_processed", meta["updates"]))
        print(f"# restored {info.describe()}")
        print(
            f"stream position: {position} updates "
            f"(root views: {len(engine.result())} entries, "
            f"counters: {engine.stats.updates_applied} updates applied)"
        )
        if args.resume_updates or args.verify:
            total = int(meta["updates"]) + args.resume_updates
            # Regenerate the seeded stream and skip the already-applied
            # prefix lazily — memory stays O(batch), not O(stream).
            stream = _checkpoint_stream(meta, db, factories, targets)
            counter = [0]
            window_spec = config.window_spec()
            if window_spec is not None:
                windowed = WindowedStream(
                    window_spec, _counting(stream.tuples(total), counter)
                )
                remaining = _skip_windowed_prefix(windowed, counter, position)
            else:
                remaining = _counting(
                    itertools.islice(stream.tuples(total), position, None),
                    counter,
                )
            engine.apply_stream(remaining, batch_size=int(meta["batch_size"]))
            resumed = counter[0] - position if window_spec is not None else counter[0]
            print(f"resumed {resumed} updates from the stream")
            if args.verify:
                reference = FIVMEngine(
                    query_of(_checkpoint_spec(args, meta["payload"])),
                    order=order,
                    config=EngineConfig(
                        window=config.window, decay=config.decay
                    ),
                )
                reference.initialize(db)
                replay = _checkpoint_stream(meta, db, factories, targets)
                reference.apply_stream(
                    _windowed(replay.tuples(total), config),
                    batch_size=int(meta["batch_size"]),
                )
                if engine.result().close_to(reference.result(), 1e-9):
                    print(
                        "restored + resumed result identical to "
                        "uninterrupted ingestion ✓"
                    )
                else:  # pragma: no cover - would be a checkpointing bug
                    print(
                        "FAIL: restored result diverges from uninterrupted "
                        "ingestion",
                        file=sys.stderr,
                    )
                    return 1
    finally:
        if isinstance(engine, ShardedEngine):
            engine.close()
    return 0


def cmd_serve(args) -> int:
    scenario = build_serving_scenario(
        args.dataset, args.payload, scale=args.scale, seed=args.seed
    )
    config = engine_config_from_args(args)
    engine = scenario.engine(config=config)
    # Epoch 1 covers the initial database (event offset 0): readers get
    # answers from the first request on, never a 503 warm-up window.
    engine.publish(event_offset=0)
    stream = scenario.stream(
        batch_size=args.batch_size, insert_ratio=args.insert_ratio
    )
    metadata = scenario.provenance(args.batch_size, args.insert_ratio)
    metadata["updates"] = args.updates
    if args.checkpoint_every and not args.checkpoint:
        print("--checkpoint-every requires --checkpoint PATH", file=sys.stderr)
        return 2
    on_checkpoint = (
        checkpoint_sink(args.checkpoint, metadata=metadata)
        if args.checkpoint_every
        else None
    )
    # Windowed serving: the ingest thread consumes the windowed
    # compilation, and apply_stream stamps each published epoch with the
    # live window bounds (surfaced by /stats).
    ingest = IngestThread(
        engine,
        _windowed(stream.tuples(args.updates), config),
        batch_size=args.batch_size,
        checkpoint_every=args.checkpoint_every,
        on_checkpoint=on_checkpoint,
    )

    def degraded_reason():
        # Writer death does not take reads down: readers keep answering
        # from the last published snapshot, flagged degraded.
        if ingest.error is not None:
            return f"ingest writer failed: {ingest.error}"
        health = engine.health()
        if health.get("status") not in ("ok", "uninitialized"):
            return f"engine {health.get('status')}"
        return None

    app = ServingApp(
        engine,
        regression_label=scenario.regression_label,
        mi_label=scenario.mi_label,
        position_source=lambda: ingest.consumed,
        metadata=metadata,
        degraded_source=degraded_reason,
    )
    server = ServerThread(app, host=args.host, port=args.port)
    exit_code = 0
    interrupted = False
    with _graceful_sigterm():
        try:
            server.start()
            print(
                f"# serving {args.dataset} ({args.payload} payload"
                + (f", {args.engine_shards} shards" if args.engine_shards > 1 else "")
                + f") on {server.url}",
                flush=True,
            )
            print(
                "endpoints: /covar /predict /model /topk /result /healthz /stats",
                flush=True,
            )
            ingest.start()
            ingest.join()
            if ingest.error is not None:
                # Degrade rather than die: /healthz reports degraded with
                # the failure reason while reads continue from the last
                # published epoch. The non-zero exit waits for shutdown.
                exit_code = 1
                print(
                    f"ingest failed: {ingest.error}; "
                    "continuing to serve the last published snapshot "
                    "(degraded)",
                    file=sys.stderr,
                )
            else:
                snapshot = engine.latest_snapshot()
                print(
                    f"ingest done: {ingest.consumed} updates in "
                    f"{ingest.seconds:.2f}s "
                    f"({ingest.throughput:.0f} updates/s), "
                    f"epoch {snapshot.epoch} published",
                    flush=True,
                )
            if args.linger < 0:
                print("serving until interrupted (Ctrl-C) ...", flush=True)
                while True:
                    time.sleep(3600)
            elif args.linger:
                time.sleep(args.linger)
        except KeyboardInterrupt:
            interrupted = True
            print("\ninterrupted; shutting down", flush=True)
        finally:
            server.stop()
            if interrupted and ingest.is_alive():
                # Stop at the next event boundary, then let the drain
                # finish so the final checkpoint sees a settled engine.
                ingest.stop()
                ingest.join(timeout=60.0)
            if (
                args.checkpoint_every
                and args.checkpoint
                and ingest.error is None
                and not ingest.is_alive()
            ):
                try:
                    write_checkpoint(
                        engine,
                        args.checkpoint,
                        metadata=dict(
                            metadata, events_processed=ingest.consumed
                        ),
                    )
                    remove_stale_increments(args.checkpoint)
                    print(
                        f"final checkpoint written to {args.checkpoint} "
                        f"(position {ingest.consumed})",
                        flush=True,
                    )
                except Exception as exc:  # pragma: no cover - disk full etc.
                    print(f"final checkpoint failed: {exc}", file=sys.stderr)
            if isinstance(engine, ShardedEngine):
                engine.close()
    print(f"served {app.reads} reads ({app.errors} errors)")
    return exit_code


def cmd_checkpoint_info(args) -> int:
    info = read_checkpoint_info(args.path)
    created = datetime.datetime.fromtimestamp(info.created_at)
    print(info.describe())
    print(f"created: {created.isoformat(timespec='seconds')}")
    for key in sorted(info.metadata):
        print(f"  {key}: {info.metadata[key]}")
    if info.config:
        print("engine config:")
        for key in sorted(info.config):
            print(f"  {key}: {info.config[key]}")
    return 0


# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="F-IVM demo applications from the command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument(
            "--dataset", choices=("retailer", "favorita"), default="retailer"
        )
        p.add_argument("--scale", type=int, default=1, help="size multiplier")
        p.add_argument("--seed", type=int, default=1)

    info = sub.add_parser("info", help="view tree + M3 code (Fig 2d)")
    common(info)
    info.add_argument("--payload", choices=("count", "covar", "mi"), default="covar")
    info.add_argument("--dot", action="store_true", help="also print DOT")
    info.set_defaults(func=cmd_info)

    run = sub.add_parser("run", help="run a demo application over update bulks")
    common(run)
    run.add_argument(
        "--app",
        choices=("model-selection", "regression", "chow-liu"),
        default="model-selection",
    )
    run.add_argument("--bulks", type=int, default=2)
    run.add_argument("--bulk-updates", type=int, default=2000)
    run.add_argument("--batch-size", type=int, default=500)
    run.add_argument("--insert-ratio", type=float, default=0.75)
    run.add_argument("--threshold", type=float, default=0.1)
    run.set_defaults(func=cmd_run)

    bench = sub.add_parser("bench", help="quick engine comparison")
    common(bench)
    bench.add_argument("--batches", type=int, default=5)
    bench.add_argument("--batch-size", type=int, default=100)
    bench.add_argument("--insert-ratio", type=float, default=0.7)
    bench.add_argument(
        "--ingest",
        choices=("batch", "tuple", "stream"),
        default="batch",
        help=(
            "batch: apply pre-built batches; tuple: one apply per tuple; "
            "stream: single-tuple events re-coalesced by the UpdateBatcher"
        ),
    )
    bench.add_argument(
        "--columnar-sweep",
        action="store_true",
        help=(
            "also report columnar vs per-tuple updates/s at batch sizes "
            "1/10/100/1000 (comparable to bench_delta_latency.py)"
        ),
    )
    add_engine_cli_args(bench)
    bench.set_defaults(func=cmd_bench)

    ckpt = sub.add_parser(
        "checkpoint", help="save/restore engine state (incl. across shard counts)"
    )
    ckpt_sub = ckpt.add_subparsers(dest="checkpoint_command", required=True)

    save = ckpt_sub.add_parser(
        "save", help="ingest a seeded stream, then snapshot the engine"
    )
    common(save)
    add_engine_cli_args(save)
    save.add_argument("path", help="checkpoint file to write")
    save.add_argument("--payload", choices=("count", "covar"), default="count")
    save.add_argument("--updates", type=int, default=2000)
    save.add_argument("--batch-size", type=int, default=500)
    save.add_argument("--insert-ratio", type=float, default=0.7)
    save.add_argument(
        "--every",
        type=int,
        default=0,
        metavar="N",
        help="also snapshot every N updates while ingesting (0: only at the end)",
    )
    save.add_argument(
        "--full-every",
        type=int,
        default=1,
        metavar="K",
        help=(
            "with --every: write a full snapshot every K-th checkpoint and "
            "incremental deltas (PATH.incN) in between (1: always full)"
        ),
    )
    save.add_argument("--compression", choices=("zlib", "none"), default="zlib")
    save.set_defaults(func=cmd_checkpoint_save)

    load = ckpt_sub.add_parser(
        "load",
        help=(
            "restore a checkpoint into a (possibly differently sharded) "
            "engine; optionally resume and verify against full replay"
        ),
    )
    add_engine_cli_args(load)
    load.add_argument("path", help="checkpoint file to read")
    load.add_argument(
        "--resume-updates",
        type=int,
        default=0,
        metavar="K",
        help="replay K further stream updates after restoring",
    )
    load.add_argument(
        "--verify",
        action="store_true",
        help="replay the whole stream from scratch and compare results",
    )
    load.set_defaults(func=cmd_checkpoint_load)

    info_ckpt = ckpt_sub.add_parser("info", help="print a checkpoint's header")
    info_ckpt.add_argument("path", help="checkpoint file to inspect")
    info_ckpt.set_defaults(func=cmd_checkpoint_info)

    serve = sub.add_parser(
        "serve", help="serve model reads over HTTP while ingesting updates"
    )
    serve.add_argument(
        "--dataset", choices=("toy", "retailer", "favorita"), default="toy"
    )
    serve.add_argument("--scale", type=int, default=1, help="size multiplier")
    serve.add_argument("--seed", type=int, default=1)
    serve.add_argument("--payload", choices=("count", "covar", "mi"), default="covar")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8321, help="listening port (0: ephemeral)"
    )
    serve.add_argument(
        "--updates", type=int, default=5000, help="stream events to ingest"
    )
    serve.add_argument("--batch-size", type=int, default=200)
    serve.add_argument("--insert-ratio", type=float, default=0.7)
    add_engine_cli_args(serve)
    serve.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="checkpoint file for --checkpoint-every and the shutdown flush",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help=(
            "snapshot the engine to --checkpoint every N ingested updates; "
            "a final snapshot is also flushed on graceful shutdown "
            "(0: no checkpointing)"
        ),
    )
    serve.add_argument(
        "--linger",
        type=float,
        default=-1.0,
        metavar="SECONDS",
        help=(
            "keep serving this long after ingest completes "
            "(negative: until Ctrl-C)"
        ),
    )
    serve.set_defaults(func=cmd_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
