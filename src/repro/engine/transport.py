"""Shard data planes: how delta payloads and gathered results move.

The sharded process backend has two kinds of traffic. *Control* — op
names, buffer generations, block layouts, tiny stats dicts — is cheap
and stays on the duplex pipes. *Data* — columnar delta blocks on the way
down, merged result/state blobs on the way up — dominates the
coordinator's time, and this module makes it a pluggable
:class:`ShardTransport`:

- :class:`PipeTransport` is the historical wire: whole deltas pickled
  through the pipe (columnar or dict form), every gather fanned in and
  merged serially on the coordinator.
- :class:`SharedMemoryTransport` moves payload bytes through
  ``multiprocessing.shared_memory`` instead:

  * **down (coordinator -> shard):** one double-buffered ring per shard.
    The coordinator writes a delta's typed blocks straight into slot
    ``generation % 2`` (one vectorized copy, nothing pickled) and sends
    only ``("applyd", relation, generation, layout)`` over the pipe. The
    worker copies the blocks out, then publishes the generation in the
    ring header; the coordinator never runs more than two generations
    ahead — the flow control that lets applies stay fire-and-forget.
    Oversized deltas trigger a drain + coordinator-side segment swap
    (a ``remap`` control message), so rings grow to the workload.
  * **up (shard -> coordinator):** one block per shard for tree-wise
    gathers. ``result()``/``export_state()`` merges run *pairwise
    across the workers* (shard 1 writes its part, shard 0 merges it,
    round by log-depth round) instead of coordinator-serially; the
    coordinator reads one final blob from shard 0. Every merge path —
    serial backend, pipe gather, shm tree — folds in the identical
    pairwise structure, so all three transports are bit-exact for any
    ring. Workers that fail or overflow publish poison headers
    (``flag=-2`` / ``-1``) so partners abort quickly; overflow grows
    the up blocks and retries.

Segments are created, unlinked and grown **only by the coordinator**:
workers attach by name and detach again, so a crashed worker can never
leak a segment, and a crashed coordinator leaves cleanup to Python's
``resource_tracker`` (which registered every created segment). All
segment names carry :data:`SEGMENT_PREFIX` — :func:`active_shm_segments`
scans ``/dev/shm`` for leaks in tests and CI.
"""

from __future__ import annotations

import os
import pickle
import time
import zlib
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.data.columnar import ColumnarDelta, decode_blocks
from repro.errors import EngineError
from repro.testing import faults as _faults

try:  # stdlib everywhere we support; guarded for exotic builds
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platform without shm
    _shared_memory = None

__all__ = [
    "SEGMENT_PREFIX",
    "TRANSPORTS",
    "ShardTransport",
    "PipeTransport",
    "SharedMemoryTransport",
    "ShmWorkerEndpoint",
    "available_transports",
    "resolve_transport",
    "active_shm_segments",
]

#: Every segment this module creates is named ``fivmshm_<pid>_<nonce>_<n>``.
SEGMENT_PREFIX = "fivmshm"

TRANSPORTS = ("pipe", "shm")

#: Bytes reserved at the start of every segment for the int64 header.
_HEADER_BYTES = 64
_HEADER_INTS = _HEADER_BYTES // 8

# Up-block header slots and flags.
_H_SEQ, _H_ROUND, _H_FLAG, _H_LENGTH = 0, 1, 2, 3
_FLAG_OK = 0
_FLAG_OVERFLOW = -1
_FLAG_FAILED = -2


def available_transports() -> Tuple[str, ...]:
    """Transports usable on this platform."""
    if _shared_memory is None:  # pragma: no cover - platform without shm
        return ("pipe",)
    return TRANSPORTS


def resolve_transport(transport: str, backend: str) -> str:
    """Resolve ``"auto"`` and validate an explicit choice.

    Only the process backend has a wire at all; for the serial backend
    every transport resolves to ``"none"`` (engines are called in
    process).
    """
    if backend != "process":
        return "none"
    if transport == "auto":
        return "shm" if "shm" in available_transports() else "pipe"
    if transport not in TRANSPORTS:
        raise EngineError(
            f"unknown shard transport {transport!r}; expected one of "
            f"{('auto',) + TRANSPORTS}"
        )
    if transport not in available_transports():  # pragma: no cover
        raise EngineError(
            "the shm transport needs multiprocessing.shared_memory "
            "(unavailable on this platform); use transport='pipe'"
        )
    return transport


def active_shm_segments(prefix: str = SEGMENT_PREFIX) -> List[str]:
    """Live shared-memory segments created by this module (leak scan)."""
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-Linux
        return []
    try:
        names = os.listdir(root)
    except OSError:  # pragma: no cover - defensive
        return []
    return sorted(name for name in names if name.startswith(prefix))


class _ShmOverflow(Exception):
    """A blob did not fit its up block; carries the needed byte count."""

    def __init__(self, needed: int):
        super().__init__(needed)
        self.needed = int(needed)


def _attach(name: str):
    """Attach to an existing segment created by the coordinator.

    Workers are *forked*, so they share the coordinator's resource
    tracker process; the registration an attach performs (pre-3.13
    ``SharedMemory(name=...)`` always registers) lands in the same
    per-name set the coordinator's create already populated and dedups
    to a no-op. The coordinator's ``unlink()`` then unregisters the one
    entry — no spurious tracker unlinks, no leak warnings, and the
    tracker still cleans every segment up if the coordinator crashes.
    """
    return _shared_memory.SharedMemory(name=name)


class _Segment:
    """One mapped segment plus its cached int64 header view."""

    __slots__ = ("name", "shm", "buf", "header")

    def __init__(self, name: str, size: int = 0, create: bool = False):
        if create:
            self.shm = _shared_memory.SharedMemory(
                name=name, create=True, size=size
            )
        else:
            self.shm = _attach(name)
        self.name = name
        self.buf = self.shm.buf
        self.header = np.frombuffer(
            self.buf, dtype=np.int64, count=_HEADER_INTS
        )

    def close(self) -> None:
        # The numpy header view exports the segment's buffer; drop it
        # first or SharedMemory.close() raises BufferError.
        self.header = None
        self.buf = None
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - stray external view
            pass

    def unlink(self) -> None:
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def _grown_size(needed: int, floor: int) -> int:
    """Next power of two above 1.5x the needed bytes (>= floor)."""
    target = max(int(needed * 1.5), floor, 1)
    return 1 << (target - 1).bit_length()


# ----------------------------------------------------------------------
# The transport protocol
# ----------------------------------------------------------------------


class ShardTransport:
    """What the process backend needs from a shard data plane.

    One instance per backend; :meth:`setup` runs before the workers
    fork, :meth:`worker_endpoint` hands each worker its (picklable,
    lazily attaching) end, :meth:`send_delta` ships one routed delta,
    and :meth:`close` releases every OS resource (idempotent —
    crash-path teardown calls it again). Transports with
    ``tree_gather = True`` additionally implement the tree-merge
    primitives (:meth:`new_sequence`, :meth:`read_final`,
    :meth:`grow_up`) the backend drives for ``result()`` /
    ``export_state()`` gathers.
    """

    name = "abstract"
    #: Does :meth:`send_delta` want :class:`ColumnarDelta` slices?
    wants_columnar = True
    #: Do result/export gathers merge tree-wise across the workers?
    tree_gather = False

    def setup(self, shards: int) -> None:
        raise NotImplementedError

    def worker_endpoint(self, shard: int) -> Optional["ShmWorkerEndpoint"]:
        raise NotImplementedError

    def send_delta(
        self, conn, shard: int, relation_name: str, delta,
        alive: Optional[Callable[[], bool]] = None,
    ) -> None:
        raise NotImplementedError

    def reset_shard(self, shard: int) -> None:
        """Forget per-shard wire state before a respawned worker attaches
        (fresh segments/generations where the transport keeps any)."""

    def close(self) -> None:
        raise NotImplementedError


class PipeTransport(ShardTransport):
    """The historical data plane: whole deltas pickled through the pipe.

    ``columnar=True`` (default) ships ``("applyc", name, columns,
    counts)`` — homogeneous lists that pickle without a tuple object per
    key; ``columnar=False`` restores the dict wire form for ablation.
    Gathers stay coordinator-serial (the backend fans in and merges).
    """

    name = "pipe"
    tree_gather = False

    def __init__(self, columnar: bool = True):
        self.wants_columnar = bool(columnar)

    def setup(self, shards: int) -> None:
        pass

    def worker_endpoint(self, shard: int) -> None:
        return None

    def send_delta(self, conn, shard, relation_name, delta, alive=None):
        if isinstance(delta, ColumnarDelta):
            _schema, columns, counts = delta.transport()
            conn.send(("applyc", relation_name, columns, counts))
        else:
            conn.send(("apply", relation_name, delta.data))

    def close(self) -> None:
        pass


class SharedMemoryTransport(ShardTransport):
    """Zero-copy data plane over ``multiprocessing.shared_memory``.

    See the module docstring for the ring/flow-control design. All
    class-level constants are deliberately patchable: tests shrink the
    rings to force growth/overflow paths and shorten the timeouts.
    """

    name = "shm"
    wants_columnar = True
    tree_gather = True

    #: Default per-slot bytes of a down ring (two slots per shard).
    DOWN_SLOT_BYTES = 1 << 20
    #: Default body bytes of an up block (one per shard).
    UP_BYTES = 1 << 22
    #: How long the coordinator waits for a worker to free a slot.
    APPLY_TIMEOUT = 120.0
    #: How long a worker waits for its merge partner's blob.
    MERGE_TIMEOUT = 60.0
    #: Spin-sleep between header polls (seconds).
    POLL_INTERVAL = 0.0002

    def __init__(
        self,
        slot_bytes: Optional[int] = None,
        up_bytes: Optional[int] = None,
    ):
        if _shared_memory is None:  # pragma: no cover - platform without shm
            raise EngineError(
                "multiprocessing.shared_memory is unavailable; "
                "use the pipe transport"
            )
        self.slot_floor = int(slot_bytes or self.DOWN_SLOT_BYTES)
        self.up_bytes = int(up_bytes or self.UP_BYTES)
        self._base = (
            f"{SEGMENT_PREFIX}_{os.getpid()}_{os.urandom(3).hex()}"
        )
        self._serial = 0
        self._down: List[_Segment] = []
        self._down_slot: List[int] = []
        self._next_gen: List[int] = []
        self._ups: List[_Segment] = []
        self._seq = 0
        self._closed = False

    # -- lifecycle ------------------------------------------------------

    def setup(self, shards: int) -> None:
        try:
            for _ in range(shards):
                self._down.append(
                    self._create(_HEADER_BYTES + 2 * self.slot_floor)
                )
                self._down_slot.append(self.slot_floor)
                self._next_gen.append(1)
                self._ups.append(self._create(_HEADER_BYTES + self.up_bytes))
        except Exception:
            self.close()
            raise

    def _create(self, size: int) -> _Segment:
        self._serial += 1
        return _Segment(f"{self._base}_{self._serial}", size=size, create=True)

    def worker_endpoint(self, shard: int) -> "ShmWorkerEndpoint":
        return ShmWorkerEndpoint(
            shard=shard,
            down_name=self._down[shard].name,
            up_names=tuple(segment.name for segment in self._ups),
            down_slot_bytes=self._down_slot[shard],
            up_bytes=self.up_bytes,
            merge_timeout=self.MERGE_TIMEOUT,
            poll_interval=self.POLL_INTERVAL,
        )

    def reset_shard(self, shard: int) -> None:
        """Fresh down ring for a respawned worker.

        The dead worker may have left any consumed-generation watermark
        in the old ring's header, so the coordinator swaps in a brand-new
        (zero-filled) segment and restarts the shard's generation clock;
        ``worker_endpoint`` then hands the respawned worker the new name.
        The old segment is unlinked — the dead worker's mapping (if the
        process is only now being reaped) cannot leak it.
        """
        replacement = self._create(
            _HEADER_BYTES + 2 * self._down_slot[shard]
        )
        old = self._down[shard]
        self._down[shard] = replacement
        self._next_gen[shard] = 1
        old.close()
        old.unlink()

    def close(self) -> None:
        """Unlink every segment (idempotent; safe mid-construction)."""
        if self._closed:
            return
        self._closed = True
        for segment in self._down + self._ups:
            segment.close()
            segment.unlink()
        self._down = []
        self._ups = []

    # -- down: coordinator -> shard delta blocks ------------------------

    def send_delta(self, conn, shard, relation_name, delta, alive=None):
        blocks = delta.to_blocks()
        if blocks.nbytes > self._down_slot[shard]:
            self._grow_down(conn, shard, blocks.nbytes, alive)
        generation = self._next_gen[shard]
        # Double buffering: generation g may be written once g-2 is
        # consumed — the worker still reads g-1 from the other slot.
        self._wait_consumed(shard, generation - 2, alive, "delta slot")
        segment = self._down[shard]
        offset = _HEADER_BYTES + (generation % 2) * self._down_slot[shard]
        layout = blocks.write_into(segment.buf, offset)
        # Checksum over the staged region: the worker verifies before
        # decoding, so a torn write (a writer dying mid-copy, a stray
        # remote corruption) surfaces as a descriptive shard failure
        # instead of silently wrong view state.
        crc = (
            zlib.crc32(segment.buf[offset:offset + blocks.nbytes])
            if blocks.nbytes
            else 0
        )
        if _faults.current_injector() is not None:
            spec = _faults.fire("shm.write", shard=shard)
            if spec is not None and spec.kind == "torn" and blocks.nbytes:
                mid = offset + blocks.nbytes // 2
                segment.buf[mid] = (segment.buf[mid] + 1) & 0xFF
        conn.send(
            ("applyd", relation_name, generation, layout, blocks.nbytes, crc)
        )
        self._next_gen[shard] = generation + 1

    def _wait_consumed(self, shard, target, alive, what) -> None:
        if target < 1:
            return
        segment = self._down[shard]
        deadline = time.monotonic() + self.APPLY_TIMEOUT
        spins = 0
        while int(segment.header[0]) < target:
            spins += 1
            if alive is not None and spins % 64 == 0 and not alive():
                raise EngineError(
                    f"shard {shard} worker died while the coordinator "
                    f"waited for a shared-memory {what}"
                )
            if time.monotonic() > deadline:
                raise EngineError(
                    f"timed out after {self.APPLY_TIMEOUT:.0f}s waiting for "
                    f"shard {shard} to consume a shared-memory {what}"
                )
            time.sleep(self.POLL_INTERVAL)

    def _grow_down(self, conn, shard, needed, alive) -> None:
        """Swap in a larger down ring (drain, create, remap, unlink)."""
        self._wait_consumed(
            shard, self._next_gen[shard] - 1, alive, "ring drain"
        )
        slot = _grown_size(needed, self.slot_floor)
        replacement = self._create(_HEADER_BYTES + 2 * slot)
        # Carry the consumed watermark over: everything so far is done.
        replacement.header[0] = self._next_gen[shard] - 1
        old = self._down[shard]
        self._down[shard] = replacement
        self._down_slot[shard] = slot
        try:
            conn.send(("remap", replacement.name, slot))
        except (BrokenPipeError, OSError) as exc:
            raise EngineError(
                f"shard {shard} worker is gone: {exc!r}"
            ) from None
        # Unlinking while the worker is still attached is safe on every
        # platform shared_memory supports; the name just disappears.
        old.close()
        old.unlink()

    # -- up: tree-merge primitives --------------------------------------

    def new_sequence(self) -> int:
        self._seq += 1
        return self._seq

    def read_final(self, seq: int):
        """Load shard 0's final merged blob for gather ``seq``.

        Called only after every worker acknowledged the gather, so the
        header is final — a mismatch means the protocol broke.
        """
        segment = self._ups[0]
        header = segment.header
        if int(header[_H_SEQ]) != seq or int(header[_H_FLAG]) != _FLAG_OK:
            raise EngineError(
                "shared-memory gather out of sync: shard 0 block holds "
                f"seq {int(header[_H_SEQ])} flag {int(header[_H_FLAG])}, "
                f"expected seq {seq}"
            )
        length = int(header[_H_LENGTH])
        blob = bytes(segment.buf[_HEADER_BYTES:_HEADER_BYTES + length])
        return pickle.loads(blob)

    def grow_up(self, needed: int) -> Tuple[Tuple[str, ...], int]:
        """Replace every up block with a larger one after an overflow."""
        self.up_bytes = _grown_size(needed, self.up_bytes)
        old = self._ups
        self._ups = [
            self._create(_HEADER_BYTES + self.up_bytes) for _ in old
        ]
        for segment in old:
            segment.close()
            segment.unlink()
        return tuple(segment.name for segment in self._ups), self.up_bytes


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _merge_schedule(shard: int, shards: int):
    """The (role, partner, round) steps of one worker's tree merge.

    Standard binomial reduction: in round r (step ``2**r``) shard ``s``
    *sends* to ``s - step`` when ``s % (2 * step) == step``, *receives*
    from ``s + step`` when ``s % (2 * step) == 0`` and the partner
    exists. Shard 0 ends holding the full merge and writes the final
    blob at the round after its last receive. The coordinator-side
    pairwise fold (:func:`repro.engine.sharded.pairwise_fold`) combines
    in exactly this structure, which is what makes serial, pipe and shm
    results bit-identical.
    """
    step, rnd = 1, 0
    while step < shards:
        if shard % (2 * step) == step:
            yield ("send", shard - step, rnd)
            return
        if shard % (2 * step) == 0 and shard + step < shards:
            yield ("recv", shard + step, rnd)
        step *= 2
        rnd += 1
    yield ("final", -1, rnd)


class ShmWorkerEndpoint:
    """A worker's end of the shared-memory transport.

    Built on the coordinator *before* the fork (plain strings and ints,
    so it crosses the boundary trivially) and attached lazily on first
    use inside the worker. Attachments never register with the resource
    tracker — the coordinator owns every segment's lifetime.
    """

    def __init__(
        self,
        shard: int,
        down_name: str,
        up_names: Tuple[str, ...],
        down_slot_bytes: int,
        up_bytes: int,
        merge_timeout: float,
        poll_interval: float,
    ):
        self.shard = int(shard)
        self.down_name = down_name
        self.up_names = tuple(up_names)
        self.down_slot_bytes = int(down_slot_bytes)
        self.up_bytes = int(up_bytes)
        self.merge_timeout = float(merge_timeout)
        self.poll_interval = float(poll_interval)
        self._down: Optional[_Segment] = None
        self._ups = {}

    @property
    def shards(self) -> int:
        return len(self.up_names)

    # -- attachments ----------------------------------------------------

    def _down_segment(self) -> _Segment:
        if self._down is None:
            self._down = _Segment(self.down_name)
        return self._down

    def _up_segment(self, shard: int) -> _Segment:
        segment = self._ups.get(shard)
        if segment is None:
            segment = self._ups[shard] = _Segment(self.up_names[shard])
        return segment

    def close(self) -> None:
        if self._down is not None:
            self._down.close()
            self._down = None
        for segment in self._ups.values():
            segment.close()
        self._ups = {}

    # -- down: delta intake ---------------------------------------------

    def read_delta(
        self, schema, relation_name, generation, layout,
        nbytes: Optional[int] = None, crc: Optional[int] = None,
    ):
        """Decode one delta out of its slot, then release the slot.

        When the coordinator sent a checksum, the staged region is
        verified *before* decoding — a torn write raises a descriptive
        :class:`EngineError` (parked like any apply failure) instead of
        feeding corrupt blocks into maintenance. The decode copies every
        block (the returned relation owns its data), so marking the
        generation consumed — which licenses the coordinator to
        overwrite the slot — is safe in ``finally`` even when decoding
        raises.
        """
        segment = self._down_segment()
        try:
            if crc is not None and nbytes:
                _length, entries = layout
                start = entries[0][2] if entries else 0
                actual = zlib.crc32(segment.buf[start:start + nbytes])
                if actual != crc:
                    raise EngineError(
                        f"torn shared-memory delta for {relation_name!r} "
                        f"(shard {self.shard}, generation {generation}: "
                        f"checksum mismatch)"
                    )
            delta = decode_blocks(
                schema, segment.buf, layout, name=relation_name
            )
            return delta.to_relation()
        finally:
            self.mark_consumed(generation)

    def mark_consumed(self, generation: int) -> None:
        self._down_segment().header[0] = generation

    def remap_down(self, name: str, slot_bytes: int) -> None:
        """Switch to a replacement (grown) down ring."""
        if self._down is not None:
            self._down.close()
        self.down_name = name
        self.down_slot_bytes = int(slot_bytes)
        self._down = None

    def remap_up(self, names: Tuple[str, ...], up_bytes: int) -> None:
        """Switch to replacement (grown) up blocks."""
        for segment in self._ups.values():
            segment.close()
        self._ups = {}
        self.up_names = tuple(names)
        self.up_bytes = int(up_bytes)

    # -- up: tree merge -------------------------------------------------

    def tree_merge(self, seq: int, payload, combine) -> None:
        """Run this worker's rounds of gather ``seq``.

        ``payload`` is this shard's local part; ``combine(mine, theirs)``
        merges a partner's part in (receivers always keep the
        lower-shard side on the left). Senders write their blob for the
        partner and return; shard 0 writes the final merged blob for the
        coordinator. Raises :class:`_ShmOverflow` when a blob does not
        fit (retryable after the coordinator grows the blocks) and
        :class:`EngineError` when a partner failed or timed out.
        """
        for role, partner, rnd in _merge_schedule(self.shard, self.shards):
            if role == "recv":
                payload = combine(payload, self._read_blob(partner, seq, rnd))
            else:  # "send" to partner, or shard 0's "final" write
                self._write_blob(seq, rnd, pickle.dumps(
                    payload, protocol=pickle.HIGHEST_PROTOCOL
                ))
        return None

    def poison(self, seq: int, needed: Optional[int] = None) -> None:
        """Publish a failure (or overflow) header at this worker's write
        round so waiting partners abort instead of timing out."""
        for role, _partner, rnd in _merge_schedule(self.shard, self.shards):
            if role in ("send", "final"):
                flag = _FLAG_OVERFLOW if needed else _FLAG_FAILED
                self._write_header(rnd, flag, needed or 0, seq)
        # Unreachable schedules always end in send/final, so the loop
        # body above runs exactly once for the terminal step.

    def _write_blob(self, seq: int, rnd: int, blob: bytes) -> None:
        segment = self._up_segment(self.shard)
        if len(blob) > self.up_bytes:
            self._write_header(rnd, _FLAG_OVERFLOW, len(blob), seq)
            raise _ShmOverflow(len(blob))
        segment.buf[_HEADER_BYTES:_HEADER_BYTES + len(blob)] = blob
        self._write_header(rnd, _FLAG_OK, len(blob), seq)

    def _write_header(self, rnd: int, flag: int, length: int, seq: int) -> None:
        header = self._up_segment(self.shard).header
        header[_H_ROUND] = rnd
        header[_H_FLAG] = flag
        header[_H_LENGTH] = length
        # seq last: readers poll seq/round, so everything else must be
        # in place when the sequence number appears.
        header[_H_SEQ] = seq

    def _read_blob(self, partner: int, seq: int, rnd: int):
        segment = self._up_segment(partner)
        header = segment.header
        deadline = time.monotonic() + self.merge_timeout
        while True:
            if int(header[_H_SEQ]) == seq and int(header[_H_ROUND]) == rnd:
                flag = int(header[_H_FLAG])
                length = int(header[_H_LENGTH])
                if flag == _FLAG_OK:
                    blob = bytes(
                        segment.buf[_HEADER_BYTES:_HEADER_BYTES + length]
                    )
                    return pickle.loads(blob)
                if flag == _FLAG_OVERFLOW:
                    raise _ShmOverflow(length)
                raise EngineError(f"merge partner shard {partner} failed")
            if time.monotonic() > deadline:
                raise EngineError(
                    f"timed out after {self.merge_timeout:.0f}s waiting for "
                    f"merge partner shard {partner} (gather seq {seq})"
                )
            time.sleep(self.poll_interval)
