"""Per-aggregate baseline: one scalar view per COVAR entry.

F-IVM maintains the whole COVAR batch — ``1 + m + m(m+1)/2`` aggregates —
as a *single* compound ring payload, sharing keys, joins and the scalar
sub-aggregates across the batch (Section 2: "the scalar aggregates are
used to scale up the linear and quadratic ones..."). A system without
compound payloads maintains each aggregate as its own view. This engine
models that strategy: it runs one scalar :class:`FIVMEngine` per aggregate
(count, each ``SUM(X)``, each ``SUM(X*Y)``), so the comparison isolates the
benefit of ring batching from everything else — both sides use identical
view trees and delta processing.

Continuous features only: the baseline mirrors the paper's DBToaster
comparison, which ran the regression workload.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.database import Database
from repro.data.relation import Relation
from repro.engine.base import MaintenanceEngine
from repro.engine.fivm import FIVMEngine
from repro.errors import EngineError
from repro.query.query import Query
from repro.query.variable_order import VariableOrder
from repro.rings.lifting import Feature
from repro.rings.specs import CountSpec, SumProductSpec

__all__ = ["PerAggregateEngine"]


class PerAggregateEngine(MaintenanceEngine):
    """Maintain a COVAR matrix as independent scalar aggregates."""

    strategy = "per-aggregate"

    def __init__(
        self,
        query: Query,
        features: Sequence[Feature],
        order: Optional[VariableOrder] = None,
    ):
        super().__init__(query)
        for feature in features:
            if feature.is_categorical:
                raise EngineError(
                    "PerAggregateEngine supports continuous features only"
                )
        self.features: Tuple[Feature, ...] = tuple(features)
        names = [feature.name for feature in self.features]
        specs: List[Tuple[str, object]] = [("count", CountSpec())]
        for name in names:
            specs.append((f"sum({name})", SumProductSpec(((name, 1),))))
        for i, a in enumerate(names):
            for b in names[i:]:
                if a == b:
                    spec = SumProductSpec(((a, 2),))
                else:
                    spec = SumProductSpec(((a, 1), (b, 1)))
                specs.append((f"sum({a}*{b})", spec))
        self.aggregates: Tuple[str, ...] = tuple(label for label, _ in specs)
        self.engines: Dict[str, FIVMEngine] = {
            label: FIVMEngine(replace_spec(query, spec, label), order=order)
            for label, spec in specs
        }

    # ------------------------------------------------------------------

    def initialize(self, database: Database) -> None:
        for engine in self.engines.values():
            engine.initialize(database)
        self._initialized = True

    def apply(self, relation_name: str, delta: Relation) -> None:
        self._require_initialized()
        self.stats.record_batch(delta)
        for engine in self.engines.values():
            engine.apply(relation_name, delta)

    def result(self) -> Relation:
        """The count view's result (keys match all per-aggregate views)."""
        self._require_initialized()
        return self.engines["count"].result()

    # ------------------------------------------------------------------

    def scalar(self, label: str) -> float:
        """Current value of one aggregate (empty-key queries only)."""
        self._require_initialized()
        try:
            engine = self.engines[label]
        except KeyError:
            raise EngineError(f"unknown aggregate {label!r}") from None
        payload = engine.result().payload(())
        return float(payload)

    # ------------------------------------------------------------------
    # Checkpointing: one nested "views" snapshot per scalar aggregate.
    # ------------------------------------------------------------------

    state_payload = "aggregates"

    def _export_payload(self) -> dict:
        return {
            "aggregates": {
                label: engine.export_state()
                for label, engine in self.engines.items()
            }
        }

    def _import_payload(self, state) -> None:
        aggregates = state["aggregates"]
        expected = set(self.aggregates)
        if set(aggregates) != expected:
            raise EngineError(
                f"snapshot aggregates {sorted(aggregates)} do not match "
                f"this engine's {sorted(expected)} (different feature set?)"
            )
        # Each nested state re-validates its own header, so a snapshot
        # taken over a different query raises before anything restores.
        for label in self.aggregates:
            self.engines[label].import_state(aggregates[label])

    def covar_matrix(self) -> Tuple[float, np.ndarray, np.ndarray]:
        """Assemble (c, s, Q) from the independent scalar views."""
        self._require_initialized()
        names = [feature.name for feature in self.features]
        m = len(names)
        c = self.scalar("count")
        s = np.array([self.scalar(f"sum({name})") for name in names])
        q = np.zeros((m, m))
        for i, a in enumerate(names):
            for j in range(i, m):
                b = names[j]
                value = self.scalar(f"sum({a}*{b})")
                q[i, j] = value
                q[j, i] = value
        return c, s, q


def replace_spec(query: Query, spec, label: str) -> Query:
    """Clone ``query`` with a different payload spec."""
    return Query(
        name=f"{query.name}:{label}",
        relations=query.relations,
        spec=spec,
        free=query.free,
    )
