"""First-order IVM baseline: maintain the result, recompute deltas.

Classical incremental view maintenance keeps only the query result
materialized. For an update δR it evaluates the *delta query*
``Q(R1, ..., δR, ..., Rn)`` — joins are linear in each input relation, so
this is exactly the change of the result — against the **current base
relations**, then folds it in. No intermediate aggregates are stored, so
every update pays to re-aggregate the other relations along the delta's
join path; this is the per-update cost F-IVM's materialized sibling views
avoid, and the gap the paper's DBToaster comparison measures.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.data.database import Database
from repro.data.relation import Relation
from repro.engine.base import MaintenanceEngine
from repro.engine.evaluation import evaluate_tree
from repro.engine.naive import _restore_relations, _restore_result
from repro.query.query import Query
from repro.query.variable_order import VariableOrder
from repro.viewtree.builder import ViewTree, build_view_tree

__all__ = ["FirstOrderEngine"]


class FirstOrderEngine(MaintenanceEngine):
    """Maintain only the query result; deltas join against base relations."""

    strategy = "first-order"

    def __init__(self, query: Query, order: Optional[VariableOrder] = None):
        super().__init__(query)
        self.plan = query.build_plan()
        self.tree: ViewTree = build_view_tree(query, order=order, plan=self.plan)
        self._relations: Dict[str, Relation] = {}
        self._result: Optional[Relation] = None

    def initialize(self, database: Database) -> None:
        self._relations = {
            name: database.relation(name).copy()
            for name in self.query.relation_names
        }
        self._result = evaluate_tree(self.tree, self._relations)
        self._initialized = True

    def apply(self, relation_name: str, delta: Relation) -> None:
        self._require_initialized()
        self._check_delta(relation_name, delta)
        if not delta.data:
            return
        self.stats.record_batch(delta)
        # Delta query: same tree, with the updated relation replaced by δ.
        substituted = dict(self._relations)
        substituted[relation_name] = delta
        delta_result = evaluate_tree(self.tree, substituted)
        self.stats.delta_tuples_propagated += len(delta_result.data)
        self._result.add_inplace(delta_result)
        self._relations[relation_name].add_inplace(delta)

    def result(self) -> Relation:
        self._require_initialized()
        return self._result

    # ------------------------------------------------------------------
    # Checkpointing: shares the "relations" payload kind with NaiveEngine
    # (both maintain exactly the base relations plus the result).
    # ------------------------------------------------------------------

    state_payload = "relations"

    def _export_payload(self) -> dict:
        return {
            "relations": {
                name: dict(relation.data)
                for name, relation in self._relations.items()
            },
            "result": dict(self._result.data),
        }

    def _import_payload(self, state) -> None:
        self._relations = _restore_relations(self.query, state["relations"])
        self._result = _restore_result(self.tree, state.get("result"))
        if self._result is None:
            self._result = evaluate_tree(self.tree, self._relations)
