"""Worker supervision: bounded replay logs and recovery budgets.

The sharded engine historically fail-stopped: one dead worker closed the
whole backend. With ``EngineConfig(supervise=True)`` the coordinator
instead *heals*: it keeps

- a **baseline** — the engine's last exported global state (captured at
  ``initialize``, refreshed by every ``export_state`` /
  ``checkpoint_sink`` write, and rebased automatically when the log
  outgrows ``replay_log_limit``), and
- a **replay log** — every routed delta and decay tick applied since the
  baseline, recorded *pre-split* on the coordinator (one shallow dict
  copy per batch; re-splitting through the deterministic
  :class:`~repro.data.sharding.ShardRouter` at recovery time reproduces
  exactly the sub-deltas the dead shard should have seen).

Recovery = re-partition the baseline to the dead shard's slice (the same
re-partitioned restore checkpoints use, exact by multilinearity), respawn
the worker seeded with that slice, replay the log filtered to the shard,
and resume. The recovered engine's root view is bit-identical to an
uninterrupted run — the invariant the fault-injection suite asserts.

:class:`WorkerSupervisor` also carries the recovery *budget*: a bounded
number of consecutive recovery rounds (exponential backoff between them)
before the engine gives up with :class:`~repro.errors.SupervisionError`
— fail-stop remains the backstop behind self-healing.
"""

from __future__ import annotations

import pickle
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import SupervisionError

__all__ = ["ReplayLog", "WorkerSupervisor"]


class ReplayLog:
    """Ordered post-baseline work: ``("delta", name, data)`` / ``("advance", n)``.

    ``updates`` counts logged delta *entries* (distinct keys), the unit
    ``replay_log_limit`` bounds. Entries hold shallow dict copies —
    engines treat deltas as read-only, so sharing payload values is safe,
    and the copy keeps the log immune to caller-side reuse of the dict.
    """

    __slots__ = ("limit", "entries", "updates")

    def __init__(self, limit: int):
        self.limit = int(limit)
        self.entries: List[Tuple] = []
        self.updates = 0

    def record_delta(self, relation_name: str, data: Dict) -> None:
        self.entries.append(("delta", relation_name, dict(data)))
        self.updates += len(data)

    def record_advance(self, ticks: int) -> None:
        self.entries.append(("advance", int(ticks)))

    def over_limit(self) -> bool:
        return self.updates > self.limit

    def clear(self) -> None:
        self.entries = []
        self.updates = 0

    def __len__(self) -> int:
        return len(self.entries)


class WorkerSupervisor:
    """Per-engine recovery state: baseline, log, budget, statistics."""

    #: Consecutive failed recovery rounds tolerated before giving up.
    MAX_CONSECUTIVE_RECOVERIES = 5
    #: Backoff before the n-th consecutive recovery round (seconds).
    BACKOFF_BASE = 0.05
    BACKOFF_CAP = 2.0

    def __init__(self, replay_log_limit: int, heartbeat_timeout: float):
        self.replay_log_limit = int(replay_log_limit)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.log = ReplayLog(self.replay_log_limit)
        self._baseline_blob: Optional[bytes] = None
        self.recovering = False
        self.failures = 0
        self.recoveries = 0
        self.consecutive = 0
        self.last_error: Optional[str] = None
        self.last_recovery_s: Optional[float] = None
        self.total_recovery_s = 0.0

    # -- baseline -------------------------------------------------------

    def accept_baseline(self, views: Dict[str, Dict]) -> None:
        """Adopt ``views`` (the exported global view map) as the new
        baseline and truncate the log — everything logged so far is
        covered by the baseline now. Stored pickled, so recoveries never
        alias live engine state."""
        self._baseline_blob = pickle.dumps(
            views, protocol=pickle.HIGHEST_PROTOCOL
        )
        self.log.clear()

    def has_baseline(self) -> bool:
        return self._baseline_blob is not None

    def baseline_views(self) -> Dict[str, Dict]:
        if self._baseline_blob is None:
            raise SupervisionError(
                "no baseline captured; cannot rebuild a failed shard"
            )
        return pickle.loads(self._baseline_blob)

    # -- log ------------------------------------------------------------

    def record_delta(self, relation_name: str, data: Dict) -> None:
        self.log.record_delta(relation_name, data)

    def record_advance(self, ticks: int) -> None:
        self.log.record_advance(ticks)

    def needs_rebase(self) -> bool:
        return self.log.over_limit()

    # -- budget ---------------------------------------------------------

    def begin_recovery(self, shards: List[int], error: Optional[str]) -> None:
        """Open one recovery round; raises when the budget is exhausted."""
        self.failures += len(shards)
        self.last_error = error
        if self.consecutive >= self.MAX_CONSECUTIVE_RECOVERIES:
            raise SupervisionError(
                f"giving up after {self.consecutive} consecutive recovery "
                f"rounds (shards {shards}, last error: {error}); "
                "the engine is closed"
            )
        if self.consecutive:
            time.sleep(
                min(
                    self.BACKOFF_BASE * (2 ** (self.consecutive - 1)),
                    self.BACKOFF_CAP,
                )
            )
        self.consecutive += 1
        self.recovering = True

    def end_recovery(self, seconds: float, success: bool) -> None:
        self.recovering = False
        if success:
            self.recoveries += 1
            self.consecutive = 0
            self.last_recovery_s = float(seconds)
            self.total_recovery_s += float(seconds)

    # -- observability --------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return {
            "recovering": self.recovering,
            "failures": self.failures,
            "recoveries": self.recoveries,
            "last_error": self.last_error,
            "last_recovery_s": self.last_recovery_s,
            "total_recovery_s": self.total_recovery_s,
            "replay_log_entries": len(self.log),
            "replay_log_updates": self.log.updates,
            "replay_log_limit": self.replay_log_limit,
        }
