"""Naive baseline: re-evaluate the query after every update batch.

The floor of the comparison: correctness is trivial, cost scales with the
full database size on every batch. ``refresh_on_apply=False`` defers the
recomputation to :meth:`result` (useful when a caller applies many batches
and reads once; the default models the demo's refresh-per-bulk behaviour).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.data.database import Database
from repro.data.relation import Relation
from repro.engine.base import MaintenanceEngine
from repro.engine.evaluation import evaluate_tree
from repro.errors import EngineError
from repro.query.query import Query
from repro.query.variable_order import VariableOrder
from repro.viewtree.builder import ViewTree, build_view_tree

__all__ = ["NaiveEngine"]


class NaiveEngine(MaintenanceEngine):
    """Recompute-from-scratch maintenance."""

    strategy = "naive"

    def __init__(
        self,
        query: Query,
        order: Optional[VariableOrder] = None,
        refresh_on_apply: bool = True,
    ):
        super().__init__(query)
        self.plan = query.build_plan()
        self.tree: ViewTree = build_view_tree(query, order=order, plan=self.plan)
        self.refresh_on_apply = refresh_on_apply
        self._relations: Dict[str, Relation] = {}
        self._result: Optional[Relation] = None
        self._stale = True

    def initialize(self, database: Database) -> None:
        self._relations = {
            name: database.relation(name).copy()
            for name in self.query.relation_names
        }
        self._result = evaluate_tree(self.tree, self._relations)
        self._stale = False
        self._initialized = True

    def apply(self, relation_name: str, delta: Relation) -> None:
        self._require_initialized()
        self._check_delta(relation_name, delta)
        if not delta.data:
            return
        self.stats.record_batch(delta)
        self._relations[relation_name].add_inplace(delta)
        if self.refresh_on_apply:
            self._result = evaluate_tree(self.tree, self._relations)
            self._stale = False
        else:
            self._stale = True

    def apply_many(self, updates) -> None:
        """Coalesce the batch, then re-evaluate once at the end.

        Without this override a refresh-per-apply naive engine would
        re-evaluate once per touched relation; deferring to a single
        refresh is what makes batching pay off for the baseline too.
        """
        refresh = self.refresh_on_apply
        self.refresh_on_apply = False
        try:
            super().apply_many(updates)
        finally:
            self.refresh_on_apply = refresh
        if refresh and self._stale:
            self._result = evaluate_tree(self.tree, self._relations)
            self._stale = False

    def result(self) -> Relation:
        self._require_initialized()
        if self._stale:
            self._result = evaluate_tree(self.tree, self._relations)
            self._stale = False
        return self._result

    # ------------------------------------------------------------------
    # Checkpointing: base relations plus the current result. The same
    # "relations" payload kind as FirstOrderEngine, so the two baselines
    # restore each other's snapshots.
    # ------------------------------------------------------------------

    state_payload = "relations"

    def _export_payload(self) -> dict:
        return {
            "relations": {
                name: dict(relation.data)
                for name, relation in self._relations.items()
            },
            "result": dict(self.result().data),
        }

    def _import_payload(self, state) -> None:
        self._relations = _restore_relations(self.query, state["relations"])
        self._result = _restore_result(self.tree, state.get("result"))
        if self._result is None:
            self._result = evaluate_tree(self.tree, self._relations)
        self._stale = False


def _restore_relations(query, relations) -> Dict[str, Relation]:
    """Rebuild base relations from a ``"relations"`` snapshot payload."""
    expected = set(query.relation_names)
    if set(relations) != expected:
        raise EngineError(
            f"snapshot relations {sorted(relations)} do not match the "
            f"query's {sorted(expected)}"
        )
    restored = {}
    for name, data in relations.items():
        schema = query.schema_of(name).attributes
        # Z-relation constructor validates keys, drops zero multiplicities.
        restored[name] = Relation(schema, data=data, name=name)
    return restored


def _restore_result(tree, data) -> Optional[Relation]:
    """Rebuild the maintained result (``None`` when the snapshot lacks it)."""
    if data is None:
        return None
    return Relation(
        tree.root.key, tree.plan.ring, data=data, name=tree.root.name
    )
