"""The F-IVM engine: factorized higher-order IVM over a view tree.

This is the paper's primary contribution. The engine materializes every
view of the tree at initialization. An update δR then only touches the
views on the leaf-to-root path of R (Figure 1, right): the delta is lifted
into payload space at R's leaf view, joined with the *materialized* sibling
views at each inner node, marginalized through the node's variable, and
folded into the node's materialization — regardless of the payload ring.

Compared to re-evaluation the work per update is bounded by the sizes of
the deltas and sibling views along one path; compared to first-order IVM
the sibling aggregates are already materialized instead of being recomputed
from base relations on every update.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.data.database import Database
from repro.data.index import IndexedRelation
from repro.data.relation import Relation
from repro.engine.base import MaintenanceEngine
from repro.engine.evaluation import evaluate_tree
from repro.errors import EngineError
from repro.query.query import Query
from repro.query.variable_order import VariableOrder
from repro.viewtree.builder import ViewTree, build_probe_plan, build_view_tree

__all__ = ["FIVMEngine"]


class FIVMEngine(MaintenanceEngine):
    """Higher-order factorized incremental view maintenance.

    With ``use_view_index`` (the default) every materialized view that
    serves as a sibling on some relation's maintenance path carries
    persistent hash indexes on exactly the attribute sets those paths
    probe — the probe plan is computed once from the view tree at
    construction. Delta propagation then loops over the (small) delta and
    looks matches up (`Relation.join_probe`) instead of scanning the full
    sibling per update, and index maintenance is folded into the same
    ``add_inplace`` calls that refresh the views. ``use_view_index=False``
    falls back to per-call hash joins (the pre-index behaviour) for
    ablation; results are identical either way.
    """

    strategy = "fivm"

    def __init__(
        self,
        query: Query,
        order: Optional[VariableOrder] = None,
        use_view_index: bool = True,
        adaptive_probe: bool = True,
    ):
        super().__init__(query)
        self.plan = query.build_plan()
        self.tree: ViewTree = build_view_tree(query, order=order, plan=self.plan)
        self.materialized: Dict[str, Relation] = {}
        self.use_view_index = bool(use_view_index)
        #: Pick probe vs. scan per sibling join from |delta| against the
        #: sibling's size (constants on EngineStatistics); with
        #: ``adaptive_probe=False`` every step probes, the pre-adaptive
        #: behaviour. Only meaningful when ``use_view_index`` is on.
        self.adaptive_probe = bool(adaptive_probe)
        self.probe_plan = build_probe_plan(self.tree)
        # Maintenance paths and per-view lifting dicts are pure functions
        # of the static tree; precompute them so apply() does no per-update
        # work proportional to tree depth beyond the propagation itself.
        self._paths = {}
        for name in self.tree.leaf_of:
            path = self.tree.path_to_root(name)
            leaf = path[0]
            leaf_lifts = {attr: self.plan.lifts[attr] for attr in leaf.lifted}
            inner = tuple(
                (view, {attr: self.plan.lifts[attr] for attr in view.lifted})
                for view in path[1:]
            )
            self._paths[name] = (leaf, leaf_lifts, inner)

    # ------------------------------------------------------------------

    def initialize(self, database: Database) -> None:
        relations = {
            name: database.relation(name) for name in self.query.relation_names
        }
        self.materialized = {}
        # Index-aware evaluation: probed views come out of evaluate_tree
        # already wrapped and indexed, so there is no second install pass
        # over the freshly materialized data.
        evaluate_tree(
            self.tree,
            relations,
            self.materialized,
            index_specs=self.probe_plan.index_specs if self.use_view_index else None,
        )
        self._initialized = True
        self._refresh_view_sizes()

    def apply(self, relation_name: str, delta: Relation) -> None:
        self._require_initialized()
        self._check_delta(relation_name, delta)
        if not delta.data:
            return
        stats = self.stats
        stats.record_batch(delta)
        materialized = self.materialized
        view_sizes = stats.view_sizes
        leaf, leaf_lifts, inner = self._paths[relation_name]
        current = delta.lift(self.plan.ring, leaf.key, leaf_lifts)
        leaf_view = materialized[leaf.name]
        leaf_view.add_inplace(current)
        view_sizes[leaf.name] = len(leaf_view)
        probe_steps = (
            self.probe_plan.path_steps[relation_name]
            if self.use_view_index
            else None
        )
        adaptive = self.adaptive_probe
        scan_ratio = stats.ADAPTIVE_SCAN_RATIO
        scan_min_delta = stats.ADAPTIVE_SCAN_MIN_DELTA
        previous_name = leaf.name
        for position, (view, lifts) in enumerate(inner):
            if not current.data:
                break
            joined = current
            if probe_steps is not None:
                for step in probe_steps[position]:
                    sibling = materialized[step.sibling]
                    if (
                        adaptive
                        and len(joined.data) >= scan_min_delta
                        and len(joined.data) > scan_ratio * len(sibling.data)
                    ):
                        # The delta dwarfs the sibling: one hash join over
                        # the small sibling beats per-entry index probes.
                        joined = joined.join(sibling)
                        stats.scan_steps += 1
                    else:
                        # O(|delta| x matches): probe the persistent index.
                        index = sibling.index_on(step.attrs)
                        probes, hits = index.probes, index.hits
                        joined = joined.join_probe(sibling, index)
                        stats.index_probes += index.probes - probes
                        stats.index_hits += index.hits - hits
                        stats.probe_steps += 1
                    if not joined.data:
                        break
            else:
                siblings = [
                    child for child in view.children if child.name != previous_name
                ]
                # Smallest sibling first keeps the running delta join narrow.
                siblings.sort(key=lambda child: len(materialized[child.name]))
                for sibling in siblings:
                    joined = joined.join(materialized[sibling.name])
                    if not joined.data:
                        break
            if not joined.data:
                # The delta annihilated mid-join: every view above receives
                # nothing, so stop before marginalize — with 3+ children the
                # partial join may not even carry all of view.key yet.
                break
            current = joined.marginalize(view.key, lifts)
            stats.delta_tuples_propagated += len(current.data)
            target = materialized[view.name]
            target.add_inplace(current)
            view_sizes[view.name] = len(target)
            previous_name = view.name

    def result(self) -> Relation:
        self._require_initialized()
        return self.materialized[self.tree.root.name]

    # ------------------------------------------------------------------

    def view(self, name: str) -> Relation:
        """Materialization of a named view (for inspection and tests)."""
        self._require_initialized()
        try:
            return self.materialized[name]
        except KeyError:
            raise EngineError(f"unknown view {name!r}") from None

    def total_view_tuples(self) -> int:
        """Total number of materialized key-payload entries (memory proxy)."""
        return sum(len(relation) for relation in self.materialized.values())

    def memory_report(self) -> Dict[str, Dict[str, int]]:
        """Per-view entry counts, payload weights and index overhead.

        ``entries`` is the number of keys; ``payload_weight`` counts the
        scalar cells inside the payloads (1 for scalar rings, the number
        of non-zero vector/matrix cells for cofactor rings, annotation
        counts for relational values) — the factorization-aware memory
        measure the engine paper reports. Views carrying persistent
        indexes additionally report ``indexes`` (how many), their total
        ``index_entries`` (one per live key per index; payloads are
        shared, not copied) and ``index_buckets``.
        """
        report: Dict[str, Dict[str, int]] = {}
        for name, relation in self.materialized.items():
            weight = sum(
                _payload_weight(payload) for payload in relation.data.values()
            )
            entry = {"entries": len(relation), "payload_weight": weight}
            indexes = getattr(relation, "indexes", None)
            if indexes:
                entry["indexes"] = len(indexes)
                entry["index_entries"] = sum(
                    index.entry_count() for index in indexes.values()
                )
                entry["index_buckets"] = sum(
                    index.bucket_count() for index in indexes.values()
                )
            report[name] = entry
        return report

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    state_payload = "views"

    def _export_payload(self) -> dict:
        """Snapshot of the materialized views (picklable).

        The payload plan holds lifting closures, so the engine object
        itself is not serialized — recreate it from the query and restore
        the snapshot with :meth:`import_state`.
        """
        return {
            "views": {
                name: dict(relation.data)
                for name, relation in self.materialized.items()
            }
        }

    def _import_payload(self, state) -> None:
        """Restore the materialized views of a snapshot.

        The engine must have been built for the same query/order (the
        header provenance is checked by the base class; view names are
        additionally validated against the current tree). Ring-zero
        payloads in the snapshot are dropped on restore (snapshots
        written while a cancellation was parked would otherwise silently
        inflate view sizes), and persistent view indexes are rebuilt
        from the restored materializations.
        """
        views = state["views"]
        missing = set(self.tree.views) - set(views)
        unexpected = set(views) - set(self.tree.views)
        if missing or unexpected:
            raise EngineError(
                f"snapshot does not match the view tree "
                f"(missing={sorted(missing)}, unexpected={sorted(unexpected)})"
            )
        self.materialized = {}
        for name, data in views.items():
            view = self.tree.views[name]
            # The constructor validates keys and filters ring-zero payloads.
            self.materialized[name] = Relation(
                view.key, self.plan.ring, data=data, name=name
            )
        if self.use_view_index:
            self._install_indexes()

    def _after_restore(self) -> None:
        self._refresh_view_sizes()

    # ------------------------------------------------------------------

    def _install_indexes(self) -> None:
        """Wrap probed views as :class:`IndexedRelation` and build their indexes.

        The probe plan names, per view, exactly the attribute tuples some
        relation's maintenance path looks up; views never probed (e.g. the
        root) stay plain relations.
        """
        for name, specs in self.probe_plan.index_specs.items():
            indexed = IndexedRelation.from_relation(self.materialized[name])
            for attrs in specs:
                indexed.add_index(attrs)
            self.materialized[name] = indexed

    def _refresh_view_sizes(self) -> None:
        """Full recomputation — initialization/restore only; ``apply``
        updates just the touched path."""
        self.stats.view_sizes = {
            name: len(relation) for name, relation in self.materialized.items()
        }


def _payload_weight(payload) -> int:
    """Scalar cells inside one payload (see :meth:`FIVMEngine.memory_report`)."""
    if hasattr(payload, "q"):  # cofactor values
        q = payload.q
        if hasattr(q, "shape"):  # numpy: count structural non-zeros
            import numpy as np

            return 1 + int(np.count_nonzero(payload.s)) + int(np.count_nonzero(q))
        return (
            _payload_weight_scalar(payload.c)
            + sum(_payload_weight_scalar(v) for v in payload.s.values())
            + sum(_payload_weight_scalar(v) for v in q.values())
        )
    return _payload_weight_scalar(payload)


def _payload_weight_scalar(value) -> int:
    if hasattr(value, "data"):  # relational values: one cell per annotation
        return max(len(value.data), 1)
    return 1
